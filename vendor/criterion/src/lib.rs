//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion)
//! (see `vendor/README.md` for the vendoring policy).
//!
//! Keeps the bench-target source shape (`criterion_group!` /
//! `criterion_main!` / `Criterion` / `Bencher`) while replacing the
//! statistical machinery with a simple adaptive wall-clock loop: each
//! benchmark warms up once, then runs until it has accumulated
//! ~`MEASURE_MS` of samples (capped), and reports the mean ns/iteration
//! to stdout. Good enough to compare hot-path changes locally; not a
//! substitute for upstream criterion's outlier analysis.

use std::time::{Duration, Instant};

const WARMUP_ITERS: u64 = 2;
const MEASURE_MS: u64 = 120;
const MAX_ITERS: u64 = 100_000;

/// Batch sizing hints for [`Bencher::iter_batched`] (accepted for source
/// compatibility; this shim sets up one input per measured call either
/// way).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(&name);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name.into());
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(&label);
        self
    }

    /// Ends the group (upstream flushes reports here; this shim reports
    /// eagerly, so it is a no-op kept for source compatibility).
    pub fn finish(self) {}
}

/// Measures a closure's wall-clock time.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Benchmarks `routine`, timing every call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine());
        }
        let budget = Duration::from_millis(MEASURE_MS);
        while self.total < budget && self.iters < MAX_ITERS {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    /// Benchmarks `routine` on fresh inputs from `setup`; only `routine`
    /// is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(routine(setup()));
        }
        let budget = Duration::from_millis(MEASURE_MS);
        while self.total < budget && self.iters < MAX_ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("bench {name:<50} (no measurements)");
            return;
        }
        let ns_per_iter = self.total.as_nanos() as f64 / self.iters as f64;
        println!(
            "bench {name:<50} {:>14.1} ns/iter  ({} iters)",
            ns_per_iter, self.iters
        );
    }
}

/// Defines a function running a list of benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` for a bench target from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_chains() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1))
            .bench_function("alloc", |b| b.iter(|| vec![0u8; 16]));
    }

    #[test]
    fn groups_and_batched_iteration_work() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 8],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group!(sample_group, sample_bench);

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sample", |b| b.iter(|| std::hint::black_box(3 * 7)));
    }

    #[test]
    fn macro_generated_group_runs() {
        sample_group();
    }
}

//! The shared work-distribution engine behind every parallel pipeline in
//! this shim.
//!
//! All public iterator types funnel into [`run_map`]: materialize the work
//! items, split them into contiguous chunks (one per worker), run the
//! chunks on `std::thread::scope` threads, and collect results in input
//! order. Chunk *assignment* depends on the active thread count, but chunk
//! *contents* are processed in input order either way, so any pipeline
//! whose items write disjoint outputs is bitwise-deterministic across
//! thread counts.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// `0` means "no override": use [`std::thread::available_parallelism`].
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set on worker threads for the duration of their chunk: nested
    /// pipelines (e.g. a parallel tensor kernel inside an
    /// already-parallel ensemble fan-out) see one thread and run inline,
    /// instead of oversubscribing the machine with spawn-per-call
    /// workers.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The number of worker threads parallel pipelines currently fan out to.
///
/// Mirrors `rayon::current_num_threads`. Returns 1 on a pipeline worker
/// thread (nested parallelism runs inline); otherwise reflects a
/// thread-count override installed via [`crate::ThreadPool::install`],
/// else the machine's available parallelism (queried once and cached —
/// kernels call this on every invocation, and `available_parallelism` is
/// a syscall).
pub fn current_num_threads() -> usize {
    static MACHINE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    if IN_WORKER.with(|f| f.get()) {
        return 1;
    }
    let overridden = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if overridden > 0 {
        overridden
    } else {
        *MACHINE.get_or_init(|| {
            std::thread::available_parallelism()
                .map(|c| c.get())
                .unwrap_or(1)
        })
    }
}

/// Sets the process-global thread-count override (`0` clears it) and
/// returns the previous raw value. Used by [`crate::ThreadPool::install`].
pub(crate) fn set_thread_override(n: usize) -> usize {
    THREAD_OVERRIDE.swap(n, Ordering::Relaxed)
}

/// Serializes tests (across this crate's test modules) that set or
/// observe the process-global override, so the test harness's own
/// parallelism cannot interleave them.
#[cfg(test)]
pub(crate) static TEST_OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `f` over every item, in parallel across contiguous chunks, and
/// returns the results in input order.
pub(crate) fn run_map<I, R, F>(items: Vec<I>, f: &F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    let chunk = n.div_ceil(threads);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut rest = items;
    std::thread::scope(|scope| {
        for slot_chunk in slots.chunks_mut(chunk) {
            let tail = rest.split_off(slot_chunk.len().min(rest.len()));
            let work = std::mem::replace(&mut rest, tail);
            scope.spawn(move || {
                IN_WORKER.with(|flag| flag.set(true));
                for (item, slot) in work.into_iter().zip(slot_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("worker thread filled every slot"))
        .collect()
}

/// Runs `f` over every item for its side effects, in parallel.
pub(crate) fn run_for_each<I, F>(items: Vec<I>, f: &F)
where
    I: Send,
    F: Fn(I) + Sync,
{
    let _: Vec<()> = run_map(items, &|item| f(item));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_map_preserves_order() {
        let out = run_map((0..100).collect(), &|x: usize| x * 3);
        assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn run_map_handles_empty_and_single() {
        let empty: Vec<usize> = run_map(Vec::new(), &|x: usize| x);
        assert!(empty.is_empty());
        assert_eq!(run_map(vec![7], &|x: usize| x + 1), vec![8]);
    }

    #[test]
    fn override_caps_thread_count() {
        let _guard = TEST_OVERRIDE_LOCK.lock().unwrap();
        let prev = set_thread_override(1);
        assert_eq!(current_num_threads(), 1);
        set_thread_override(prev);
    }

    #[test]
    fn nested_pipelines_run_inline_on_workers() {
        // When the outer pipeline goes parallel, inner pipelines on its
        // workers must see one thread (no spawn cascade); results stay
        // correct either way.
        let _guard = TEST_OVERRIDE_LOCK.lock().unwrap();
        let outer: Vec<usize> = (0..8).collect();
        let out = run_map(outer, &|i: usize| {
            let seen = if std::thread::available_parallelism()
                .map(|c| c.get())
                .unwrap_or(1)
                > 1
            {
                Some(current_num_threads())
            } else {
                None // outer ran sequentially; nothing to observe
            };
            let inner: Vec<usize> = run_map((0..4).collect(), &|j: usize| i * 10 + j);
            (seen, inner)
        });
        for (i, (seen, inner)) in out.into_iter().enumerate() {
            if let Some(threads) = seen {
                assert_eq!(threads, 1, "worker {i} saw nested parallelism");
            }
            assert_eq!(inner, (0..4).map(|j| i * 10 + j).collect::<Vec<_>>());
        }
    }
}

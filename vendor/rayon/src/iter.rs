//! The `par_iter().map().collect()` pipeline.

/// Types whose contents can be iterated in parallel by reference.
pub trait IntoParallelRefIterator<'data> {
    /// The borrowed item type.
    type Item: 'data;

    /// Returns a parallel iterator over borrowed items.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over a slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Maps each item through `f` (in parallel at collect time).
    pub fn map<F, R>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The mapped pipeline; work runs when [`ParMap::collect`] is called.
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T: Sync, F> ParMap<'data, T, F> {
    /// Runs the map across scoped threads and collects results in input
    /// order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let n = self.items.len();
        let threads = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1)
            .min(n.max(1));
        if threads <= 1 {
            return self.items.iter().map(&self.f).collect();
        }

        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        std::thread::scope(|scope| {
            for (item_chunk, slot_chunk) in self.items.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (item, slot) in item_chunk.iter().zip(slot_chunk.iter_mut()) {
                        *slot = Some(f(item));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("worker thread filled every slot"))
            .collect()
    }
}

//! The `par_iter()` / `par_iter_mut()` pipelines.

use crate::exec;

/// Types whose contents can be iterated in parallel by reference.
pub trait IntoParallelRefIterator<'data> {
    /// The borrowed item type.
    type Item: 'data;

    /// Returns a parallel iterator over borrowed items.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Types whose contents can be iterated in parallel by mutable reference.
pub trait IntoParallelRefMutIterator<'data> {
    /// The mutably borrowed item type.
    type Item: 'data;

    /// Returns a parallel iterator over mutably borrowed items.
    fn par_iter_mut(&'data mut self) -> ParIterMut<'data, Self::Item>;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = T;

    fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
        ParIterMut { items: self }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
        ParIterMut { items: self }
    }
}

/// Parallel iterator over a shared slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Maps each item through `f` (in parallel at collect time).
    pub fn map<F, R>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The mapped pipeline; work runs when [`ParMap::collect`] is called.
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T: Sync, F> ParMap<'data, T, F> {
    /// Runs the map across scoped threads and collects results in input
    /// order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let items: Vec<&'data T> = self.items.iter().collect();
        exec::run_map(items, &self.f).into_iter().collect()
    }
}

/// Parallel iterator over a mutable slice.
pub struct ParIterMut<'data, T> {
    items: &'data mut [T],
}

impl<'data, T: Send> ParIterMut<'data, T> {
    /// Maps each item through `f` (in parallel at collect time).
    pub fn map<F, R>(self, f: F) -> ParMapMut<'data, T, F>
    where
        F: Fn(&'data mut T) -> R + Sync,
        R: Send,
    {
        ParMapMut {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'data mut T) + Sync,
    {
        let items: Vec<&'data mut T> = self.items.iter_mut().collect();
        exec::run_for_each(items, &f);
    }
}

/// The mutably-mapped pipeline; work runs when [`ParMapMut::collect`] is
/// called.
pub struct ParMapMut<'data, T, F> {
    items: &'data mut [T],
    f: F,
}

impl<'data, T: Send, F> ParMapMut<'data, T, F> {
    /// Runs the map across scoped threads and collects results in input
    /// order.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&'data mut T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let items: Vec<&'data mut T> = self.items.iter_mut().collect();
        exec::run_map(items, &self.f).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut items: Vec<usize> = (0..64).collect();
        items.par_iter_mut().for_each(|x| *x *= 2);
        assert_eq!(items, (0..64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_map_collects_in_order() {
        let mut items: Vec<usize> = (0..33).collect();
        let out: Vec<usize> = items
            .par_iter_mut()
            .map(|x| {
                *x += 1;
                *x
            })
            .collect();
        assert_eq!(out, (1..34).collect::<Vec<_>>());
    }
}

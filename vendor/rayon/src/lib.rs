//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon)
//! crate (see `vendor/README.md` for the vendoring policy).
//!
//! Supports the one pattern the workspace uses —
//! `slice.par_iter().map(f).collect()` — with genuine parallelism: the
//! input is chunked across `std::thread::scope` threads (one per available
//! core, capped by item count) and results are collected in input order.
//! There is no work-stealing; ensemble-member training jobs are
//! coarse-grained enough that static chunking is an even split.

pub mod iter;

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::iter::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collects_in_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out: Vec<usize> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_collects_empty() {
        let items: Vec<usize> = Vec::new();
        let out: Vec<usize> = items.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_works() {
        let items = [41usize];
        let out: Vec<usize> = items.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        use std::thread::ThreadId;

        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        let items: Vec<usize> = (0..64).collect();
        let _: Vec<()> = items
            .par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        let threads = seen.lock().unwrap().len();
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores > 1 {
            assert!(threads > 1, "expected >1 worker threads, saw {threads}");
        }
    }
}

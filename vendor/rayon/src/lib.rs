//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon)
//! crate (see `vendor/README.md` for the vendoring policy).
//!
//! Supports the patterns the workspace uses with genuine parallelism on
//! `std::thread::scope` threads:
//!
//! * `slice.par_iter().map(f).collect()` — read-only fan-out (ensemble
//!   member training jobs);
//! * `slice.par_iter_mut().map(f).collect()` / `.for_each(f)` — mutable
//!   fan-out (the batched inference engine's per-member workers);
//! * `slice.par_chunks_mut(n)` with `enumerate`/`zip`/`for_each` — disjoint
//!   output-buffer partitioning (the blocked tensor kernels);
//! * `ThreadPoolBuilder::new().num_threads(n).build()?.install(f)` — a
//!   process-global thread-count override, used by tests to pin kernels to
//!   one thread and by benchmarks to measure scaling.
//!
//! There is no work-stealing: items are split into contiguous chunks, one
//! per worker. The workspace's parallel jobs are coarse-grained enough that
//! a static even split is fine, and the materialized-chunk design keeps
//! every pipeline's output bitwise-independent of the thread count (each
//! item is processed in input order against disjoint outputs).

pub mod exec;
pub mod iter;
pub mod slice;

pub use exec::current_num_threads;

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::iter::{IntoParallelRefIterator, IntoParallelRefMutIterator};
    pub use crate::slice::ParallelSliceMut;
}

/// Builder for a [`ThreadPool`], mirroring `rayon::ThreadPoolBuilder`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (machine-sized) thread count.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the pool's thread count (`0` means machine-sized).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Never fails in this shim; the `Result` mirrors the
    /// upstream signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Error type of [`ThreadPoolBuilder::build`]; never produced by this shim.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A thread-count scope, mirroring `rayon::ThreadPool`.
///
/// Unlike upstream (which owns worker threads), this shim's pools are
/// lightweight: [`ThreadPool::install`] sets a **process-global**
/// thread-count override for the duration of the closure, so concurrent
/// `install`s from different threads see whichever override was set last.
/// The workspace only uses `install` from tests and benchmarks, where that
/// is acceptable.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's configured thread count (machine-sized if built with 0).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            exec::current_num_threads()
        }
    }

    /// Runs `op` with this pool's thread count governing every parallel
    /// pipeline, restoring the previous setting afterwards (also on
    /// panic).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                exec::set_thread_override(self.0);
            }
        }
        let _restore = Restore(exec::set_thread_override(self.num_threads));
        op()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn collects_in_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let out: Vec<usize> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_collects_empty() {
        let items: Vec<usize> = Vec::new();
        let out: Vec<usize> = items.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn single_item_works() {
        let items = [41usize];
        let out: Vec<usize> = items.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn install_scopes_the_thread_count() {
        let _guard = crate::exec::TEST_OVERRIDE_LOCK.lock().unwrap();
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 1);
        });
        let wide = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(wide.current_num_threads(), 3);
        wide.install(|| assert_eq!(current_num_threads(), 3));
    }

    #[test]
    fn single_thread_pool_runs_sequentially() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        use std::thread::ThreadId;

        let _guard = crate::exec::TEST_OVERRIDE_LOCK.lock().unwrap();
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        let items: Vec<usize> = (0..64).collect();
        let _: Vec<()> = pool.install(|| {
            items
                .par_iter()
                .map(|_| {
                    seen.lock().unwrap().insert(std::thread::current().id());
                })
                .collect()
        });
        assert_eq!(seen.lock().unwrap().len(), 1);
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        use std::thread::ThreadId;

        let _guard = crate::exec::TEST_OVERRIDE_LOCK.lock().unwrap();
        let seen: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        let items: Vec<usize> = (0..64).collect();
        let _: Vec<()> = items
            .par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        let threads = seen.lock().unwrap().len();
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores > 1 {
            assert!(threads > 1, "expected >1 worker threads, saw {threads}");
        }
    }
}

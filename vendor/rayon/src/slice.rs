//! Parallel mutable slice pipelines: `par_chunks_mut`, with the
//! `enumerate`/`zip`/`for_each` adaptors the tensor kernels drive them
//! with.
//!
//! Unlike upstream rayon's lazy splitters, chunk lists are materialized
//! eagerly (a `Vec` of disjoint `&mut [T]` borrows) and handed to the
//! shared executor; at the chunk granularity the kernels use (one batch
//! item or one filter per chunk) the materialization cost is noise.

use crate::exec;

/// Types whose contents can be mutably chunked and iterated in parallel.
pub trait ParallelSliceMut<T: Send> {
    /// Returns a parallel iterator over non-overlapping mutable chunks of
    /// `chunk_size` elements (the last chunk may be shorter).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is zero.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParItems<'_, &mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParItems<'_, &mut [T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParItems {
            items: self.chunks_mut(chunk_size).collect(),
            _marker: std::marker::PhantomData,
        }
    }
}

/// A materialized parallel iterator over work items (mutable chunk borrows
/// or tuples built from them via [`ParItems::enumerate`]/[`ParItems::zip`]).
pub struct ParItems<'data, I> {
    items: Vec<I>,
    _marker: std::marker::PhantomData<&'data ()>,
}

impl<'data, I: Send + 'data> ParItems<'data, I> {
    /// Number of work items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no work items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Pairs every item with its index.
    pub fn enumerate(self) -> ParItems<'data, (usize, I)> {
        ParItems {
            items: self.items.into_iter().enumerate().collect(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Pairs items positionally with a second parallel iterator.
    ///
    /// # Panics
    ///
    /// Panics if the two sides have different lengths (the kernels always
    /// chunk parallel output buffers identically).
    pub fn zip<J: Send + 'data>(self, other: ParItems<'data, J>) -> ParItems<'data, (I, J)> {
        assert_eq!(
            self.items.len(),
            other.items.len(),
            "zip length mismatch: {} vs {}",
            self.items.len(),
            other.items.len()
        );
        ParItems {
            items: self.items.into_iter().zip(other.items).collect(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Runs `f` on every item, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        exec::run_for_each(self.items, &f);
    }

    /// Maps every item through `f` in parallel, collecting in input order.
    pub fn map_collect<R, F, C>(self, f: F) -> C
    where
        R: Send,
        F: Fn(I) -> R + Sync,
        C: FromIterator<R>,
    {
        exec::run_map(self.items, &f).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_write_disjoint_regions() {
        let mut data = vec![0usize; 10];
        data.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i + 1;
            }
        });
        assert_eq!(data, vec![1, 1, 1, 2, 2, 2, 3, 3, 3, 4]);
    }

    #[test]
    fn zip_pairs_chunks() {
        let mut a = vec![0usize; 6];
        let mut b = vec![0usize; 6];
        a.par_chunks_mut(2)
            .zip(b.par_chunks_mut(2))
            .enumerate()
            .for_each(|(i, (ca, cb))| {
                ca.iter_mut().for_each(|v| *v = i);
                cb.iter_mut().for_each(|v| *v = 10 * i);
            });
        assert_eq!(a, vec![0, 0, 1, 1, 2, 2]);
        assert_eq!(b, vec![0, 0, 10, 10, 20, 20]);
    }

    #[test]
    #[should_panic(expected = "zip length mismatch")]
    fn zip_rejects_length_mismatch() {
        let mut a = [0usize; 6];
        let mut b = [0usize; 9];
        a.par_chunks_mut(2)
            .zip(b.par_chunks_mut(2))
            .for_each(|_| {});
    }

    #[test]
    fn map_collect_preserves_order() {
        let mut data: Vec<usize> = (0..9).collect();
        let sums: Vec<usize> = data
            .par_chunks_mut(4)
            .map_collect(|chunk| chunk.iter().sum());
        assert_eq!(sums, vec![6, 22, 8]);
    }
}

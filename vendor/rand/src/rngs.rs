//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator.
///
/// SplitMix64 (Steele, Lea & Flood 2014): a 64-bit-state generator with a
/// full 2^64 period that passes BigCrush. Unlike upstream `rand`'s
/// ChaCha12-backed `StdRng` it is trivially portable and dependency-free,
/// which is what this offline workspace needs; the contract that matters —
/// same seed, same stream — is identical.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        StdRng { state }
    }
}

/// The generator returned by [`crate::thread_rng`].
#[derive(Clone, Debug)]
pub struct ThreadRng(pub(crate) StdRng);

impl RngCore for ThreadRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

//! Sequence utilities: in-place shuffling.

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_is_seed_deterministic() {
        let mut a: Vec<usize> = (0..20).collect();
        let mut b: Vec<usize> = (0..20).collect();
        a.shuffle(&mut StdRng::seed_from_u64(8));
        b.shuffle(&mut StdRng::seed_from_u64(8));
        assert_eq!(a, b);
    }

    #[test]
    fn shuffle_moves_something() {
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(9));
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}

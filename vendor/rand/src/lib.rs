//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this repository has no access to a cargo
//! registry, so the workspace vendors the narrow API subset it actually
//! uses (see `vendor/README.md` for the policy):
//!
//! * [`rngs::StdRng`] — a deterministic, seedable generator
//!   (SplitMix64; deliberately *not* the upstream ChaCha12, but with the
//!   same reproducibility contract: same seed ⇒ same stream);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over integer and float ranges;
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates);
//! * [`thread_rng`] — a non-deterministic generator for doc examples.
//!
//! The statistical quality of SplitMix64 (64-bit state, passes BigCrush)
//! is more than adequate for weight initialization, bootstrap sampling,
//! and shuffling — the only things this workspace draws randomness for.

pub mod rngs;
pub mod seq;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators that can be constructed from a small seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The same seed always produces the same stream.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a uniform value of the output type: floats in `[0, 1)`,
    /// `bool` as a fair coin.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 mantissa bits.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Samples one standard-distribution value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from this range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over an interval.
///
/// The blanket [`SampleRange`] impls below stay generic over this trait
/// (mirroring upstream rand) so that a literal like `0.5..1.0` keeps a
/// single unresolved float type that surrounding code can pin to `f32`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from the half-open interval `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform sample from the closed interval `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let unit = unit_f64(rng.next_u64()) as $t;
                let v = lo + (hi - lo) * unit;
                // Guard the half-open contract against rounding at the top.
                if v >= hi { lo } else { v }
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let unit = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Returns a generator seeded from the system clock — non-reproducible,
/// for doc examples and scratch use only. All library code paths take an
/// explicit seeded [`rngs::StdRng`].
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};

    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    let unique = COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    rngs::ThreadRng(rngs::StdRng::seed_from_u64(nanos ^ unique))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=4);
            assert!(w <= 4);
            let s: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some bucket never hit: {seen:?}");
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
            assert!(v > 0.0 && v < 1.0);
            let w: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&w));
        }
    }

    #[test]
    fn float_mean_is_central() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: usize = rng.gen_range(5..5);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}

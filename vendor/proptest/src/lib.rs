//! Offline stand-in for [`proptest`](https://proptest-rs.github.io/proptest)
//! (see `vendor/README.md` for the vendoring policy).
//!
//! Implements the subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]` and
//!   `arg in strategy` bindings;
//! * [`Strategy`] with [`Strategy::prop_map`], implemented for integer and
//!   float ranges, tuples of strategies, [`collection::vec`], and
//!   [`bool::ANY`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Differences from upstream, deliberate for an offline shim: case
//! generation is purely random (no edge-case biasing) from a fixed
//! per-case seed, so runs are deterministic and reproducible, and there is
//! **no shrinking** — a failing case panics with the ordinary assertion
//! message. `prop_assume!` skips the current case rather than resampling,
//! so the effective case count can be lower than configured when
//! assumptions reject cases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy};
}

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Returns the deterministic generator for one test case.
///
/// Every `proptest!` body receives a generator seeded only by the case
/// index, so failures reproduce exactly across runs and machines.
pub fn test_rng(case: u32) -> StdRng {
    StdRng::seed_from_u64(
        0x9E37_79B9_7F4A_7C15 ^ (case as u64 + 1).wrapping_mul(0xD129_0464_9574_9A4D),
    )
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                // Sampled as an inclusive range end-to-end: computing
                // `end + 1` here would overflow for `..=MAX`.
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

pub mod bool {
    //! Boolean strategies.
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A fair-coin boolean strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

pub mod collection {
    //! Collection strategies.
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A length specification: a fixed size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// A strategy producing `Vec`s of `element`-generated values with a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// The attribute list is caller-supplied, so the same macro also defines
/// plain functions (as this doctest does, where `#[test]` would not run):
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     fn sum_is_commutative(a in 0usize..100, b in 0usize..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
///
/// sum_is_commutative();
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_rng(__case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    // The case body runs in a closure so `prop_assume!`
                    // can skip the rest of the case with `return`.
                    let mut __case_fn = || $body;
                    __case_fn();
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::Strategy;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::test_rng(0);
        for _ in 0..200 {
            let v = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let f = (-2.0f32..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn inclusive_range_covers_full_domain_without_overflow() {
        let mut rng = crate::test_rng(3);
        let mut hit_max = false;
        for _ in 0..2000 {
            let v = (250u8..=u8::MAX).generate(&mut rng);
            assert!(v >= 250);
            hit_max |= v == u8::MAX;
        }
        assert!(hit_max, "inclusive upper bound was never sampled");
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::test_rng(1);
        let s = crate::collection::vec(0usize..5, 2..8);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..8).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let fixed = crate::collection::vec(0usize..5, 3);
        assert_eq!(fixed.generate(&mut rng).len(), 3);
    }

    #[test]
    fn tuples_and_map_compose() {
        let mut rng = crate::test_rng(2);
        let s = (1usize..4, 2usize..10).prop_map(|(a, b)| a * 100 + b);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((100..400).contains(&v));
            assert!((2..10).contains(&(v % 100)));
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let s = crate::collection::vec(0usize..1000, 5..20);
        let a = s.generate(&mut crate::test_rng(7));
        let b = s.generate(&mut crate::test_rng(7));
        assert_eq!(a, b);
        let c = s.generate(&mut crate::test_rng(8));
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_and_asserts(a in 0usize..50, b in 0usize..50) {
            prop_assume!(a != b);
            prop_assert!(a + b < 100);
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn bool_any_generates(flag in crate::bool::ANY, n in 0usize..4) {
            prop_assert!(n < 4);
            let _ = flag;
        }
    }
}

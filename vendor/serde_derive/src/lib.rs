//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Upstream serde's derives ride on `syn`/`quote`; neither is available in
//! this offline workspace, so this crate parses the derive input token
//! stream by hand. It supports exactly the shapes this workspace derives:
//!
//! * structs with named fields (no generics),
//! * enums whose variants are unit or have named fields.
//!
//! Anything else panics at compile time with a descriptive message, which
//! is the correct failure mode for a build-environment shim.
//!
//! The generated impls target the data model of the sibling `serde` shim:
//! `Serialize::serialize_value(&self) -> serde::Value` and
//! `Deserialize::deserialize_value(&serde::Value) -> Result<Self, _>`,
//! using serde's external JSON conventions (struct -> object, unit variant
//! -> string, struct variant -> single-key object).

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        /// `(variant, named fields)`; an empty field list is a unit variant.
        variants: Vec<(String, Vec<String>)>,
    },
}

/// Derives `serde::Serialize` for a named-field struct or a unit/named
/// enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_serialize(name, fields),
        Item::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` for a named-field struct or a unit/named
/// enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_deserialize(name, fields),
        Item::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.clone(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde_derive shim: generic type `{name}` is not supported")
        }
        other => panic!(
            "serde_derive shim: `{name}` must have a braced body (tuple/unit \
             types unsupported), found {other:?}"
        ),
    };

    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(&body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(&body),
        },
        other => panic!("serde_derive: expected struct or enum, found `{other}`"),
    }
}

/// Advances past leading `#[...]` attributes and a `pub` / `pub(...)`
/// visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` from a braced field/variant body, returning
/// the field names. Type tokens are skipped, tracking `<...>` depth so a
/// comma between generic arguments is not taken as a field separator.
fn parse_named_fields(body: &Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!(
                "serde_derive shim: tuple fields unsupported (field `{name}`, \
                 found {other:?})"
            ),
        }
        let mut angle_depth = 0usize;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1)
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

fn parse_variants(body: &Group) -> Vec<(String, Vec<String>)> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected variant name, found {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                parse_named_fields(g)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive shim: tuple variant `{name}` unsupported")
            }
            _ => Vec::new(),
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde_derive shim: discriminant on variant `{name}` unsupported")
            }
            None => {}
            other => panic!("serde_derive shim: unexpected token after `{name}`: {other:?}"),
        }
        variants.push((name, fields));
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// Emits the `("field", serialize(&expr))` pairs of an object literal.
fn field_pairs(out: &mut String, fields: &[String], access_prefix: &str) {
    for f in fields {
        out.push_str("(::std::string::String::from(\"");
        out.push_str(f);
        out.push_str("\"), ::serde::Serialize::serialize_value(");
        out.push_str(access_prefix);
        out.push_str(f);
        out.push_str(")),\n");
    }
}

fn gen_struct_serialize(name: &str, fields: &[String]) -> String {
    let mut out = String::new();
    out.push_str("#[automatically_derived]\nimpl ::serde::Serialize for ");
    out.push_str(name);
    out.push_str(
        " {\nfn serialize_value(&self) -> ::serde::Value {\n::serde::Value::Obj(::std::vec![\n",
    );
    field_pairs(&mut out, fields, "&self.");
    out.push_str("])\n}\n}\n");
    out
}

fn gen_enum_serialize(name: &str, variants: &[(String, Vec<String>)]) -> String {
    let mut out = String::new();
    out.push_str("#[automatically_derived]\nimpl ::serde::Serialize for ");
    out.push_str(name);
    out.push_str(" {\nfn serialize_value(&self) -> ::serde::Value {\nmatch self {\n");
    for (variant, fields) in variants {
        if fields.is_empty() {
            out.push_str(name);
            out.push_str("::");
            out.push_str(variant);
            out.push_str(" => ::serde::Value::Str(::std::string::String::from(\"");
            out.push_str(variant);
            out.push_str("\")),\n");
        } else {
            out.push_str(name);
            out.push_str("::");
            out.push_str(variant);
            out.push_str(" { ");
            out.push_str(&fields.join(", "));
            out.push_str(" } => ::serde::Value::Obj(::std::vec![(\n");
            out.push_str("::std::string::String::from(\"");
            out.push_str(variant);
            out.push_str("\"),\n::serde::Value::Obj(::std::vec![\n");
            field_pairs(&mut out, fields, "");
            out.push_str("]),\n)]),\n");
        }
    }
    out.push_str("}\n}\n}\n");
    out
}

/// Emits `field: ::serde::__field(src, "field")?,` initializers.
fn field_inits(out: &mut String, fields: &[String], src: &str) {
    for f in fields {
        out.push_str(f);
        out.push_str(": ::serde::__field(");
        out.push_str(src);
        out.push_str(", \"");
        out.push_str(f);
        out.push_str("\")?,\n");
    }
}

fn gen_struct_deserialize(name: &str, fields: &[String]) -> String {
    let mut out = String::new();
    out.push_str("#[automatically_derived]\nimpl<'de> ::serde::Deserialize<'de> for ");
    out.push_str(name);
    out.push_str(" {\nfn deserialize_value(v: &::serde::Value) -> ");
    out.push_str("::std::result::Result<Self, ::serde::DeError> {\n");
    out.push_str("::std::result::Result::Ok(");
    out.push_str(name);
    out.push_str(" {\n");
    field_inits(&mut out, fields, "v");
    out.push_str("})\n}\n}\n");
    out
}

fn gen_enum_deserialize(name: &str, variants: &[(String, Vec<String>)]) -> String {
    let mut out = String::new();
    out.push_str("#[automatically_derived]\nimpl<'de> ::serde::Deserialize<'de> for ");
    out.push_str(name);
    out.push_str(" {\nfn deserialize_value(v: &::serde::Value) -> ");
    out.push_str("::std::result::Result<Self, ::serde::DeError> {\n");
    out.push_str("match v {\n");

    // Unit variants deserialize from a bare string.
    out.push_str("::serde::Value::Str(tag) => match tag.as_str() {\n");
    for (variant, fields) in variants {
        if fields.is_empty() {
            out.push('"');
            out.push_str(variant);
            out.push_str("\" => ::std::result::Result::Ok(");
            out.push_str(name);
            out.push_str("::");
            out.push_str(variant);
            out.push_str("),\n");
        }
    }
    out.push_str("other => ::std::result::Result::Err(::serde::DeError::unknown_variant(\"");
    out.push_str(name);
    out.push_str("\", other)),\n},\n");

    // Struct variants deserialize from a single-key object.
    out.push_str(
        "::serde::Value::Obj(pairs) if pairs.len() == 1 => {\nlet (tag, inner) = &pairs[0];\n\
         match tag.as_str() {\n",
    );
    for (variant, fields) in variants {
        if !fields.is_empty() {
            out.push('"');
            out.push_str(variant);
            out.push_str("\" => ::std::result::Result::Ok(");
            out.push_str(name);
            out.push_str("::");
            out.push_str(variant);
            out.push_str(" {\n");
            field_inits(&mut out, fields, "inner");
            out.push_str("}),\n");
        }
    }
    out.push_str("other => ::std::result::Result::Err(::serde::DeError::unknown_variant(\"");
    out.push_str(name);
    out.push_str("\", other)),\n}\n},\n");

    out.push_str("_ => ::std::result::Result::Err(::serde::DeError::type_mismatch(\"");
    out.push_str(name);
    out.push_str(" variant\", v)),\n}\n}\n}\n");
    out
}

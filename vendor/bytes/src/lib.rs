//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes)
//! crate: the little-endian cursor subset used by the checkpoint format in
//! `mn-nn` (see `vendor/README.md` for the vendoring policy).
//!
//! [`Buf`] is implemented for `&[u8]` (reading advances the slice) and
//! [`BufMut`] for `Vec<u8>` (writing appends), which matches how the
//! upstream crate implements these traits for the same types.

/// Sequential little-endian reads from a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u32`, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than four bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than four bytes remain.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads one byte, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if no bytes remain.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads one signed byte, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if no bytes remain.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    /// Reads a little-endian `u16`, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two bytes remain.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Sequential little-endian writes to a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_u32_f32() {
        let mut out = Vec::new();
        out.put_u32_le(0xDEAD_BEEF);
        out.put_f32_le(1.5);
        out.put_slice(b"xy");

        let mut cursor: &[u8] = &out;
        assert_eq!(cursor.remaining(), 10);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_f32_le(), 1.5);
        let mut tail = [0u8; 2];
        cursor.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn round_trip_narrow_types() {
        let mut out = Vec::new();
        out.put_u8(0xAB);
        out.put_i8(-5);
        out.put_u16_le(0xBEEF);

        let mut cursor: &[u8] = &out;
        assert_eq!(cursor.remaining(), 4);
        assert_eq!(cursor.get_u8(), 0xAB);
        assert_eq!(cursor.get_i8(), -5);
        assert_eq!(cursor.get_u16_le(), 0xBEEF);
        assert!(!cursor.has_remaining());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn short_read_panics() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32_le();
    }

    #[test]
    fn little_endian_layout() {
        let mut out = Vec::new();
        out.put_u32_le(1);
        assert_eq!(out, vec![1, 0, 0, 0]);
    }
}

//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json)
//! (see `vendor/README.md` for the vendoring policy): JSON text on top of
//! the `serde` shim's [`serde::Value`] model.
//!
//! Supports everything the workspace's result files need — objects,
//! arrays, strings with escapes, numbers, booleans, null — with
//! `to_string_pretty` output that matches upstream serde_json's 2-space
//! indentation style.

use serde::Value;
use std::fmt;

/// A serialization or parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Fails on non-finite floats, which JSON cannot represent.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Fails on non-finite floats, which JSON cannot represent.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Fails on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: for<'de> serde::Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::deserialize_value(&value).map_err(|e| Error(e.to_string()))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            if !n.is_finite() {
                return Err(Error(format!("JSON cannot represent {n}")));
            }
            // `{}` on f64 prints integers without a fractional part, which
            // keeps integer-typed fields round-trippable.
            out.push_str(&format!("{n}"));
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Fails on malformed JSON or trailing non-whitespace.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|()| Value::Null),
            Some(b't') => self.eat_literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected byte {other:#04x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected `{`")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:` after object key")?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(self.err(&format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("a \"quoted\"\nname".into())),
            (
                "xs".into(),
                Value::Arr(vec![Value::Num(1.0), Value::Num(2.5)]),
            ),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            ("empty".into(), Value::Arr(vec![])),
        ]);
        let text = to_string_pretty(&v).unwrap();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(to_string(&5usize).unwrap(), "5");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Value::Obj(vec![("k".into(), Value::Num(1.0))]);
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"k\": 1\n}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("{} trailing").is_err());
        let bad: Result<usize, _> = from_str("\"str\"");
        assert!(bad.is_err());
    }

    #[test]
    fn non_finite_floats_error() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let v = Value::Str("π \t ✓ \u{0007}".into());
        let text = to_string(&v).unwrap();
        assert_eq!(parse(&text).unwrap(), v);
    }
}

//! Offline stand-in for the [`serde`](https://serde.rs) crate (see
//! `vendor/README.md` for the vendoring policy).
//!
//! Upstream serde abstracts over data formats with a visitor-based
//! serializer model. This workspace serializes to exactly one format —
//! JSON files written by `mn-bench` — so the shim collapses the model to a
//! concrete JSON-shaped [`Value`] tree:
//!
//! * [`Serialize`] renders `Self` into a [`Value`];
//! * [`Deserialize`] rebuilds `Self` from a borrowed [`Value`];
//! * `#[derive(Serialize, Deserialize)]` (re-exported from the sibling
//!   `serde_derive` shim) wires named-field structs and unit/named enums
//!   using serde's externally-tagged conventions, so the JSON emitted here
//!   matches what upstream serde_json would emit for the same types.
//!
//! The `serde_json` shim adds the text encoding/decoding on top.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-shaped tree.
///
/// Object keys keep insertion order (a `Vec` of pairs, not a map): output
/// field order then matches declaration order, like upstream serde_json.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers survive up to 2^53).
    Num(f64),
    /// A JSON string.
    Str(String),
    /// A JSON array.
    Arr(Vec<Value>),
    /// A JSON object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key, if this is an `Obj`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short name for error messages.
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// A deserialization error with a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// An error with a caller-supplied message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// "expected X, found Y" for a value of the wrong shape.
    pub fn type_mismatch(expected: &str, found: &Value) -> Self {
        DeError(format!("expected {expected}, found {}", found.kind()))
    }

    /// An unrecognized enum variant tag.
    pub fn unknown_variant(enum_name: &str, tag: &str) -> Self {
        DeError(format!("unknown variant `{tag}` for enum {enum_name}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a [`Value`] tree.
    fn serialize_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
///
/// The lifetime parameter exists only so `for<'de> Deserialize<'de>`
/// bounds written against upstream serde keep compiling; this shim never
/// borrows from the input.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] naming the first shape mismatch.
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

/// Extracts and deserializes a struct field (used by generated code).
///
/// # Errors
///
/// Fails if `v` is not an object, the field is missing, or the field's
/// value does not deserialize as `T`.
pub fn __field<'de, T: Deserialize<'de>>(v: &Value, name: &str) -> Result<T, DeError> {
    match v {
        Value::Obj(_) => match v.get(name) {
            Some(field) => {
                T::deserialize_value(field).map_err(|e| DeError(format!("field `{name}`: {e}")))
            }
            None => Err(DeError(format!("missing field `{name}`"))),
        },
        other => Err(DeError::type_mismatch("object", other)),
    }
}

// ---------------------------------------------------------------------------
// Impls for primitives and std containers
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::type_mismatch("bool", other)),
        }
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(DeError::type_mismatch("number", other)),
                }
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::type_mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::type_mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_round_trips() {
        let v = vec![1usize, 2, 3];
        let val = v.serialize_value();
        assert_eq!(
            val,
            Value::Arr(vec![Value::Num(1.0), Value::Num(2.0), Value::Num(3.0)])
        );
        let back: Vec<usize> = Deserialize::deserialize_value(&val).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn field_lookup_reports_missing() {
        let obj = Value::Obj(vec![("a".into(), Value::Num(1.0))]);
        let got: Result<usize, _> = __field(&obj, "a");
        assert_eq!(got, Ok(1));
        let missing: Result<usize, _> = __field(&obj, "b");
        assert!(missing
            .unwrap_err()
            .to_string()
            .contains("missing field `b`"));
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(None::<usize>.serialize_value(), Value::Null);
        let back: Option<usize> = Deserialize::deserialize_value(&Value::Null).unwrap();
        assert_eq!(back, None);
        let back: Option<usize> = Deserialize::deserialize_value(&Value::Num(3.0)).unwrap();
        assert_eq!(back, Some(3));
    }

    #[test]
    fn type_mismatch_is_descriptive() {
        let err = <bool as Deserialize>::deserialize_value(&Value::Num(1.0)).unwrap_err();
        assert_eq!(err.to_string(), "expected bool, found number");
    }
}

//! # mothernets-repro
//!
//! Umbrella package for the MotherNets (MLSYS 2020) reproduction. The
//! actual functionality lives in the workspace crates:
//!
//! * [`mn_tensor`] — tensor kernels;
//! * [`mn_nn`] — networks, architecture descriptors, training;
//! * [`mn_morph`] — function-preserving transformations (hatching);
//! * [`mn_data`] — synthetic CIFAR-10/100- and SVHN-like tasks, bagging;
//! * [`mn_ensemble`] — EA / Voting / Super Learner / Oracle inference;
//! * [`mothernets`] — MotherNet construction, τ-clustering, and the
//!   end-to-end ensemble training pipeline.
//!
//! This package hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`). See the repository README for
//! a tour.

pub use mn_data;
pub use mn_ensemble;
pub use mn_morph;
pub use mn_nn;
pub use mn_tensor;
pub use mothernets;

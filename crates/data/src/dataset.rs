//! Labelled image data sets.

use mn_tensor::Tensor;

/// A labelled set of images `[N, C, H, W]` with class labels `< num_classes`.
#[derive(Clone, Debug)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a data set.
    ///
    /// # Panics
    ///
    /// Panics if `images` is not 4-D, the label count does not match the
    /// image count, or any label is out of range.
    pub fn new(images: Tensor, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(images.shape().ndim(), 4, "images must be [N, C, H, W]");
        assert_eq!(
            images.shape().dim(0),
            labels.len(),
            "image/label count mismatch"
        );
        assert!(num_classes > 0, "num_classes must be positive");
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "labels must be < {num_classes}"
        );
        Dataset {
            images,
            labels,
            num_classes,
        }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The image tensor `[N, C, H, W]`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// The labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of class labels.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Input geometry `(channels, height, width)`.
    pub fn geometry(&self) -> (usize, usize, usize) {
        let d = self.images.shape().dims();
        (d[1], d[2], d[3])
    }

    /// A new data set containing the examples at `indices` (with
    /// repetition allowed — this is what bootstrap resampling uses).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or `indices` is empty.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        assert!(!indices.is_empty(), "subset cannot be empty");
        let (c, h, w) = self.geometry();
        let row = c * h * w;
        let mut images = Tensor::zeros([indices.len(), c, h, w]);
        let mut labels = Vec::with_capacity(indices.len());
        let src = self.images.data();
        let dst = images.data_mut();
        for (i, &idx) in indices.iter().enumerate() {
            assert!(idx < self.len(), "index {idx} out of range");
            dst[i * row..(i + 1) * row].copy_from_slice(&src[idx * row..(idx + 1) * row]);
            labels.push(self.labels[idx]);
        }
        Dataset {
            images,
            labels,
            num_classes: self.num_classes,
        }
    }

    /// Splits into `([0, at), [at, len))` without shuffling.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < at < len`.
    pub fn split_at(&self, at: usize) -> (Dataset, Dataset) {
        assert!(at > 0 && at < self.len(), "split point {at} out of range");
        let head: Vec<usize> = (0..at).collect();
        let tail: Vec<usize> = (at..self.len()).collect();
        (self.subset(&head), self.subset(&tail))
    }

    /// Number of examples per class, indexed by label.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_classes];
        for &l in &self.labels {
            hist[l] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let images = Tensor::from_vec([4, 1, 1, 2], (0..8).map(|v| v as f32).collect());
        Dataset::new(images, vec![0, 1, 0, 1], 2)
    }

    #[test]
    fn accessors() {
        let d = tiny();
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.geometry(), (1, 1, 2));
        assert_eq!(d.class_histogram(), vec![2, 2]);
    }

    #[test]
    fn subset_with_repetition() {
        let d = tiny();
        let s = d.subset(&[3, 3, 0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.labels(), &[1, 1, 0]);
        assert_eq!(&s.images().data()[0..2], &[6.0, 7.0]);
        assert_eq!(&s.images().data()[4..6], &[0.0, 1.0]);
    }

    #[test]
    fn split_at_partitions() {
        let d = tiny();
        let (a, b) = d.split_at(1);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 3);
        assert_eq!(b.labels(), &[1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn subset_validates_indices() {
        tiny().subset(&[9]);
    }

    #[test]
    #[should_panic(expected = "labels must be <")]
    fn new_validates_labels() {
        let images = Tensor::zeros([1, 1, 1, 1]);
        Dataset::new(images, vec![5], 2);
    }
}

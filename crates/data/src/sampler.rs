//! Bootstrap (bagging) resampling and train/validation splitting.
//!
//! Bagging (Breiman 1996) is how the paper trains both the bagging baseline
//! and the hatched ensemble members (§2.2): every member sees a resample of
//! the full training set, drawn with replacement, of the same size as the
//! original. A bootstrap resample contains ≈ 63.2 % unique items in
//! expectation — the mechanism behind the paper's observation that bagging
//! from scratch hurts accuracy (fewer unique items) while bagging *after*
//! hatching keeps bias low.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;

/// Draws a bootstrap resample of `dataset` (same size, with replacement).
pub fn bag<R: Rng>(dataset: &Dataset, rng: &mut R) -> Dataset {
    let n = dataset.len();
    let indices: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
    dataset.subset(&indices)
}

/// [`bag`] with a dedicated seed (deterministic per member).
pub fn bag_seeded(dataset: &Dataset, seed: u64) -> Dataset {
    bag(dataset, &mut StdRng::seed_from_u64(seed))
}

/// Fraction of `dataset` rows that are unique in a resample's index set.
/// Exposed for tests and diagnostics.
pub fn unique_fraction(indices: &[usize]) -> f64 {
    let mut sorted = indices.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len() as f64 / indices.len() as f64
}

/// Shuffles and splits a data set into `(train, validation)` where the
/// validation part holds `val_fraction` of the examples (at least 1).
///
/// # Panics
///
/// Panics unless `0 < val_fraction < 1` and the set has at least 2 items.
pub fn train_val_split(dataset: &Dataset, val_fraction: f64, seed: u64) -> (Dataset, Dataset) {
    assert!(
        val_fraction > 0.0 && val_fraction < 1.0,
        "val_fraction must be in (0, 1), got {val_fraction}"
    );
    assert!(dataset.len() >= 2, "need at least 2 examples to split");
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    // Fisher–Yates.
    for i in (1..indices.len()).rev() {
        let j = rng.gen_range(0..=i);
        indices.swap(i, j);
    }
    let val_len =
        ((dataset.len() as f64 * val_fraction).round() as usize).clamp(1, dataset.len() - 1);
    let (val_idx, train_idx) = indices.split_at(val_len);
    (dataset.subset(train_idx), dataset.subset(val_idx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_tensor::Tensor;

    fn dataset(n: usize) -> Dataset {
        let images = Tensor::zeros([n, 1, 2, 2]);
        let labels = (0..n).map(|i| i % 2).collect();
        Dataset::new(images, labels, 2)
    }

    #[test]
    fn bag_preserves_size_and_classes() {
        let d = dataset(50);
        let b = bag_seeded(&d, 1);
        assert_eq!(b.len(), 50);
        assert_eq!(b.num_classes(), 2);
    }

    #[test]
    fn bag_is_deterministic_per_seed() {
        let d = dataset(30);
        let a = bag_seeded(&d, 7);
        let b = bag_seeded(&d, 7);
        assert_eq!(a.labels(), b.labels());
        let c = bag_seeded(&d, 8);
        assert_ne!(a.labels(), c.labels());
    }

    #[test]
    fn bag_is_bitwise_deterministic_and_keeps_rows_aligned() {
        // Encode each row's label into its pixels so resampling that
        // desynchronized images from labels would be caught.
        let n = 64;
        let mut images = Tensor::zeros([n, 1, 2, 2]);
        let labels: Vec<usize> = (0..n).map(|i| i % 5).collect();
        for i in 0..n {
            for px in 0..4 {
                images[i * 4 + px] = labels[i] as f32;
            }
        }
        let d = Dataset::new(images, labels, 5);

        let a = bag_seeded(&d, 11);
        let b = bag_seeded(&d, 11);
        // Same seed: identical down to the image bits, not just labels.
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.images().data(), b.images().data());
        // Every resampled row still carries its own label's pixel value.
        for i in 0..a.len() {
            let label = a.labels()[i] as f32;
            assert!(a.images().data()[i * 4..(i + 1) * 4]
                .iter()
                .all(|&v| v == label));
        }
        // A different seed draws a different resample.
        let c = bag_seeded(&d, 12);
        assert_ne!(a.images().data(), c.images().data());
    }

    #[test]
    fn bootstrap_unique_fraction_near_632() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let indices: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
        let f = unique_fraction(&indices);
        assert!(
            (f - 0.632).abs() < 0.01,
            "unique fraction {f} far from 1 - 1/e"
        );
    }

    #[test]
    fn split_partitions_without_overlap_in_counts() {
        let d = dataset(100);
        let (train, val) = train_val_split(&d, 0.2, 3);
        assert_eq!(train.len(), 80);
        assert_eq!(val.len(), 20);
    }

    #[test]
    fn split_is_deterministic() {
        let d = dataset(40);
        let (t1, v1) = train_val_split(&d, 0.25, 9);
        let (t2, v2) = train_val_split(&d, 0.25, 9);
        assert_eq!(t1.labels(), t2.labels());
        assert_eq!(v1.labels(), v2.labels());
    }

    #[test]
    #[should_panic(expected = "val_fraction")]
    fn split_validates_fraction() {
        train_val_split(&dataset(10), 1.5, 0);
    }
}

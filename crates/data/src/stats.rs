//! Per-channel data statistics and standardization.
//!
//! Standard preprocessing for image classification: compute per-channel
//! mean/standard deviation on the *training* split and apply the same
//! affine transform to every split (never re-fit on test data).

use crate::dataset::Dataset;

/// Per-channel first and second moments of a data set.
#[derive(Clone, PartialEq, Debug)]
pub struct ChannelStats {
    /// Mean per channel.
    pub mean: Vec<f32>,
    /// Standard deviation per channel (floored at a small epsilon).
    pub std: Vec<f32>,
}

impl ChannelStats {
    /// Computes the statistics of a data set's images.
    pub fn of(dataset: &Dataset) -> Self {
        let (c, h, w) = dataset.geometry();
        let n = dataset.len();
        let plane = h * w;
        let count = (n * plane) as f64;
        let data = dataset.images().data();
        let mut mean = vec![0.0f64; c];
        for i in 0..n {
            for (ch, m) in mean.iter_mut().enumerate() {
                let base = (i * c + ch) * plane;
                *m += data[base..base + plane]
                    .iter()
                    .map(|&v| v as f64)
                    .sum::<f64>();
            }
        }
        mean.iter_mut().for_each(|m| *m /= count);
        let mut var = vec![0.0f64; c];
        for i in 0..n {
            for ch in 0..c {
                let base = (i * c + ch) * plane;
                var[ch] += data[base..base + plane]
                    .iter()
                    .map(|&v| {
                        let d = v as f64 - mean[ch];
                        d * d
                    })
                    .sum::<f64>();
            }
        }
        var.iter_mut().for_each(|v| *v /= count);
        ChannelStats {
            mean: mean.into_iter().map(|m| m as f32).collect(),
            std: var
                .into_iter()
                .map(|v| (v.sqrt() as f32).max(1e-6))
                .collect(),
        }
    }

    /// Returns a standardized copy of a data set:
    /// `x' = (x − mean[c]) / std[c]`.
    ///
    /// # Panics
    ///
    /// Panics if the channel count differs from the fitted statistics.
    pub fn standardize(&self, dataset: &Dataset) -> Dataset {
        let (c, h, w) = dataset.geometry();
        assert_eq!(c, self.mean.len(), "channel count mismatch");
        let plane = h * w;
        let mut images = dataset.images().clone();
        {
            let data = images.data_mut();
            for i in 0..dataset.len() {
                for ch in 0..c {
                    let base = (i * c + ch) * plane;
                    let (m, s) = (self.mean[ch], self.std[ch]);
                    for v in &mut data[base..base + plane] {
                        *v = (*v - m) / s;
                    }
                }
            }
        }
        Dataset::new(images, dataset.labels().to_vec(), dataset.num_classes())
    }
}

/// Convenience: fit on `train`, apply to both splits, return
/// `(train', test', stats)`.
pub fn standardize_task(train: &Dataset, test: &Dataset) -> (Dataset, Dataset, ChannelStats) {
    let stats = ChannelStats::of(train);
    (stats.standardize(train), stats.standardize(test), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_tensor::Tensor;

    fn skewed_dataset() -> Dataset {
        // Channel 0 ~ mean 10 std 2-ish, channel 1 ~ mean -5.
        let mut images = Tensor::zeros([4, 2, 2, 2]);
        for i in 0..4 {
            for p in 0..4 {
                *images.at4_mut(i, 0, p / 2, p % 2) = 10.0 + (i as f32 - 1.5);
                *images.at4_mut(i, 1, p / 2, p % 2) = -5.0 + 0.5 * (p as f32 - 1.5);
            }
        }
        Dataset::new(images, vec![0, 1, 0, 1], 2)
    }

    #[test]
    fn stats_recover_moments() {
        let d = skewed_dataset();
        let stats = ChannelStats::of(&d);
        assert!((stats.mean[0] - 10.0).abs() < 1e-4);
        assert!((stats.mean[1] + 5.0).abs() < 1e-4);
        assert!(stats.std[0] > 0.0 && stats.std[1] > 0.0);
    }

    #[test]
    fn standardized_data_has_zero_mean_unit_std() {
        let d = skewed_dataset();
        let stats = ChannelStats::of(&d);
        let s = stats.standardize(&d);
        let restats = ChannelStats::of(&s);
        for c in 0..2 {
            assert!(restats.mean[c].abs() < 1e-4, "mean {}", restats.mean[c]);
            assert!(
                (restats.std[c] - 1.0).abs() < 1e-3,
                "std {}",
                restats.std[c]
            );
        }
        // Labels and geometry preserved.
        assert_eq!(s.labels(), d.labels());
        assert_eq!(s.geometry(), d.geometry());
    }

    #[test]
    fn constant_channel_does_not_divide_by_zero() {
        let images = Tensor::filled([3, 1, 2, 2], 7.0);
        let d = Dataset::new(images, vec![0, 0, 0], 1);
        let stats = ChannelStats::of(&d);
        let s = stats.standardize(&d);
        assert!(s.images().data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn standardize_task_fits_on_train_only() {
        let train = skewed_dataset();
        // Test split with a different distribution.
        let test = Dataset::new(Tensor::filled([2, 2, 2, 2], 100.0), vec![0, 1], 2);
        let (strain, stest, stats) = standardize_task(&train, &test);
        // Train standardizes to ~0 mean; test does NOT (transform is fixed).
        let train_stats = ChannelStats::of(&strain);
        assert!(train_stats.mean[0].abs() < 1e-4);
        let test_stats = ChannelStats::of(&stest);
        assert!(test_stats.mean[0].abs() > 1.0);
        assert_eq!(stats.mean.len(), 2);
    }
}

//! Preset tasks simulating the paper's three data sets.
//!
//! | Preset | Simulates | Key property preserved |
//! |--------|-----------|------------------------|
//! | [`cifar10_sim`]  | CIFAR-10  | 10 classes, high intra-class variation |
//! | [`cifar100_sim`] | CIFAR-100 | many classes (ensembles help more, Fig. 7) |
//! | [`svhn_sim`]     | SVHN      | low intra-class variation, more training data, easy base task (Fig. 8) |
//!
//! Every preset is parameterized by a [`Scale`] so tests can run in
//! milliseconds while the figure harness uses more data.

use crate::synthetic::{generate, SyntheticSpec, SyntheticTask};

/// Experiment scale: trades fidelity for runtime.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Milliseconds; for unit tests.
    Tiny,
    /// Seconds per network; the default for the figure harness.
    Small,
    /// The largest configuration that is still laptop-feasible.
    Full,
}

impl Scale {
    /// Parses `"tiny" | "small" | "full"` (case-insensitive).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scale::Tiny => write!(f, "tiny"),
            Scale::Small => write!(f, "small"),
            Scale::Full => write!(f, "full"),
        }
    }
}

/// A CIFAR-10-like task: 10 classes, multi-modal classes, moderate noise.
pub fn cifar10_sim(scale: Scale, seed: u64) -> SyntheticTask {
    let (train_pc, test_pc) = match scale {
        Scale::Tiny => (16, 8),
        Scale::Small => (90, 30),
        Scale::Full => (240, 80),
    };
    generate(&SyntheticSpec {
        num_classes: 10,
        train_per_class: train_pc,
        test_per_class: test_pc,
        channels: 3,
        height: 8,
        width: 8,
        modes_per_class: 3,
        prototype_scale: 1.0,
        jitter: 0.55,
        noise_std: 0.85,
        seed,
    })
}

/// A CIFAR-100-like task: many classes with fewer examples each. `Tiny`
/// scales the label space down to 20 classes to stay fast; `Small`/`Full`
/// use the full 100.
pub fn cifar100_sim(scale: Scale, seed: u64) -> SyntheticTask {
    let (classes, train_pc, test_pc) = match scale {
        Scale::Tiny => (20, 8, 4),
        Scale::Small => (100, 12, 4),
        Scale::Full => (100, 30, 10),
    };
    generate(&SyntheticSpec {
        num_classes: classes,
        train_per_class: train_pc,
        test_per_class: test_pc,
        channels: 3,
        height: 8,
        width: 8,
        modes_per_class: 3,
        prototype_scale: 1.0,
        jitter: 0.6,
        noise_std: 0.9,
        seed: seed.wrapping_add(100),
    })
}

/// An SVHN-like task: 10 classes (digits), a single mode per class (cropped
/// digits show little intra-class variation), lower noise, and more
/// training data — so a single base learner is already strong, as in the
/// paper's Figure 8 discussion.
pub fn svhn_sim(scale: Scale, seed: u64) -> SyntheticTask {
    let (train_pc, test_pc) = match scale {
        Scale::Tiny => (24, 10),
        Scale::Small => (130, 45),
        Scale::Full => (360, 130),
    };
    generate(&SyntheticSpec {
        num_classes: 10,
        train_per_class: train_pc,
        test_per_class: test_pc,
        channels: 3,
        height: 8,
        width: 8,
        modes_per_class: 1,
        prototype_scale: 1.1,
        jitter: 0.35,
        noise_std: 0.7,
        seed: seed.wrapping_add(200),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parse_roundtrip() {
        for s in [Scale::Tiny, Scale::Small, Scale::Full] {
            assert_eq!(Scale::parse(&s.to_string()), Some(s));
        }
        assert_eq!(Scale::parse("LARGE"), None);
    }

    #[test]
    fn cifar10_sim_shape() {
        let t = cifar10_sim(Scale::Tiny, 0);
        assert_eq!(t.train.num_classes(), 10);
        assert_eq!(t.train.len(), 160);
        assert_eq!(t.test.len(), 80);
        assert_eq!(t.train.geometry(), (3, 8, 8));
    }

    #[test]
    fn cifar100_sim_has_many_classes() {
        let t = cifar100_sim(Scale::Tiny, 0);
        assert_eq!(t.train.num_classes(), 20);
        let full = cifar100_sim(Scale::Small, 0);
        assert_eq!(full.train.num_classes(), 100);
    }

    #[test]
    fn svhn_sim_has_single_mode_and_more_data() {
        let svhn = svhn_sim(Scale::Tiny, 0);
        let cifar = cifar10_sim(Scale::Tiny, 0);
        assert_eq!(svhn.spec.modes_per_class, 1);
        assert!(svhn.train.len() > cifar.train.len());
        assert!(svhn.spec.noise_std < cifar.spec.noise_std);
    }

    #[test]
    fn presets_differ_across_seeds() {
        let a = cifar10_sim(Scale::Tiny, 0);
        let b = cifar10_sim(Scale::Tiny, 1);
        assert_ne!(a.train.images().data(), b.train.images().data());
    }
}

//! Synthetic image-classification task generator.
//!
//! The paper evaluates on CIFAR-10, CIFAR-100 and SVHN. Those data sets are
//! not available in this environment, so — per the substitution policy in
//! DESIGN.md — we generate synthetic tasks that preserve the properties the
//! paper's claims depend on:
//!
//! * **many classes** (10 or 100), each with a distinct signal;
//! * **intra-class variation** (each class is a mixture of
//!   [`SyntheticSpec::modes_per_class`] prototype "modes" plus smooth
//!   per-sample jitter) — this is the knob that makes CIFAR harder than
//!   SVHN in the paper's discussion of Figure 8;
//! * **label noise robustness pressure** via white pixel noise, so that
//!   single models plateau above zero error and ensembling helps.
//!
//! Class prototypes are smooth random fields (sums of a few random 2-D
//! sinusoids), which gives convolutional networks genuine spatial structure
//! to exploit — unlike i.i.d. Gaussian blobs.

use mn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;

/// Parameters of a synthetic classification task.
#[derive(Clone, Debug)]
pub struct SyntheticSpec {
    /// Number of class labels.
    pub num_classes: usize,
    /// Training examples per class.
    pub train_per_class: usize,
    /// Test examples per class.
    pub test_per_class: usize,
    /// Image channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Prototype modes per class (intra-class variation; 1 = SVHN-like,
    /// 3+ = CIFAR-like).
    pub modes_per_class: usize,
    /// Amplitude of class prototypes (signal).
    pub prototype_scale: f32,
    /// Amplitude of smooth per-sample perturbations.
    pub jitter: f32,
    /// Standard deviation of white pixel noise.
    pub noise_std: f32,
    /// Master seed.
    pub seed: u64,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        SyntheticSpec {
            num_classes: 10,
            train_per_class: 100,
            test_per_class: 30,
            channels: 3,
            height: 8,
            width: 8,
            modes_per_class: 3,
            prototype_scale: 1.0,
            jitter: 0.5,
            noise_std: 0.7,
            seed: 0,
        }
    }
}

/// A generated task: train and test splits drawn from the same distribution.
#[derive(Clone, Debug)]
pub struct SyntheticTask {
    /// Training set.
    pub train: Dataset,
    /// Held-out test set.
    pub test: Dataset,
    /// The generating parameters.
    pub spec: SyntheticSpec,
}

/// A smooth random field: a sum of `components` random 2-D sinusoids per
/// channel.
fn smooth_field(
    channels: usize,
    height: usize,
    width: usize,
    components: usize,
    rng: &mut StdRng,
) -> Tensor {
    let mut field = Tensor::zeros([channels, height, width]);
    let norm = 1.0 / (components as f32).sqrt();
    for c in 0..channels {
        for _ in 0..components {
            let fx: f32 = rng.gen_range(0.5..2.5);
            let fy: f32 = rng.gen_range(0.5..2.5);
            let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
            let amp: f32 = rng.gen_range(0.5..1.0) * norm;
            for h in 0..height {
                for w in 0..width {
                    let u = h as f32 / height as f32;
                    let v = w as f32 / width as f32;
                    let val = amp * (std::f32::consts::TAU * (fx * u + fy * v) + phase).sin();
                    let idx = (c * height + h) * width + w;
                    field[idx] += val;
                }
            }
        }
    }
    field
}

/// Generates a task from a spec. Deterministic given `spec.seed`.
///
/// # Panics
///
/// Panics if any count or extent in the spec is zero.
pub fn generate(spec: &SyntheticSpec) -> SyntheticTask {
    assert!(spec.num_classes > 0, "num_classes must be positive");
    assert!(
        spec.train_per_class > 0 && spec.test_per_class > 0,
        "need examples per class"
    );
    assert!(spec.modes_per_class > 0, "need at least one mode per class");
    assert!(
        spec.channels > 0 && spec.height > 0 && spec.width > 0,
        "image geometry must be positive"
    );
    let mut proto_rng = StdRng::seed_from_u64(spec.seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));

    // Per-class, per-mode prototypes.
    let mut prototypes: Vec<Vec<Tensor>> = Vec::with_capacity(spec.num_classes);
    for _ in 0..spec.num_classes {
        let modes = (0..spec.modes_per_class)
            .map(|_| smooth_field(spec.channels, spec.height, spec.width, 4, &mut proto_rng))
            .collect();
        prototypes.push(modes);
    }

    let mut sample_rng = StdRng::seed_from_u64(spec.seed.wrapping_mul(0x517C_C1B7).wrapping_add(2));
    let mut make_split = |per_class: usize| -> Dataset {
        let n = per_class * spec.num_classes;
        let mut images = Tensor::zeros([n, spec.channels, spec.height, spec.width]);
        let mut labels = Vec::with_capacity(n);
        let row = spec.channels * spec.height * spec.width;
        for i in 0..n {
            let class = i % spec.num_classes;
            labels.push(class);
            let mode = sample_rng.gen_range(0..spec.modes_per_class);
            let jitter_field =
                smooth_field(spec.channels, spec.height, spec.width, 2, &mut sample_rng);
            let noise = Tensor::randn([row], spec.noise_std, &mut sample_rng);
            let proto = &prototypes[class][mode];
            let dst = &mut images.data_mut()[i * row..(i + 1) * row];
            for j in 0..row {
                dst[j] = spec.prototype_scale * proto[j] + spec.jitter * jitter_field[j] + noise[j];
            }
        }
        Dataset::new(images, labels, spec.num_classes)
    };

    let train = make_split(spec.train_per_class);
    let test = make_split(spec.test_per_class);
    SyntheticTask {
        train,
        test,
        spec: spec.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> SyntheticSpec {
        SyntheticSpec {
            num_classes: 4,
            train_per_class: 10,
            test_per_class: 5,
            channels: 2,
            height: 6,
            width: 6,
            ..SyntheticSpec::default()
        }
    }

    #[test]
    fn counts_and_balance() {
        let task = generate(&small_spec());
        assert_eq!(task.train.len(), 40);
        assert_eq!(task.test.len(), 20);
        assert_eq!(task.train.class_histogram(), vec![10; 4]);
        assert_eq!(task.test.class_histogram(), vec![5; 4]);
        assert_eq!(task.train.geometry(), (2, 6, 6));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&small_spec());
        let b = generate(&small_spec());
        assert_eq!(a.train.images().data(), b.train.images().data());
        assert_eq!(a.test.labels(), b.test.labels());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&small_spec());
        let b = generate(&SyntheticSpec {
            seed: 1,
            ..small_spec()
        });
        assert_ne!(a.train.images().data(), b.train.images().data());
    }

    #[test]
    fn classes_are_separable_signal() {
        // Same-class examples must correlate more with their prototype
        // structure than cross-class ones do, on average: check that the
        // mean same-class dot product exceeds the mean cross-class one.
        let task = generate(&SyntheticSpec {
            noise_std: 0.3,
            jitter: 0.2,
            modes_per_class: 1,
            ..small_spec()
        });
        let d = &task.train;
        let row: usize = {
            let (c, h, w) = d.geometry();
            c * h * w
        };
        let data = d.images().data();
        let dot = |i: usize, j: usize| -> f32 {
            (0..row)
                .map(|k| data[i * row + k] * data[j * row + k])
                .sum::<f32>()
                / row as f32
        };
        let mut same = 0.0;
        let mut same_n = 0;
        let mut cross = 0.0;
        let mut cross_n = 0;
        for i in 0..d.len() {
            for j in (i + 1)..d.len() {
                if d.labels()[i] == d.labels()[j] {
                    same += dot(i, j);
                    same_n += 1;
                } else {
                    cross += dot(i, j);
                    cross_n += 1;
                }
            }
        }
        let same_mean = same / same_n as f32;
        let cross_mean = cross / cross_n as f32;
        assert!(
            same_mean > cross_mean + 0.05,
            "classes not separable: same {same_mean}, cross {cross_mean}"
        );
    }

    #[test]
    fn smooth_field_is_not_constant() {
        let mut rng = StdRng::seed_from_u64(3);
        let f = smooth_field(1, 8, 8, 4, &mut rng);
        let mean = f.mean();
        let var = f
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 64.0;
        assert!(var > 0.01, "field nearly constant (var {var})");
    }

    #[test]
    #[should_panic(expected = "at least one mode")]
    fn rejects_zero_modes() {
        generate(&SyntheticSpec {
            modes_per_class: 0,
            ..small_spec()
        });
    }
}

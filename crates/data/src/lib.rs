//! # mn-data
//!
//! Data substrate for the MotherNets reproduction: labelled image
//! [`Dataset`]s, a [`synthetic`] task generator that simulates the paper's
//! CIFAR-10 / CIFAR-100 / SVHN data sets (see DESIGN.md §4 for the
//! substitution argument), and the bootstrap [`sampler`] used by bagging.
//!
//! ## Example
//!
//! ```
//! use mn_data::presets::{cifar10_sim, Scale};
//! use mn_data::sampler::bag_seeded;
//!
//! let task = cifar10_sim(Scale::Tiny, 42);
//! assert_eq!(task.train.num_classes(), 10);
//!
//! // A bootstrap resample for one ensemble member.
//! let member_data = bag_seeded(&task.train, 7);
//! assert_eq!(member_data.len(), task.train.len());
//! ```

pub mod dataset;
pub mod presets;
pub mod sampler;
pub mod stats;
pub mod synthetic;

pub use dataset::Dataset;
pub use presets::Scale;
pub use synthetic::{SyntheticSpec, SyntheticTask};

//! File-tree walker: collects the lintable surface of the workspace.
//!
//! In scope: `src/`, `tests/`, every `crates/*/src` and `crates/*/tests`,
//! and `.github/workflows` (for the CI drift lint). Out of scope:
//! `vendor/` (third-party stand-ins with their own conventions, see
//! vendor/README.md), `target/`, and `examples/` (smoke-run by CI, not
//! part of the serving stack's invariant surface).

use std::fs;
use std::path::{Path, PathBuf};

use crate::source::SourceFile;

/// A non-Rust file the lints read as raw text (CI workflow YAML).
pub struct RawFile {
    pub rel_path: String,
    pub text: String,
}

/// A workspace package: its manifest name and repo-relative directory.
pub struct Package {
    pub name: String,
    /// `""` for the workspace-root package.
    pub dir: String,
}

/// Everything a lint run can look at.
pub struct Tree {
    pub root: PathBuf,
    pub rust_files: Vec<SourceFile>,
    pub workflow_files: Vec<RawFile>,
    pub packages: Vec<Package>,
}

impl Tree {
    /// The repo-relative paths of every `tests/<name>.rs` integration
    /// suite file, `/`-separated.
    pub fn integration_suites(&self) -> Vec<&str> {
        self.rust_files
            .iter()
            .map(|f| f.rel_path.as_str())
            .filter(|p| {
                p.strip_suffix(".rs")
                    .is_some_and(|stem| stem.contains("tests/") || stem.starts_with("tests/"))
            })
            .collect()
    }
}

/// Loads the lintable tree under `root`. Missing directories are simply
/// skipped, so synthesized fixture trees stay small.
pub fn load_tree(root: &Path) -> std::io::Result<Tree> {
    let mut rust_dirs = vec![root.join("src"), root.join("tests")];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_roots: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_roots.sort();
        for c in crate_roots {
            rust_dirs.push(c.join("src"));
            rust_dirs.push(c.join("tests"));
        }
    }

    let mut rust_paths = Vec::new();
    for dir in rust_dirs {
        collect_files(&dir, "rs", &mut rust_paths)?;
    }
    rust_paths.sort();

    let mut rust_files = Vec::new();
    for path in rust_paths {
        let text = fs::read_to_string(&path)?;
        rust_files.push(SourceFile::parse(rel(root, &path), text));
    }

    let mut workflow_paths = Vec::new();
    collect_files(&root.join(".github/workflows"), "yml", &mut workflow_paths)?;
    collect_files(&root.join(".github/workflows"), "yaml", &mut workflow_paths)?;
    workflow_paths.sort();
    let mut workflow_files = Vec::new();
    for path in workflow_paths {
        workflow_files.push(RawFile {
            rel_path: rel(root, &path),
            text: fs::read_to_string(&path)?,
        });
    }

    Ok(Tree {
        packages: find_packages(root),
        root: root.to_path_buf(),
        rust_files,
        workflow_files,
    })
}

/// Recursively collects files with `ext` under `dir` (no-op when `dir`
/// does not exist).
fn collect_files(dir: &Path, ext: &str, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_files(&path, ext, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some(ext) {
            out.push(path);
        }
    }
    Ok(())
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Reads package names from the root and `crates/*` manifests. A flat
/// line scan is enough: manifests in this workspace keep `name = "..."`
/// in `[package]`, and `[workspace.dependencies]` entries are inline
/// tables that never put `name =` at line start.
fn find_packages(root: &Path) -> Vec<Package> {
    let mut out = Vec::new();
    let mut manifest_dirs = vec![root.to_path_buf()];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        manifest_dirs.extend(dirs);
    }
    for dir in manifest_dirs {
        let Ok(text) = fs::read_to_string(dir.join("Cargo.toml")) else {
            continue;
        };
        let mut in_package = false;
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_package = line == "[package]";
            } else if in_package {
                if let Some(rest) = line.strip_prefix("name") {
                    let name = rest
                        .trim_start()
                        .strip_prefix('=')
                        .map(|v| v.trim().trim_matches('"'))
                        .unwrap_or("");
                    if !name.is_empty() {
                        out.push(Package {
                            name: name.to_string(),
                            dir: rel(root, &dir),
                        });
                        break;
                    }
                }
            }
        }
    }
    out
}

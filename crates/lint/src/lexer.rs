//! A small, self-contained Rust lexer — just enough token structure for
//! tidy-style lints, with none of `syn`'s surface.
//!
//! The one job this lexer must do *perfectly* is classification: an
//! `unsafe` or `unwrap` occurrence inside a string literal, raw string,
//! char literal, or (nested) block comment must never be mistaken for
//! code, and a `// SAFETY:` comment must never be mistaken for anything
//! else. Everything subtler than that (numeric suffixes, precise doc-ness
//! of `////`) is handled on a best-effort basis — lints only look at
//! identifiers, punctuation, and comment/string boundaries.
//!
//! Tokenization is lossless: concatenating every token's text reproduces
//! the input byte-for-byte (property-tested in `tests/lexer_props.rs`),
//! which is what makes the token stream a trustworthy view of the file.

/// The classification of one lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace (including newlines).
    Whitespace,
    /// A `//` comment, up to but excluding the newline. `doc` marks
    /// `///` and `//!` forms.
    LineComment { doc: bool },
    /// A `/* ... */` comment, nesting tracked. `doc` marks `/**` and
    /// `/*!` forms.
    BlockComment { doc: bool },
    /// A plain or byte string literal (`"..."`, `b"..."`), escapes
    /// handled.
    Str,
    /// A raw string literal (`r"..."`, `r#"..."#`, `br##"..."##`, ...).
    RawStr,
    /// A char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// An identifier or keyword (including raw identifiers `r#type`).
    Ident,
    /// A numeric literal (integer or float, suffixes consumed).
    Number,
    /// A single punctuation character.
    Punct,
}

impl TokenKind {
    /// True for comments and whitespace — tokens lints skip when looking
    /// at code structure.
    pub fn is_trivia(self) -> bool {
        matches!(
            self,
            TokenKind::Whitespace | TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }

    /// True for both comment forms.
    pub fn is_comment(self) -> bool {
        matches!(
            self,
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }
}

/// One token: a classified byte range of the source.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: usize,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a lossless token stream (see module docs).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        chars: src.char_indices().collect(),
        i: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    chars: Vec<(usize, char)>,
    /// Index into `chars`.
    i: usize,
    line: usize,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).map(|&(_, c)| c)
    }

    fn byte_at(&self, chars_idx: usize) -> usize {
        self.chars
            .get(chars_idx)
            .map(|&(b, _)| b)
            .unwrap_or(self.src.len())
    }

    /// Emits a token covering chars `[from, self.i)` and advances the
    /// line counter past any newlines it contains.
    fn emit(&mut self, kind: TokenKind, from: usize) {
        let start = self.byte_at(from);
        let end = self.byte_at(self.i);
        let line = self.line;
        self.line += self.src[start..end].bytes().filter(|&b| b == b'\n').count();
        self.tokens.push(Token {
            kind,
            start,
            end,
            line,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let from = self.i;
            match c {
                c if c.is_whitespace() => {
                    while self.peek(0).is_some_and(char::is_whitespace) {
                        self.i += 1;
                    }
                    self.emit(TokenKind::Whitespace, from);
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(from),
                '/' if self.peek(1) == Some('*') => self.block_comment(from),
                '"' => {
                    self.i += 1;
                    self.string_body();
                    self.emit(TokenKind::Str, from);
                }
                '\'' => self.char_or_lifetime(from),
                c if is_ident_start(c) => self.ident_or_prefixed_literal(from),
                c if c.is_ascii_digit() => self.number(from),
                _ => {
                    self.i += 1;
                    self.emit(TokenKind::Punct, from);
                }
            }
        }
        self.tokens
    }

    fn line_comment(&mut self, from: usize) {
        // `///` and `//!` are doc comments; `////...` is rustdoc-plain.
        let doc = match (self.peek(2), self.peek(3)) {
            (Some('!'), _) => true,
            (Some('/'), Some('/')) => false,
            (Some('/'), _) => true,
            _ => false,
        };
        while self.peek(0).is_some_and(|c| c != '\n') {
            self.i += 1;
        }
        self.emit(TokenKind::LineComment { doc }, from);
    }

    fn block_comment(&mut self, from: usize) {
        // `/**` (but not `/***` or the degenerate `/**/`) and `/*!` are
        // doc comments.
        let doc = match (self.peek(2), self.peek(3)) {
            (Some('!'), _) => true,
            (Some('*'), Some('*')) | (Some('*'), Some('/')) => false,
            (Some('*'), _) => true,
            _ => false,
        };
        self.i += 2;
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.i += 2;
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.i += 2;
                }
                (Some(_), _) => self.i += 1,
                // Unterminated comment: consume to EOF.
                (None, _) => break,
            }
        }
        self.emit(TokenKind::BlockComment { doc }, from);
    }

    /// Consumes a `"..."` body (opening quote already consumed),
    /// honoring `\` escapes. Unterminated: consumes to EOF.
    fn string_body(&mut self) {
        loop {
            match self.peek(0) {
                Some('\\') => self.i += 2,
                Some('"') => {
                    self.i += 1;
                    break;
                }
                Some(_) => self.i += 1,
                None => break,
            }
        }
    }

    /// Consumes `r"..."` / `r#"..."#` with `hashes` opening `#`s already
    /// counted (cursor sits on the opening quote). Unterminated: EOF.
    fn raw_string_body(&mut self, hashes: usize) {
        self.i += 1; // opening quote
        'scan: loop {
            match self.peek(0) {
                Some('"') => {
                    for h in 0..hashes {
                        if self.peek(1 + h) != Some('#') {
                            self.i += 1;
                            continue 'scan;
                        }
                    }
                    self.i += 1 + hashes;
                    break;
                }
                Some(_) => self.i += 1,
                None => break,
            }
        }
    }

    fn char_or_lifetime(&mut self, from: usize) {
        // `'ident` not followed by a closing quote is a lifetime; `'a'`,
        // `'\n'`, `'"'` are char literals.
        if self.peek(1).is_some_and(is_ident_start) && self.peek(1) != Some('\\') {
            let mut j = 2;
            while self.peek(j).is_some_and(is_ident_continue) {
                j += 1;
            }
            if self.peek(j) != Some('\'') {
                self.i += j;
                self.emit(TokenKind::Lifetime, from);
                return;
            }
        }
        self.i += 1;
        loop {
            match self.peek(0) {
                Some('\\') => self.i += 2,
                Some('\'') => {
                    self.i += 1;
                    break;
                }
                // A newline inside a char literal is malformed source;
                // stop so one bad quote cannot swallow the file.
                Some('\n') | None => break,
                Some(_) => self.i += 1,
            }
        }
        self.emit(TokenKind::Char, from);
    }

    fn ident_or_prefixed_literal(&mut self, from: usize) {
        let mut j = 1;
        while self.peek(j).is_some_and(is_ident_continue) {
            j += 1;
        }
        let end_byte = self.byte_at(self.i + j);
        let word = &self.src[self.byte_at(self.i)..end_byte];
        // String/char prefixes: the literal starts immediately after the
        // prefix word (`r"..."`, `br#"..."#`, `b'x'`, `c"..."`).
        let raw_capable = matches!(word, "r" | "br" | "cr");
        let str_capable = matches!(word, "b" | "c");
        match self.peek(j) {
            Some('"') if raw_capable => {
                self.i += j;
                self.raw_string_body(0);
                self.emit(TokenKind::RawStr, from);
                return;
            }
            Some('#') if raw_capable => {
                let mut hashes = 0;
                while self.peek(j + hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(j + hashes) == Some('"') {
                    self.i += j + hashes;
                    self.raw_string_body(hashes);
                    self.emit(TokenKind::RawStr, from);
                    return;
                }
                // `r#ident`: a raw identifier, not a raw string.
                if word == "r" && hashes == 1 && self.peek(j + 1).is_some_and(is_ident_start) {
                    let mut k = j + 2;
                    while self.peek(k).is_some_and(is_ident_continue) {
                        k += 1;
                    }
                    self.i += k;
                    self.emit(TokenKind::Ident, from);
                    return;
                }
            }
            Some('"') if str_capable => {
                self.i += j + 1;
                self.string_body();
                self.emit(TokenKind::Str, from);
                return;
            }
            Some('\'') if word == "b" => {
                self.i += j;
                self.char_or_lifetime(self.i);
                // Re-tag the just-emitted char token to cover the `b`.
                let start = self.byte_at(from);
                let tok = self.tokens.last_mut().expect("char token emitted");
                tok.start = start;
                return;
            }
            _ => {}
        }
        self.i += j;
        self.emit(TokenKind::Ident, from);
    }

    fn number(&mut self, from: usize) {
        // Digits, underscores, and alphanumeric suffix/radix chars
        // (0x1F, 1_000u32); one fraction part; exponent with sign.
        while self.peek(0).is_some_and(is_ident_continue) {
            let at_exp_sign = matches!(self.peek(0), Some('e') | Some('E'))
                && matches!(self.peek(1), Some('+') | Some('-'))
                && self.peek(2).is_some_and(|c| c.is_ascii_digit());
            self.i += 1;
            if at_exp_sign {
                self.i += 1; // the sign
            }
        }
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
            while self.peek(0).is_some_and(is_ident_continue) {
                let at_exp_sign = matches!(self.peek(0), Some('e') | Some('E'))
                    && matches!(self.peek(1), Some('+') | Some('-'))
                    && self.peek(2).is_some_and(|c| c.is_ascii_digit());
                self.i += 1;
                if at_exp_sign {
                    self.i += 1;
                }
            }
        }
        self.emit(TokenKind::Number, from);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn round_trips_basic_source() {
        let src = "fn main() { let x = 1.0e-5; /* hi */ call(x) } // done\n";
        let toks = lex(src);
        let joined: String = toks.iter().map(|t| t.text(src)).collect();
        assert_eq!(joined, src);
    }

    #[test]
    fn strings_hide_keywords() {
        let src = r#"let s = "unsafe unwrap() \" still in string"; unsafe {}"#;
        assert_eq!(idents(src), ["let", "s", "unsafe"]);
    }

    #[test]
    fn raw_strings_with_hashes_hide_keywords() {
        let src = r###"let s = r#"unsafe " quote inside"#; unwrap()"###;
        assert_eq!(idents(src), ["let", "s", "unwrap"]);
    }

    #[test]
    fn nested_block_comments_hide_keywords() {
        let src = "/* outer /* unsafe inner */ still comment unwrap */ fn f() {}";
        assert_eq!(idents(src), ["fn", "f"]);
        assert_eq!(lex(src)[0].kind, TokenKind::BlockComment { doc: false });
    }

    #[test]
    fn char_literals_and_lifetimes_are_distinguished() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let toks = kinds(src);
        assert!(toks.contains(&(TokenKind::Lifetime, "'a".into())));
        assert!(toks.contains(&(TokenKind::Char, "'x'".into())));
    }

    #[test]
    fn escaped_quote_char_does_not_unbalance() {
        let src = r"let q = '\''; unsafe {}";
        assert_eq!(idents(src), ["let", "q", "unsafe"]);
    }

    #[test]
    fn byte_and_c_string_prefixes_lex_as_strings() {
        for src in [r#"b"unsafe""#, r#"c"unsafe""#, r##"br#"unsafe"#"##] {
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src:?} lexed as {toks:?}");
            assert!(
                matches!(toks[0].kind, TokenKind::Str | TokenKind::RawStr),
                "{src:?} lexed as {:?}",
                toks[0].kind
            );
        }
    }

    #[test]
    fn raw_identifiers_are_idents() {
        assert_eq!(idents("let r#type = 3;"), ["let", "r#type"]);
    }

    #[test]
    fn doc_comment_flavors() {
        assert_eq!(lex("/// doc")[0].kind, TokenKind::LineComment { doc: true });
        assert_eq!(lex("//! doc")[0].kind, TokenKind::LineComment { doc: true });
        assert_eq!(lex("// no")[0].kind, TokenKind::LineComment { doc: false });
        assert_eq!(
            lex("//// not doc")[0].kind,
            TokenKind::LineComment { doc: false }
        );
    }

    #[test]
    fn line_numbers_are_tracked() {
        let src = "a\nb\n  c /* x\n y */ d";
        let lines: Vec<(String, usize)> = lex(src)
            .iter()
            .filter(|t| !t.kind.is_trivia())
            .map(|t| (t.text(src).to_string(), t.line))
            .collect();
        assert_eq!(
            lines,
            [
                ("a".into(), 1),
                ("b".into(), 2),
                ("c".into(), 3),
                ("d".into(), 4)
            ]
        );
    }

    #[test]
    fn numbers_with_exponents_and_ranges() {
        // `0..k` must not swallow the range dots; `1.0e-5` must stay one
        // token.
        assert_eq!(
            kinds("0..k")
                .iter()
                .map(|(k, t)| (*k, t.as_str().to_string()))
                .collect::<Vec<_>>()
                .len(),
            4
        );
        let toks = kinds("1.0e-5f32");
        assert_eq!(toks, [(TokenKind::Number, "1.0e-5f32".to_string())]);
    }

    #[test]
    fn unterminated_forms_consume_to_eof_without_panicking() {
        for src in ["\"open", "/* open /* nested", "r#\"open", "'"] {
            let toks = lex(src);
            let joined: String = toks.iter().map(|t| t.text(src)).collect();
            assert_eq!(joined, src, "lossless even on malformed input");
        }
    }
}

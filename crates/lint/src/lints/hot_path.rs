//! `hot-path-alloc`: functions annotated `// mn-lint: hot-path` are the
//! zero-alloc steady-state paths established in PR 2/3/5 (workspace-fed
//! eval forwards, the GEMM micro-kernels, the fused SGD update). Their
//! no-allocation property is a measured performance contract — but
//! nothing in the compiler keeps a future edit from dropping a
//! `.clone()` into one. Inside an annotated function this rule forbids
//! the common allocating forms:
//!
//! `Vec::new` · `vec![...]` · `.to_vec()` · `Box::new` · `.clone()`
//!
//! Deliberate allocations (e.g. a per-request output buffer that is the
//! function's *product*, not steady-state churn) carry a reasoned
//! `mn-lint: allow(hot-path-alloc, ...)` marker.

use super::Lint;
use crate::lexer::TokenKind;
use crate::report::Violation;
use crate::source::SourceFile;

pub struct HotPathAlloc;

impl Lint for HotPathAlloc {
    fn name(&self) -> &'static str {
        "hot-path-alloc"
    }

    fn description(&self) -> &'static str {
        "functions marked `mn-lint: hot-path` must not allocate"
    }

    fn check_file(&mut self, file: &SourceFile, out: &mut Vec<Violation>) {
        for &marker_line in &file.hot_path_markers {
            let Some((fn_name, body)) = annotated_fn(file, marker_line) else {
                out.push(Violation {
                    rule: self.name(),
                    file: file.rel_path.clone(),
                    line: marker_line,
                    message: "`mn-lint: hot-path` marker is not followed by a function".to_string(),
                });
                continue;
            };
            for k in body.clone() {
                if let Some(what) = allocating_form(file, k) {
                    out.push(Violation {
                        rule: self.name(),
                        file: file.rel_path.clone(),
                        line: file.sig_line(k),
                        message: format!(
                            "`{what}` allocates inside hot-path fn `{fn_name}` — route \
                             scratch through the Workspace arena, or allow-mark a \
                             deliberate allocation with a reason"
                        ),
                    });
                }
            }
        }
    }
}

/// Resolves the function a `hot-path` marker on `marker_line`
/// annotates: returns its name and the `sig` index range of its body.
fn annotated_fn(file: &SourceFile, marker_line: usize) -> Option<(String, std::ops::Range<usize>)> {
    // First significant token after the marker line, skipping attribute
    // groups; it must begin a fn item (possibly `pub`/`unsafe`/...).
    let mut k = (0..file.sig.len()).find(|&k| file.sig_line(k) > marker_line)?;
    let mut fn_k = None;
    let limit = file.sig.len();
    while k < limit {
        match file.sig_text(k) {
            "#" => {
                let open = if file.sig.get(k + 1).map(|_| file.sig_text(k + 1)) == Some("[") {
                    k + 1
                } else {
                    return None;
                };
                k = file.matching_close(open)? + 1;
            }
            "pub" | "unsafe" | "async" | "const" | "extern" | "crate" | "(" | ")" => k += 1,
            "fn" => {
                fn_k = Some(k);
                break;
            }
            t if file.sig_kind(k) == TokenKind::Str && t.starts_with('"') => k += 1, // extern "C"
            _ => return None,
        }
    }
    let fn_k = fn_k?;
    let name = file.sig_text(fn_k + 1).to_string();
    // Body: the first `{` after the parameter list, at paren depth 0.
    let mut j = fn_k + 2;
    let mut depth = 0usize;
    while j < file.sig.len() {
        match file.sig_text(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            "{" if depth == 0 => {
                let close = file.matching_close(j)?;
                return Some((name, j + 1..close));
            }
            ";" if depth == 0 => return None, // a fn declaration without a body
            _ => {}
        }
        j += 1;
    }
    None
}

/// If `sig[k]` starts a forbidden allocating form, names it.
/// (The lexer emits `::` as two single-char puncts.)
fn allocating_form(file: &SourceFile, k: usize) -> Option<&'static str> {
    let t = |i: usize| file.sig.get(i).map(|_| file.sig_text(i));
    let path_sep = t(k + 1) == Some(":") && t(k + 2) == Some(":");
    let prev = (k > 0).then(|| file.sig_text(k - 1));
    match file.sig_text(k) {
        "Vec" if path_sep => match t(k + 3) {
            Some("new") => Some("Vec::new"),
            Some("with_capacity") => Some("Vec::with_capacity"),
            _ => None,
        },
        "Box" if path_sep && t(k + 3) == Some("new") => Some("Box::new"),
        "vec" if t(k + 1) == Some("!") => Some("vec![...]"),
        "to_vec" if prev == Some(".") && t(k + 1) == Some("(") => Some(".to_vec()"),
        "clone" if prev == Some(".") && t(k + 1) == Some("(") => Some(".clone()"),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Violation> {
        let file = SourceFile::parse("crates/tensor/src/ops.rs".into(), src.into());
        let mut out = Vec::new();
        HotPathAlloc.check_file(&file, &mut out);
        out
    }

    #[test]
    fn clean_hot_path_passes() {
        let src = "\
// mn-lint: hot-path
pub fn kernel(acc: &mut [f32]) {
    for a in acc.iter_mut() {
        *a += 1.0;
    }
}
";
        assert_eq!(check(src), Vec::new());
    }

    #[test]
    fn each_allocating_form_is_flagged() {
        let src = "\
// mn-lint: hot-path
fn hot(xs: &[f32]) {
    let a = Vec::new();
    let b = vec![0.0; 4];
    let c = xs.to_vec();
    let d = Box::new(3);
    let e = ys.clone();
}
";
        let out = check(src);
        assert_eq!(out.len(), 5, "{out:?}");
    }

    #[test]
    fn unannotated_fns_may_allocate() {
        assert_eq!(check("fn cold() { let v = vec![1, 2, 3]; }"), Vec::new());
    }

    #[test]
    fn allocations_after_the_body_are_out_of_scope() {
        let src = "\
// mn-lint: hot-path
fn hot() {}
fn cold() { let v = Vec::new(); }
";
        assert_eq!(check(src), Vec::new());
    }

    #[test]
    fn marker_followed_by_attributed_fn() {
        let src = "\
// mn-lint: hot-path
#[inline]
pub fn hot() { x.clone(); }
";
        assert_eq!(check(src).len(), 1);
    }

    #[test]
    fn dangling_marker_is_flagged() {
        let out = check("// mn-lint: hot-path\nstruct NotAFn;\n");
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("not followed by a function"));
    }

    #[test]
    fn clone_in_string_or_comment_is_invisible() {
        let src = "\
// mn-lint: hot-path
fn hot() {
    // a .clone() would be bad here
    let s = \".clone()\";
}
";
        assert_eq!(check(src), Vec::new());
    }
}

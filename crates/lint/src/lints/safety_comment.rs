//! `safety-comment`: every `unsafe` block/fn/impl must carry an
//! adjacent `// SAFETY:` comment stating why its preconditions hold.
//!
//! A rustdoc `# Safety` section documents what *callers* must uphold;
//! the `// SAFETY:` comment documents why *this site* is sound — both
//! are required reading, only the latter is enforceable per-site, and
//! only the latter counts here (matching rustc's own tidy rule).

use super::Lint;
use crate::report::Violation;
use crate::source::SourceFile;
use crate::unsafe_sites;

pub struct SafetyComment;

impl Lint for SafetyComment {
    fn name(&self) -> &'static str {
        "safety-comment"
    }

    fn description(&self) -> &'static str {
        "every `unsafe` site needs an adjacent `// SAFETY:` comment"
    }

    fn check_file(&mut self, file: &SourceFile, out: &mut Vec<Violation>) {
        for site in unsafe_sites::collect(file) {
            if site.safety.is_none() {
                let ctx = site
                    .context
                    .as_deref()
                    .map(|f| format!(" (in `{f}`)"))
                    .unwrap_or_default();
                out.push(Violation {
                    rule: self.name(),
                    file: file.rel_path.clone(),
                    line: site.line,
                    message: format!(
                        "{}{} has no adjacent `// SAFETY:` comment stating its \
                         preconditions (pointer validity, bounds, CPU-feature gating, ...)",
                        site.kind.label(),
                        ctx
                    ),
                });
            }
        }
    }
}

//! `ci-test-drift`: CI runs ~18 regression tests *by name* (`cargo test
//! -p mn-ensemble supervisor_respawns_... `). Cargo treats an unmatched
//! filter as "0 tests ran, exit 0", so renaming a test silently deletes
//! its CI coverage — the chaos/deadline/brownout regressions are only
//! worth anything if CI still runs them. This rule parses every
//! workflow file for `cargo test` invocations and verifies:
//!
//! * each `--test <suite>` names an existing `tests/<suite>.rs` file in
//!   the targeted package (any package when `-p` is absent);
//! * each positional filter substring-matches at least one `#[test]`
//!   function in the targeted package's sources.

use super::Lint;
use crate::lexer::TokenKind;
use crate::report::Violation;
use crate::source::SourceFile;
use crate::walk::Tree;

pub struct CiTestDrift;

impl Lint for CiTestDrift {
    fn name(&self) -> &'static str {
        "ci-test-drift"
    }

    fn description(&self) -> &'static str {
        "every test CI invokes by name must still exist in the tree"
    }

    fn finish(&mut self, tree: &Tree, out: &mut Vec<Violation>) {
        // (fn name, repo-relative file) of every `#[test]` function.
        let test_fns: Vec<(String, String)> = tree
            .rust_files
            .iter()
            .flat_map(|f| {
                test_fn_names(f)
                    .into_iter()
                    .map(move |n| (n, f.rel_path.clone()))
            })
            .collect();

        for wf in &tree.workflow_files {
            for (line_no, line) in wf.text.lines().enumerate() {
                let Some(at) = line.find("cargo test") else {
                    continue;
                };
                let inv = parse_invocation(&line[at + "cargo test".len()..]);
                let line_no = line_no + 1;
                let pkg_dirs: Vec<&str> = match &inv.package {
                    Some(p) => tree
                        .packages
                        .iter()
                        .filter(|pk| &pk.name == p)
                        .map(|pk| pk.dir.as_str())
                        .collect(),
                    None => tree.packages.iter().map(|pk| pk.dir.as_str()).collect(),
                };
                if let Some(p) = &inv.package {
                    if pkg_dirs.is_empty() {
                        out.push(Violation {
                            rule: self.name(),
                            file: wf.rel_path.clone(),
                            line: line_no,
                            message: format!(
                                "`cargo test -p {p}`: no workspace package named `{p}`"
                            ),
                        });
                        continue;
                    }
                }
                if let Some(suite) = &inv.suite {
                    let found = pkg_dirs.iter().any(|d| {
                        let want = if d.is_empty() {
                            format!("tests/{suite}.rs")
                        } else {
                            format!("{d}/tests/{suite}.rs")
                        };
                        tree.rust_files.iter().any(|f| f.rel_path == want)
                    });
                    if !found {
                        out.push(Violation {
                            rule: self.name(),
                            file: wf.rel_path.clone(),
                            line: line_no,
                            message: format!(
                                "CI runs `--test {suite}` but no matching \
                                 tests/{suite}.rs exists{} — the suite has drifted \
                                 and CI is silently green",
                                inv.package
                                    .as_deref()
                                    .map(|p| format!(" in package `{p}`"))
                                    .unwrap_or_default()
                            ),
                        });
                    }
                }
                for filter in &inv.filters {
                    let matched = test_fns.iter().any(|(name, file)| {
                        name.contains(filter.as_str()) && in_scope(file, &pkg_dirs, &inv.suite)
                    });
                    if !matched {
                        out.push(Violation {
                            rule: self.name(),
                            file: wf.rel_path.clone(),
                            line: line_no,
                            message: format!(
                                "CI filters on {filter:?} but no #[test] function \
                                 matches it{} — cargo exits 0 on an empty filter, so \
                                 this regression is no longer being run",
                                inv.package
                                    .as_deref()
                                    .map(|p| format!(" in package `{p}`"))
                                    .unwrap_or_default()
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// True when `file` (repo-relative) belongs to one of `pkg_dirs`, and,
/// when a `--test` suite was named, is that suite's file.
fn in_scope(file: &str, pkg_dirs: &[&str], suite: &Option<String>) -> bool {
    // The workspace-root package's dir is "": its files are `src/...`
    // and `tests/...`, and it must not swallow `crates/*`.
    let pkg_ok = pkg_dirs.iter().any(|d| {
        if d.is_empty() {
            file.starts_with("src/") || file.starts_with("tests/")
        } else {
            file.starts_with(&format!("{d}/"))
        }
    });
    if !pkg_ok {
        return false;
    }
    match suite {
        Some(s) => file.ends_with(&format!("tests/{s}.rs")),
        None => true,
    }
}

/// One parsed `cargo test ...` invocation from a workflow line.
#[derive(Default, Debug)]
struct Invocation {
    package: Option<String>,
    suite: Option<String>,
    filters: Vec<String>,
}

/// Flags whose value is the next argument (and is not a test name).
const VALUE_FLAGS: [&str; 6] = ["-p", "--package", "--features", "-j", "--jobs", "--profile"];

fn parse_invocation(rest: &str) -> Invocation {
    let mut inv = Invocation::default();
    let mut args = rest.split_whitespace().peekable();
    while let Some(arg) = args.next() {
        match arg {
            "--" => break, // harness args, not filters
            "--test" => inv.suite = args.next().map(str::to_string),
            a if VALUE_FLAGS.contains(&a) => {
                let v = args.next().map(str::to_string);
                if a == "-p" || a == "--package" {
                    inv.package = v;
                }
            }
            a if a.starts_with('-') => {}
            // Shell syntax around the cargo invocation (pipes, `&&`,
            // backslash continuations) ends the argument list.
            a if !a.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') => break,
            a => inv.filters.push(a.to_string()),
        }
    }
    inv
}

/// Collects the names of `#[test]` functions in `file` (including
/// inside macro invocations like `proptest! {}`, whose bodies still
/// spell `#[test] fn name`).
fn test_fn_names(file: &SourceFile) -> Vec<String> {
    let mut out = Vec::new();
    let mut k = 0;
    let mut pending_test = false;
    while k < file.sig.len() {
        let t = file.sig_text(k);
        if t == "#" {
            // Outer `#[...]` or inner `#![...]` attribute.
            let open = if file.sig.get(k + 1).map(|_| file.sig_text(k + 1)) == Some("[") {
                Some(k + 1)
            } else if file.sig.get(k + 2).is_some()
                && file.sig_text(k + 1) == "!"
                && file.sig_text(k + 2) == "["
            {
                Some(k + 2)
            } else {
                None
            };
            if let Some(open) = open {
                if let Some(close) = file.matching_close(open) {
                    let inner: Vec<&str> = (open + 1..close).map(|j| file.sig_text(j)).collect();
                    if inner == ["test"] {
                        pending_test = true;
                    }
                    k = close + 1;
                    continue;
                }
            }
        }
        if pending_test {
            match t {
                // Tokens that may sit between `#[test]` and `fn`.
                "pub" | "async" | "unsafe" | "extern" | "(" | ")" | "crate" => {}
                "fn" => {
                    if let Some(name_k) = (k + 1 < file.sig.len()).then_some(k + 1) {
                        if file.sig_kind(name_k) == TokenKind::Ident {
                            out.push(file.sig_text(name_k).to_string());
                        }
                    }
                    pending_test = false;
                }
                _ if file.sig_kind(k) == TokenKind::Str => {} // extern "C"
                _ => pending_test = false,
            }
        }
        k += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::{Package, RawFile};

    fn tree(yml: &str, files: Vec<(&str, &str)>) -> Tree {
        Tree {
            root: std::path::PathBuf::new(),
            rust_files: files
                .into_iter()
                .map(|(p, s)| SourceFile::parse(p.into(), s.into()))
                .collect(),
            workflow_files: vec![RawFile {
                rel_path: ".github/workflows/ci.yml".into(),
                text: yml.into(),
            }],
            packages: vec![
                Package {
                    name: "mothernets-repro".into(),
                    dir: String::new(),
                },
                Package {
                    name: "mn-ensemble".into(),
                    dir: "crates/ensemble".into(),
                },
            ],
        }
    }

    fn run(t: &Tree) -> Vec<Violation> {
        let mut out = Vec::new();
        CiTestDrift.finish(t, &mut out);
        out
    }

    const SERVE_TESTS: &str = "\
#[cfg(test)]
mod tests {
    #[test]
    fn supervisor_respawns_dead_worker_and_keeps_serving() {}
}
";

    #[test]
    fn existing_name_and_suite_pass() {
        let yml = "\
      - run: cargo test --release -p mn-ensemble supervisor_respawns_dead_worker_and_keeps_serving -- --nocapture
      - run: cargo test --release --test chaos_serving -- --nocapture
";
        let t = tree(
            yml,
            vec![
                ("crates/ensemble/src/serve.rs", SERVE_TESTS),
                ("tests/chaos_serving.rs", "#[test]\nfn chaos() {}"),
            ],
        );
        assert_eq!(run(&t), Vec::new());
    }

    #[test]
    fn renamed_test_fn_is_flagged() {
        let yml = "      - run: cargo test -p mn-ensemble supervisor_restarts_worker\n";
        let t = tree(yml, vec![("crates/ensemble/src/serve.rs", SERVE_TESTS)]);
        let out = run(&t);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("supervisor_restarts_worker"));
    }

    #[test]
    fn missing_suite_file_is_flagged() {
        let yml = "      - run: cargo test --test chaos_serving\n";
        let t = tree(yml, vec![("crates/ensemble/src/serve.rs", SERVE_TESTS)]);
        let out = run(&t);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("chaos_serving"));
    }

    #[test]
    fn package_scoping_is_respected() {
        // The fn exists, but in a different package than CI targets.
        let yml = "      - run: cargo test -p mothernets-repro supervisor_respawns_dead_worker_and_keeps_serving\n";
        let t = tree(yml, vec![("crates/ensemble/src/serve.rs", SERVE_TESTS)]);
        assert_eq!(run(&t).len(), 1);
    }

    #[test]
    fn env_prefixes_and_harness_args_are_handled() {
        let yml = "            MN_SIMD=$mode cargo test --release -p mn-ensemble --test missing_suite -- --nocapture\n";
        let t = tree(yml, vec![("crates/ensemble/src/serve.rs", SERVE_TESTS)]);
        assert_eq!(run(&t).len(), 1);
    }

    #[test]
    fn unfiltered_cargo_test_is_ignored() {
        let yml = "      - run: cargo test -q\n";
        let t = tree(yml, vec![("crates/ensemble/src/serve.rs", SERVE_TESTS)]);
        assert_eq!(run(&t), Vec::new());
    }

    #[test]
    fn proptest_macro_bodies_still_expose_test_fns() {
        let src = "proptest! {\n    #![proptest_config(ProptestConfig::with_cases(16))]\n    #[test]\n    fn round_trips(v in 0u32..10) {}\n}\n";
        let f = SourceFile::parse("tests/props.rs".into(), src.into());
        assert_eq!(test_fn_names(&f), ["round_trips"]);
    }
}

//! `no-panic-in-serve`: the serve path answers with typed errors, it
//! does not die.
//!
//! PR 5–8 built supervision, typed `ServeError`s, and poison-recovering
//! locks precisely so a worker can fail without taking the process (or
//! an answer) with it. A stray `unwrap()` in these files silently
//! reintroduces the failure mode all of that machinery exists to
//! prevent — and nothing in `rustc`/`clippy` will say so.
//!
//! Scope: non-`#[cfg(test)]` code of the serve-path files listed in
//! [`SERVE_PATH_FILES`]. Doc-comment examples are invisible to the
//! lexer's significant-token view, so they never trip the rule. The
//! sole built-in exception is poison recovery on a mutex:
//! `lock()/wait() .unwrap_or_else(|e| e.into_inner())` — the sanctioned
//! panic-containment idiom from PR 6. Any other `unwrap_or_else`
//! closure is flagged, so the exception cannot widen silently.

use super::Lint;
use crate::lexer::TokenKind;
use crate::report::Violation;
use crate::source::SourceFile;

/// The serve-path files this rule polices (repo-relative paths).
pub const SERVE_PATH_FILES: [&str; 4] = [
    "crates/ensemble/src/serve.rs",
    "crates/ensemble/src/engine.rs",
    "crates/ensemble/src/artifact.rs",
    "crates/nn/src/io.rs",
];

/// Macro names that abort the current thread.
const PANIC_MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];

pub struct NoPanicInServe;

impl Lint for NoPanicInServe {
    fn name(&self) -> &'static str {
        "no-panic-in-serve"
    }

    fn description(&self) -> &'static str {
        "serve-path files must use typed errors, not unwrap/expect/panic"
    }

    fn check_file(&mut self, file: &SourceFile, out: &mut Vec<Violation>) {
        if !SERVE_PATH_FILES.contains(&file.rel_path.as_str()) {
            return;
        }
        for k in 0..file.sig.len() {
            if file.sig_kind(k) != TokenKind::Ident {
                continue;
            }
            let line = file.sig_line(k);
            if file.in_test_code(line) {
                continue;
            }
            let word = file.sig_text(k);
            let next = file.sig.get(k + 1).map(|_| file.sig_text(k + 1));
            let flagged = match word {
                w if PANIC_MACROS.contains(&w) && next == Some("!") => {
                    Some(format!("`{w}!` aborts the serving thread"))
                }
                "unwrap" | "expect" if next == Some("(") => Some(format!(
                    "`{word}()` panics on the error path — return a typed error instead"
                )),
                "unwrap_or_else" if next == Some("(") && !is_poison_recovery(file, k + 1) => Some(
                    "`unwrap_or_else` with a closure other than the sanctioned \
                         poison recovery `|e| e.into_inner()`"
                        .to_string(),
                ),
                _ => None,
            };
            if let Some(detail) = flagged {
                out.push(Violation {
                    rule: self.name(),
                    file: file.rel_path.clone(),
                    line,
                    message: format!(
                        "{detail} (serve-path code must degrade via typed \
                         ServeError/ArtifactError/WeightsError values)"
                    ),
                });
            }
        }
    }
}

/// Matches the exact token shape `( | <x> | <x> . into_inner ( ) )`
/// starting at the opening paren `sig[open_k]`.
fn is_poison_recovery(file: &SourceFile, open_k: usize) -> bool {
    let expected_tail = [".", "into_inner", "(", ")", ")"];
    let t = |k: usize| file.sig.get(k).map(|_| file.sig_text(k));
    if t(open_k) != Some("(") || t(open_k + 1) != Some("|") {
        return false;
    }
    let Some(var) = t(open_k + 2) else {
        return false;
    };
    if file.sig_kind(open_k + 2) != TokenKind::Ident {
        return false;
    }
    if t(open_k + 3) != Some("|") || t(open_k + 4) != Some(var) {
        return false;
    }
    expected_tail
        .iter()
        .enumerate()
        .all(|(i, &want)| t(open_k + 5 + i) == Some(want))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Violation> {
        let file = SourceFile::parse(SERVE_PATH_FILES[0].to_string(), src.to_string());
        let mut out = Vec::new();
        NoPanicInServe.check_file(&file, &mut out);
        out
    }

    #[test]
    fn flags_the_forbidden_forms() {
        let src = "\
fn f() {
    x.unwrap();
    y.expect(\"msg\");
    panic!(\"no\");
    todo!();
    unimplemented!();
}
";
        assert_eq!(check(src).len(), 5);
    }

    #[test]
    fn poison_recovery_is_the_sole_unwrap_or_else_exception() {
        let ok = "fn f() { state.lock().unwrap_or_else(|e| e.into_inner()); }";
        assert!(check(ok).is_empty());
        let bad = "fn f() { state.lock().unwrap_or_else(|_| Default::default()); }";
        assert_eq!(check(bad).len(), 1);
        let sneaky = "fn f() { state.lock().unwrap_or_else(|e| other.into_inner()); }";
        assert_eq!(check(sneaky).len(), 1);
    }

    #[test]
    fn unwrap_or_and_unwrap_or_default_are_not_unwrap() {
        assert!(check("fn f() { x.unwrap_or(0) + y.unwrap_or_default(); }").is_empty());
    }

    #[test]
    fn test_modules_docs_and_strings_are_exempt() {
        let src = "\
//! let x = plan.unwrap();
/// y.expect(\"in docs\");
fn f() { let s = \"unwrap()\"; }
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); panic!(\"fine in tests\"); }
}
";
        assert!(check(src).is_empty());
    }

    #[test]
    fn only_serve_path_files_are_policed() {
        let file = SourceFile::parse(
            "crates/nn/src/train.rs".into(),
            "fn f(){x.unwrap();}".into(),
        );
        let mut out = Vec::new();
        NoPanicInServe.check_file(&file, &mut out);
        assert!(out.is_empty());
    }
}

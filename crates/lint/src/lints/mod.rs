//! The pluggable lint passes.
//!
//! A [`Lint`] sees every Rust file once (`check_file`), then gets a
//! whole-tree `finish` call for cross-file conclusions (declared
//! fault sites vs. their uses, CI workflow names vs. the test tree).
//! Violations are emitted eagerly; the driver applies `mn-lint: allow`
//! suppression afterwards, so lints stay oblivious to markers.
//!
//! Adding a lint: implement [`Lint`], give it a unique kebab-case
//! `name()` (that name is what allow markers reference), and add it to
//! [`all`]. Fixture coverage in `tests/rules.rs` should seed one
//! violation and one clean case.

use crate::report::Violation;
use crate::source::SourceFile;
use crate::walk::Tree;

mod ci_drift;
mod fault_sites;
mod hot_path;
mod no_panic;
mod safety_comment;
mod unsafe_inventory;

pub use unsafe_inventory::{generate_inventory, INVENTORY_PATH};

/// One tidy-style rule.
pub trait Lint {
    /// The rule's kebab-case name, referenced by allow markers.
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules` and the README table.
    fn description(&self) -> &'static str;
    /// Per-file pass over every lexed Rust file.
    fn check_file(&mut self, _file: &SourceFile, _out: &mut Vec<Violation>) {}
    /// Whole-tree pass, after every file has been seen.
    fn finish(&mut self, _tree: &Tree, _out: &mut Vec<Violation>) {}
}

/// Every registered lint, in reporting order.
pub fn all() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(safety_comment::SafetyComment),
        Box::new(no_panic::NoPanicInServe),
        Box::new(fault_sites::FaultSiteNames::default()),
        Box::new(ci_drift::CiTestDrift),
        Box::new(hot_path::HotPathAlloc),
        Box::new(unsafe_inventory::UnsafeInventory),
    ]
}

/// The names of every registered rule (for allow-marker validation).
pub fn rule_names() -> Vec<&'static str> {
    all().iter().map(|l| l.name()).collect()
}

//! `fault-site-names`: the fault-injection registry is stringly-typed
//! by design (sites are armed from tests by name), which means a typo'd
//! name is a *silent no-op* — the chaos test thinks it armed a fault
//! and the fault never fires. This rule closes that hole from both
//! ends:
//!
//! * every **string literal** passed to `faults::trigger` / `enable` /
//!   `enable_times` / `disable` / `fired` must equal the value of a
//!   constant declared in `mn_ensemble::faults::sites`;
//! * every **declared site** must be wired into a `trigger` call
//!   somewhere in non-test code — a site nothing triggers is dead
//!   chaos coverage.
//!
//! Arguments that are not literals (the `sites::NAME` constants, or
//! computed expressions like `SITES[i]`) are resolved by constant name
//! where possible and otherwise left to the type system. `#[cfg(test)]`
//! modules are exempt from the literal rule so the registry's own unit
//! tests can exercise arbitrary names.

use super::Lint;
use crate::lexer::TokenKind;
use crate::report::Violation;
use crate::source::SourceFile;
use crate::walk::Tree;

/// Where the site constants are declared.
const SITES_FILE: &str = "crates/ensemble/src/faults.rs";

/// The registry functions whose first argument is a site name.
const SITE_FNS: [&str; 5] = ["trigger", "enable", "enable_times", "disable", "fired"];

#[derive(Default)]
pub struct FaultSiteNames {
    /// Declared constants: (const name, string value, decl line).
    declared: Vec<(String, String, usize)>,
    /// Const names seen as a `trigger` argument in non-test code.
    triggered: Vec<String>,
    /// Literal string values seen as a `trigger` argument in non-test
    /// code — these also wire a site (membership is checked separately).
    triggered_values: Vec<String>,
    /// Deferred literal checks: (file, line, literal value).
    literals: Vec<(String, usize, String)>,
    saw_sites_file: bool,
}

impl Lint for FaultSiteNames {
    fn name(&self) -> &'static str {
        "fault-site-names"
    }

    fn description(&self) -> &'static str {
        "fault-registry names must match declared `faults::sites` constants, and every site must be triggered"
    }

    fn check_file(&mut self, file: &SourceFile, out: &mut Vec<Violation>) {
        let _ = out;
        if file.rel_path == SITES_FILE {
            self.saw_sites_file = true;
            self.declared = declared_sites(file);
        }
        for k in 0..file.sig.len() {
            if file.sig_kind(k) != TokenKind::Ident || !SITE_FNS.contains(&file.sig_text(k)) {
                continue;
            }
            // `fn trigger(name: &str)` is the definition, not a call.
            if k > 0 && file.sig_text(k - 1) == "fn" {
                continue;
            }
            if file.sig.get(k + 1).map(|_| file.sig_text(k + 1)) != Some("(") {
                continue;
            }
            let line = file.sig_line(k);
            if file.in_test_code(line) && file.rel_path == SITES_FILE {
                // The registry's own unit tests arm throwaway names.
                continue;
            }
            let is_trigger = file.sig_text(k) == "trigger";
            // First argument: tokens up to the first depth-0 comma or
            // the closing paren.
            let mut j = k + 2;
            let mut depth = 0usize;
            let mut literal: Option<String> = None;
            let mut const_ref: Option<String> = None;
            while j < file.sig.len() {
                let t = file.sig_text(j);
                match t {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" if depth == 0 => break,
                    ")" | "]" | "}" => depth -= 1,
                    "," if depth == 0 => break,
                    _ => {
                        if file.sig_kind(j) == TokenKind::Str && literal.is_none() {
                            literal = Some(unquote(t));
                        }
                        if file.sig_kind(j) == TokenKind::Ident
                            && t.chars().all(|c| c.is_ascii_uppercase() || c == '_')
                            && const_ref.is_none()
                        {
                            const_ref = Some(t.to_string());
                        }
                    }
                }
                j += 1;
            }
            if let Some(value) = literal {
                if is_trigger && !file.in_test_code(line) {
                    self.triggered_values.push(value.clone());
                }
                self.literals.push((file.rel_path.clone(), line, value));
            } else if let Some(name) = const_ref {
                if is_trigger && !file.in_test_code(line) {
                    self.triggered.push(name);
                }
            }
        }
    }

    fn finish(&mut self, _tree: &Tree, out: &mut Vec<Violation>) {
        if !self.saw_sites_file {
            // Nothing declared (e.g. a fixture tree without the
            // registry): every literal is unverifiable, so say so.
            for (file, line, value) in &self.literals {
                out.push(Violation {
                    rule: self.name(),
                    file: file.clone(),
                    line: *line,
                    message: format!(
                        "fault site {value:?} cannot be checked: {SITES_FILE} \
                         (the `faults::sites` declarations) was not found"
                    ),
                });
            }
            return;
        }
        for (file, line, value) in &self.literals {
            if !self.declared.iter().any(|(_, v, _)| v == value) {
                let known: Vec<&str> = self.declared.iter().map(|(_, v, _)| v.as_str()).collect();
                out.push(Violation {
                    rule: self.name(),
                    file: file.clone(),
                    line: *line,
                    message: format!(
                        "fault site {value:?} matches no constant in \
                         `faults::sites` — a typo here is a silent no-op \
                         (declared: {known:?}); use the `sites::` constants"
                    ),
                });
            }
        }
        for (name, value, line) in &self.declared {
            let wired = self.triggered.iter().any(|t| t == name)
                || self.triggered_values.iter().any(|v| v == value);
            if !wired {
                out.push(Violation {
                    rule: self.name(),
                    file: SITES_FILE.to_string(),
                    line: *line,
                    message: format!(
                        "declared fault site `{name}` ({value:?}) is never wired into a \
                         `faults::trigger` call — dead chaos coverage"
                    ),
                });
            }
        }
    }
}

/// Extracts `(NAME, value, line)` triples from the `pub mod sites`
/// block: `pub const NAME: &str = "value";`.
fn declared_sites(file: &SourceFile) -> Vec<(String, String, usize)> {
    let mut out = Vec::new();
    let Some(mod_k) = (0..file.sig.len().saturating_sub(1))
        .find(|&k| file.sig_text(k) == "mod" && file.sig_text(k + 1) == "sites")
    else {
        return out;
    };
    let Some(open) = (mod_k..file.sig.len()).find(|&k| file.sig_text(k) == "{") else {
        return out;
    };
    let Some(close) = file.matching_close(open) else {
        return out;
    };
    let mut k = open;
    while k + 2 < close {
        if file.sig_text(k) == "const" && file.sig_kind(k + 1) == TokenKind::Ident {
            let name = file.sig_text(k + 1).to_string();
            let line = file.sig_line(k + 1);
            // Scan to the `=` and take the string literal after it.
            let mut j = k + 2;
            while j < close && file.sig_text(j) != ";" {
                if file.sig_kind(j) == TokenKind::Str {
                    out.push((name.clone(), unquote(file.sig_text(j)), line));
                    break;
                }
                j += 1;
            }
        }
        k += 1;
    }
    out
}

/// Strips the quotes (and any `b`/`r#` prefix) off a lexed string
/// literal, returning its raw contents. Escapes are left as written:
/// site names are plain ASCII identifiers with dots.
fn unquote(lit: &str) -> String {
    let inner = lit.trim_start_matches(['b', 'c', 'r']).trim_matches('#');
    inner.trim_matches('"').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    const FAULTS_SRC: &str = "\
pub mod sites {
    pub const QUEUE_POP: &str = \"serve.queue.pop\";
    pub const WORKER_EVAL: &str = \"serve.worker.eval\";
}
pub fn trigger(name: &str) {}
";

    fn run(files: Vec<(&str, &str)>) -> Vec<Violation> {
        let mut lint = FaultSiteNames::default();
        let mut out = Vec::new();
        let parsed: Vec<SourceFile> = files
            .into_iter()
            .map(|(p, s)| SourceFile::parse(p.into(), s.into()))
            .collect();
        for f in &parsed {
            lint.check_file(f, &mut out);
        }
        let tree = Tree {
            root: std::path::PathBuf::new(),
            rust_files: parsed,
            workflow_files: Vec::new(),
            packages: Vec::new(),
        };
        lint.finish(&tree, &mut out);
        out
    }

    #[test]
    fn matching_literal_and_const_paths_are_clean() {
        let serve = "\
fn worker() {
    faults::trigger(faults::sites::QUEUE_POP);
    faults::trigger(\"serve.worker.eval\");
}
";
        let out = run(vec![
            (SITES_FILE, FAULTS_SRC),
            ("crates/ensemble/src/serve.rs", serve),
        ]);
        assert_eq!(out, Vec::new());
    }

    #[test]
    fn typod_literal_is_flagged() {
        let serve = "fn worker() { faults::trigger(faults::sites::QUEUE_POP); scope.enable_times(\"serve.queue.pp\", a, 1); faults::trigger(\"serve.worker.eval\"); }";
        let out = run(vec![
            (SITES_FILE, FAULTS_SRC),
            ("crates/ensemble/src/serve.rs", serve),
        ]);
        assert_eq!(out.len(), 1);
        assert!(
            out[0].message.contains("serve.queue.pp"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn untriggered_declared_site_is_flagged() {
        let serve = "fn worker() { faults::trigger(faults::sites::QUEUE_POP); }";
        let out = run(vec![
            (SITES_FILE, FAULTS_SRC),
            ("crates/ensemble/src/serve.rs", serve),
        ]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("WORKER_EVAL"), "{}", out[0].message);
    }

    #[test]
    fn registry_unit_tests_may_use_throwaway_names() {
        let faults_with_tests = format!(
            "{FAULTS_SRC}#[cfg(test)]\nmod tests {{\n    fn t() {{ trigger(\"nope\"); }}\n}}\n"
        );
        let serve = "fn worker() { faults::trigger(faults::sites::QUEUE_POP); faults::trigger(faults::sites::WORKER_EVAL); }";
        let out = run(vec![
            (SITES_FILE, &faults_with_tests),
            ("crates/ensemble/src/serve.rs", serve),
        ]);
        assert_eq!(out, Vec::new());
    }

    #[test]
    fn literal_trigger_of_a_known_site_counts_as_wired() {
        // A literal equal to a declared value passed the membership
        // check, so the site demonstrably fires — it is wired.
        let serve =
            "fn worker() { faults::trigger(\"serve.queue.pop\"); faults::trigger(faults::sites::WORKER_EVAL); }";
        let out = run(vec![
            (SITES_FILE, FAULTS_SRC),
            ("crates/ensemble/src/serve.rs", serve),
        ]);
        assert_eq!(out, Vec::new());
    }

    #[test]
    fn test_only_trigger_does_not_wire_a_site() {
        // Triggering from #[cfg(test)] code is not production wiring.
        let serve = "\
fn worker() { faults::trigger(faults::sites::QUEUE_POP); }
#[cfg(test)]
mod tests {
    fn t() { faults::trigger(faults::sites::WORKER_EVAL); }
}
";
        let out = run(vec![
            (SITES_FILE, FAULTS_SRC),
            ("crates/ensemble/src/serve.rs", serve),
        ]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("WORKER_EVAL"));
    }
}

//! A lexed source file plus the derived structure lints share: line
//! table, significant-token view, `#[cfg(test)]` item spans, and parsed
//! `mn-lint` marker comments.

use crate::lexer::{lex, Token, TokenKind};

/// A parsed `// mn-lint: allow(<rule>, reason = "...")` marker.
#[derive(Clone, Debug)]
pub struct AllowMarker {
    pub rule: String,
    pub reason: String,
    /// Line the marker comment sits on.
    pub line: usize,
    /// Lines the marker suppresses: its own line and the next line
    /// carrying a significant token.
    pub covers: (usize, usize),
}

/// A marker comment that failed to parse, reported as an
/// `allow-marker` violation by the driver.
#[derive(Clone, Debug)]
pub struct MarkerError {
    pub line: usize,
    pub message: String,
}

/// One lexed `.rs` file.
pub struct SourceFile {
    /// Path relative to the repo root, `/`-separated.
    pub rel_path: String,
    pub text: String,
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-trivia tokens.
    pub sig: Vec<usize>,
    /// Line ranges (inclusive) of items under an exact `#[cfg(test)]`.
    pub test_spans: Vec<(usize, usize)>,
    pub allows: Vec<AllowMarker>,
    /// Lines carrying a `// mn-lint: hot-path` marker.
    pub hot_path_markers: Vec<usize>,
    pub marker_errors: Vec<MarkerError>,
    /// Byte offset of each line start (index 0 = line 1).
    line_starts: Vec<usize>,
}

impl SourceFile {
    pub fn parse(rel_path: String, text: String) -> SourceFile {
        let tokens = lex(&text);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.kind.is_trivia())
            .map(|(i, _)| i)
            .collect();
        let mut line_starts = vec![0usize];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let mut file = SourceFile {
            rel_path,
            text,
            tokens,
            sig,
            test_spans: Vec::new(),
            allows: Vec::new(),
            hot_path_markers: Vec::new(),
            marker_errors: Vec::new(),
            line_starts,
        };
        file.test_spans = file.find_cfg_test_spans();
        file.parse_markers();
        file
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// The text of 1-based line `n`, without its newline.
    pub fn line_text(&self, n: usize) -> &str {
        let start = self.line_starts[n - 1];
        let end = self
            .line_starts
            .get(n)
            .map(|&e| e.saturating_sub(1))
            .unwrap_or(self.text.len());
        &self.text[start..end.max(start)]
    }

    /// The text of significant token `sig[k]`.
    pub fn sig_text(&self, k: usize) -> &str {
        self.tokens[self.sig[k]].text(&self.text)
    }

    /// The kind of significant token `sig[k]`.
    pub fn sig_kind(&self, k: usize) -> TokenKind {
        self.tokens[self.sig[k]].kind
    }

    /// The line of significant token `sig[k]`.
    pub fn sig_line(&self, k: usize) -> usize {
        self.tokens[self.sig[k]].line
    }

    /// True when 1-based `line` falls inside a `#[cfg(test)]` item.
    pub fn in_test_code(&self, line: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// True when any allow marker for `rule` covers `line`.
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|m| m.rule == rule && m.covers.0 <= line && line <= m.covers.1)
    }

    /// Index into `sig` of the first significant token on a line after
    /// `line`, if any.
    fn first_sig_after_line(&self, line: usize) -> Option<usize> {
        (0..self.sig.len()).find(|&k| self.sig_line(k) > line)
    }

    /// Finds, for a significant token at `sig[k]` that opens a group
    /// (`(`/`[`/`{`), the index of its matching closer. Counts all three
    /// bracket kinds together, which is exact for well-formed code.
    pub fn matching_close(&self, open_k: usize) -> Option<usize> {
        let mut depth = 0i64;
        for k in open_k..self.sig.len() {
            match self.sig_text(k) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(k);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Collects `#[cfg(test)]`-guarded item spans. Only the exact form
    /// `#[cfg(test)]` counts: `#[cfg(any(test, ...))]` guards code that
    /// also ships in non-test builds and stays linted.
    fn find_cfg_test_spans(&self) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        let mut k = 0;
        while k + 1 < self.sig.len() {
            if self.sig_text(k) == "#" && self.sig_text(k + 1) == "[" {
                if let Some(close) = self.matching_close(k + 1) {
                    let inner: Vec<&str> = (k + 2..close).map(|j| self.sig_text(j)).collect();
                    if inner == ["cfg", "(", "test", ")"] {
                        if let Some(end_line) = self.item_end_line(close + 1) {
                            spans.push((self.sig_line(k), end_line));
                        }
                    }
                    k = close + 1;
                    continue;
                }
            }
            k += 1;
        }
        spans
    }

    /// From `sig[k]` at the start of an item (after its attributes),
    /// returns the line where the item ends: the matching `}` of its
    /// first brace group, or the first top-level `;`.
    fn item_end_line(&self, mut k: usize) -> Option<usize> {
        // Skip any further attributes before the item keyword.
        while k + 1 < self.sig.len() && self.sig_text(k) == "#" && self.sig_text(k + 1) == "[" {
            k = self.matching_close(k + 1)? + 1;
        }
        let mut j = k;
        while j < self.sig.len() {
            match self.sig_text(j) {
                "{" => {
                    let close = self.matching_close(j)?;
                    return Some(self.sig_line(close));
                }
                ";" => return Some(self.sig_line(j)),
                // Skip parameter lists / generic groups wholesale.
                "(" | "[" => j = self.matching_close(j)? + 1,
                _ => j += 1,
            }
        }
        None
    }

    /// Parses `mn-lint:` marker comments out of the token stream.
    fn parse_markers(&mut self) {
        let mut allows = Vec::new();
        let mut hot = Vec::new();
        let mut errors = Vec::new();
        for t in &self.tokens {
            let TokenKind::LineComment { doc: false } = t.kind else {
                continue;
            };
            let body = t.text(&self.text).trim_start_matches('/').trim();
            let Some(directive) = body.strip_prefix("mn-lint:") else {
                continue;
            };
            let directive = directive.trim();
            if directive == "hot-path" {
                hot.push(t.line);
                continue;
            }
            match parse_allow(directive) {
                Ok((rule, reason)) => {
                    let next = self
                        .first_sig_after_line(t.line)
                        .map(|k| self.sig_line(k))
                        .unwrap_or(t.line);
                    allows.push(AllowMarker {
                        rule,
                        reason,
                        line: t.line,
                        covers: (t.line, next),
                    });
                }
                Err(message) => errors.push(MarkerError {
                    line: t.line,
                    message,
                }),
            }
        }
        self.allows = allows;
        self.hot_path_markers = hot;
        self.marker_errors = errors;
    }
}

/// Parses the body of an `allow(...)` directive (after `mn-lint:`),
/// returning `(rule, reason)`. The reason is mandatory and must be
/// non-empty: an unexplained suppression is indistinguishable from a
/// stale one.
fn parse_allow(directive: &str) -> Result<(String, String), String> {
    let inner = directive
        .strip_prefix("allow(")
        .and_then(|rest| rest.strip_suffix(')'))
        .ok_or_else(|| {
            format!(
                "unrecognized mn-lint directive {directive:?} \
                 (expected `hot-path` or `allow(<rule>, reason = \"...\")`)"
            )
        })?;
    let (rule, rest) = inner.split_once(',').ok_or_else(|| {
        "allow marker is missing its reason: write \
         `allow(<rule>, reason = \"...\")`"
            .to_string()
    })?;
    let rule = rule.trim();
    if rule.is_empty() {
        return Err("allow marker names no rule".into());
    }
    let reason = rest
        .trim()
        .strip_prefix("reason")
        .map(|r| r.trim_start())
        .and_then(|r| r.strip_prefix('='))
        .map(|r| r.trim())
        .ok_or_else(|| "allow marker is missing `reason = \"...\"`".to_string())?;
    let reason = reason
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| "allow reason must be a quoted string".to_string())?;
    if reason.trim().is_empty() {
        return Err("allow reason must not be empty".into());
    }
    Ok((rule.to_string(), reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("test.rs".into(), src.into())
    }

    #[test]
    fn cfg_test_spans_cover_the_module() {
        let f = file("fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n");
        assert_eq!(f.test_spans, [(2, 5)]);
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn cfg_any_test_is_not_a_test_span() {
        let f = file("#[cfg(any(test, feature = \"failpoints\"))]\nmod imp {\n    fn x() {}\n}\n");
        assert!(f.test_spans.is_empty());
    }

    #[test]
    fn cfg_test_on_single_fn() {
        let f = file("#[cfg(test)]\nfn helper() {\n    body();\n}\nfn real() {}\n");
        assert_eq!(f.test_spans, [(1, 4)]);
    }

    #[test]
    fn allow_markers_cover_their_own_and_next_line() {
        let f = file("// mn-lint: allow(no-panic-in-serve, reason = \"startup only\")\nx.expect(\"boom\");\n");
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].rule, "no-panic-in-serve");
        assert_eq!(f.allows[0].reason, "startup only");
        assert!(f.is_allowed("no-panic-in-serve", 2));
        assert!(!f.is_allowed("no-panic-in-serve", 3));
        assert!(!f.is_allowed("safety-comment", 2));
    }

    #[test]
    fn allow_without_reason_is_a_marker_error() {
        for bad in [
            "// mn-lint: allow(no-panic-in-serve)",
            "// mn-lint: allow(no-panic-in-serve, reason = \"\")",
            "// mn-lint: allow(no-panic-in-serve, because = \"x\")",
            "// mn-lint: alow(typo)",
        ] {
            let f = file(bad);
            assert_eq!(f.marker_errors.len(), 1, "{bad:?} should fail to parse");
            assert!(f.allows.is_empty());
        }
    }

    #[test]
    fn hot_path_markers_are_collected() {
        let f = file("// mn-lint: hot-path\nfn tight() {}\n");
        assert_eq!(f.hot_path_markers, [1]);
    }

    #[test]
    fn markers_in_strings_and_doc_comments_are_ignored() {
        let f = file("let s = \"// mn-lint: hot-path\";\n/// mn-lint: hot-path\nfn f() {}\n");
        assert!(f.hot_path_markers.is_empty());
    }
}

//! Discovery of `unsafe` sites and their `// SAFETY:` justifications —
//! shared by the `safety-comment` lint and the `docs/UNSAFE.md`
//! inventory generator.

use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// What kind of construct the `unsafe` keyword introduces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnsafeKind {
    Block,
    Fn,
    Impl,
    Trait,
}

impl UnsafeKind {
    pub fn label(self) -> &'static str {
        match self {
            UnsafeKind::Block => "unsafe block",
            UnsafeKind::Fn => "unsafe fn",
            UnsafeKind::Impl => "unsafe impl",
            UnsafeKind::Trait => "unsafe trait",
        }
    }
}

/// One `unsafe` occurrence in code (never strings or comments).
#[derive(Clone, Debug)]
pub struct UnsafeSite {
    pub line: usize,
    pub kind: UnsafeKind,
    /// For `unsafe fn`, the function's own name; for blocks, the
    /// enclosing function, when one precedes the site.
    pub context: Option<String>,
    /// The adjacent `SAFETY:` comment text, joined across its comment
    /// run, or `None` when the site is undocumented.
    pub safety: Option<String>,
}

/// Scans `file` for unsafe sites and pairs each with its `SAFETY:`
/// comment (see [`safety_comment_for_line`] for the adjacency rule).
pub fn collect(file: &SourceFile) -> Vec<UnsafeSite> {
    let mut sites = Vec::new();
    let mut last_fn_name: Option<String> = None;
    for k in 0..file.sig.len() {
        if file.sig_kind(k) == TokenKind::Ident && file.sig_text(k) == "fn" {
            if let Some(name_k) = file.sig.get(k + 1).map(|_| k + 1) {
                if file.sig_kind(name_k) == TokenKind::Ident {
                    last_fn_name = Some(file.sig_text(name_k).to_string());
                }
            }
        }
        if !(file.sig_kind(k) == TokenKind::Ident && file.sig_text(k) == "unsafe") {
            continue;
        }
        let next = file.sig.get(k + 1).map(|_| file.sig_text(k + 1));
        let (kind, context) = match next {
            Some("fn") => {
                let name = file
                    .sig
                    .get(k + 2)
                    .map(|_| file.sig_text(k + 2).to_string());
                (UnsafeKind::Fn, name)
            }
            Some("impl") => (UnsafeKind::Impl, last_fn_name.clone()),
            Some("trait") => (UnsafeKind::Trait, last_fn_name.clone()),
            _ => (UnsafeKind::Block, last_fn_name.clone()),
        };
        let line = file.sig_line(k);
        sites.push(UnsafeSite {
            line,
            kind,
            context,
            safety: safety_comment_for_line(file, line),
        });
    }
    sites
}

/// Finds the `SAFETY:` comment adjacent to an unsafe site at `line`.
///
/// Accepted placements, mirroring rustc's `tidy` convention:
/// * a trailing comment on the same line containing `SAFETY:`;
/// * a comment run directly above, with only attribute lines
///   (`#[...]`) and doc comments allowed between it and the site.
///
/// A blank line or a code line breaks the search: a safety argument
/// that has drifted away from its `unsafe` is treated as missing.
pub fn safety_comment_for_line(file: &SourceFile, line: usize) -> Option<String> {
    if let Some(text) = comment_text_on_line(file, line) {
        if text.contains("SAFETY:") {
            return Some(text);
        }
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        let trimmed = file.line_text(l).trim();
        if trimmed.is_empty() {
            return None;
        }
        if trimmed.starts_with("#[") || trimmed.starts_with("#![") {
            continue;
        }
        if trimmed.starts_with("///") || trimmed.starts_with("//!") {
            continue;
        }
        if trimmed.starts_with("//") {
            if !trimmed.contains("SAFETY:") {
                continue; // earlier line of a multi-line comment run
            }
            // Found the SAFETY line: join the contiguous plain-comment
            // run it starts (downwards, back toward the site).
            let mut parts = Vec::new();
            let mut j = l;
            while j < line {
                let t = file.line_text(j).trim();
                if t.starts_with("//") && !t.starts_with("///") && !t.starts_with("//!") {
                    let body = t.trim_start_matches('/').trim();
                    // `mn-lint:` directives ride in the same comment run
                    // but are not part of the safety argument.
                    if !body.starts_with("mn-lint:") {
                        parts.push(body.to_string());
                    }
                    j += 1;
                } else {
                    break;
                }
            }
            return Some(parts.join(" "));
        }
        return None; // a code line: the site has no adjacent comment
    }
    None
}

/// The concatenated non-doc comment text on `line`, if any.
fn comment_text_on_line(file: &SourceFile, line: usize) -> Option<String> {
    let mut parts = Vec::new();
    for t in &file.tokens {
        if t.line == line && matches!(t.kind, TokenKind::LineComment { doc: false }) {
            parts.push(
                t.text(&file.text)
                    .trim_start_matches('/')
                    .trim()
                    .to_string(),
            );
        }
        if t.line > line {
            break;
        }
    }
    if parts.is_empty() {
        None
    } else {
        Some(parts.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites(src: &str) -> Vec<UnsafeSite> {
        collect(&SourceFile::parse("t.rs".into(), src.into()))
    }

    #[test]
    fn documented_block_and_fn_are_found() {
        let src = "\
fn caller() {
    // SAFETY: length checked above.
    unsafe { go() }
}

/// Docs.
// SAFETY: caller guarantees the CPU feature.
#[target_feature(enable = \"avx2\")]
pub unsafe fn kernel() {}
";
        let s = sites(src);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].kind, UnsafeKind::Block);
        assert_eq!(s[0].context.as_deref(), Some("caller"));
        assert_eq!(
            s[0].safety.as_deref(),
            Some("SAFETY: length checked above.")
        );
        assert_eq!(s[1].kind, UnsafeKind::Fn);
        assert_eq!(s[1].context.as_deref(), Some("kernel"));
        assert!(s[1].safety.as_deref().unwrap().contains("CPU feature"));
    }

    #[test]
    fn multi_line_safety_runs_are_joined() {
        let src = "\
// SAFETY: the pointer is valid for k elements
// and the panel length was asserted by the caller.
unsafe { go() }
";
        let s = sites(src);
        assert_eq!(
            s[0].safety.as_deref(),
            Some(
                "SAFETY: the pointer is valid for k elements \
                 and the panel length was asserted by the caller."
            )
        );
    }

    #[test]
    fn blank_line_breaks_adjacency() {
        let src = "// SAFETY: stale, drifted away.\n\nunsafe { go() }\n";
        assert!(sites(src)[0].safety.is_none());
    }

    #[test]
    fn doc_safety_sections_do_not_count() {
        let src = "/// # Safety\n/// Caller must check the CPU.\npub unsafe fn f() {}\n";
        assert!(sites(src)[0].safety.is_none());
    }

    #[test]
    fn unsafe_in_strings_and_comments_is_invisible() {
        let src = "let s = \"unsafe\"; // an unsafe mention\n/* unsafe */ fn f() {}\n";
        assert!(sites(src).is_empty());
    }

    #[test]
    fn trailing_same_line_comment_counts() {
        let src = "let x = unsafe { go() }; // SAFETY: bounds pinned above.\n";
        assert!(sites(src)[0].safety.is_some());
    }
}

//! Violations and the machine-readable report.

use std::fmt::Write as _;

/// One lint finding, anchored to a file and line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The rule name (`safety-comment`, `no-panic-in-serve`, ...).
    pub rule: &'static str,
    /// Repo-relative `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    pub message: String,
}

/// The outcome of a full lint run.
#[derive(Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    /// Violations silenced by a reasoned `mn-lint: allow` marker.
    pub suppressed: usize,
    pub files_scanned: usize,
}

impl Report {
    /// Exit code for the process: 0 clean, 1 when violations remain.
    pub fn exit_code(&self) -> i32 {
        i32::from(!self.violations.is_empty())
    }

    /// Human-readable rendering, one violation per line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
        }
        let _ = writeln!(
            out,
            "mn-lint: {} violation(s), {} suppressed by allow markers, {} file(s) scanned",
            self.violations.len(),
            self.suppressed,
            self.files_scanned
        );
        out
    }

    /// GitHub Actions annotation rendering (`::error file=...`): one
    /// line per violation, surfaced inline on the PR diff.
    pub fn render_github(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            // Annotation payloads must keep to one line; the properties
            // (before `::`) additionally escape `,` and `:`.
            let msg = v.message.replace('\n', " ");
            let _ = writeln!(
                out,
                "::error file={},line={},title=mn-lint ({})::{}",
                v.file, v.line, v.rule, msg
            );
        }
        out
    }

    /// Machine-readable JSON rendering. Hand-rolled: mn-lint is
    /// dependency-free by design, and the schema is four flat fields.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                if i == 0 { "" } else { "," },
                json_str(v.rule),
                json_str(&v.file),
                v.line,
                json_str(&v.message)
            );
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(
            out,
            "],\n  \"suppressed\": {},\n  \"files_scanned\": {}\n}}\n",
            self.suppressed, self.files_scanned
        );
        out
    }
}

/// Escapes `s` as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one() -> Report {
        Report {
            violations: vec![Violation {
                rule: "no-panic-in-serve",
                file: "crates/ensemble/src/serve.rs".into(),
                line: 42,
                message: "forbidden `unwrap()` with \"quotes\"".into(),
            }],
            suppressed: 3,
            files_scanned: 10,
        }
    }

    #[test]
    fn exit_codes() {
        assert_eq!(Report::default().exit_code(), 0);
        assert_eq!(one().exit_code(), 1);
    }

    #[test]
    fn github_annotations_are_single_lines() {
        let r = one();
        let gh = r.render_github();
        assert!(gh.starts_with("::error file=crates/ensemble/src/serve.rs,line=42,"));
        assert_eq!(gh.lines().count(), 1);
    }

    #[test]
    fn json_escapes_quotes() {
        let j = one().render_json();
        assert!(j.contains(r#"\"quotes\""#), "{j}");
        assert!(j.contains("\"line\": 42"), "{j}");
    }
}

//! `mn-lint`: tidy-style, dependency-free static analysis for this
//! workspace.
//!
//! The codebase rests on invariants `rustc` and `clippy` cannot see:
//! `unsafe` SIMD kernels whose soundness arguments live in comments, a
//! string-named fault-injection registry, a serve path whose only
//! sanctioned panic pattern is poison recovery, CI regression tests
//! invoked *by name*, and measured zero-alloc hot paths. Each of those
//! contracts is one careless edit away from silently dissolving —
//! so, like rustc's `tidy`, this crate parses the source tree itself
//! and fails CI on drift.
//!
//! Run as a test (`cargo test -p mn-lint` includes a repo-clean check)
//! or as a binary (`cargo run -p mn-lint`, the CI lint job). See the
//! README's "Static analysis" section for the rule list and the
//! `mn-lint: allow(<rule>, reason = "...")` escape hatch.

pub mod lexer;
pub mod lints;
pub mod report;
pub mod source;
pub mod unsafe_sites;
pub mod walk;

use report::{Report, Violation};
use std::path::Path;

/// Options for one lint run.
#[derive(Default)]
pub struct Options {
    /// Rewrite `docs/UNSAFE.md` from the tree instead of checking it.
    pub update_docs: bool,
}

/// Runs every registered lint over the tree rooted at `root`.
pub fn run(root: &Path, opts: &Options) -> std::io::Result<Report> {
    let tree = walk::load_tree(root)?;
    if opts.update_docs {
        let path = tree.root.join(lints::INVENTORY_PATH);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(&path, lints::generate_inventory(&tree))?;
    }

    let mut lints = lints::all();
    let rule_names = lints::rule_names();
    let mut violations = Vec::new();
    for file in &tree.rust_files {
        for lint in &mut lints {
            lint.check_file(file, &mut violations);
        }
        // Malformed or unknown markers are violations themselves: a
        // suppression that silently fails to parse would un-suppress
        // (or worse, a typo'd rule name would suppress nothing).
        for err in &file.marker_errors {
            violations.push(Violation {
                rule: "allow-marker",
                file: file.rel_path.clone(),
                line: err.line,
                message: err.message.clone(),
            });
        }
        for allow in &file.allows {
            if !rule_names.contains(&allow.rule.as_str()) {
                violations.push(Violation {
                    rule: "allow-marker",
                    file: file.rel_path.clone(),
                    line: allow.line,
                    message: format!(
                        "allow marker names unknown rule `{}` (known: {})",
                        allow.rule,
                        rule_names.join(", ")
                    ),
                });
            }
        }
    }
    for lint in &mut lints {
        lint.finish(&tree, &mut violations);
    }

    // Apply reasoned `mn-lint: allow` markers.
    let mut suppressed = 0usize;
    violations.retain(|v| {
        let allowed = tree
            .rust_files
            .iter()
            .find(|f| f.rel_path == v.file)
            .is_some_and(|f| f.is_allowed(v.rule, v.line));
        if allowed {
            suppressed += 1;
        }
        !allowed
    });
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    Ok(Report {
        violations,
        suppressed,
        files_scanned: tree.rust_files.len() + tree.workflow_files.len(),
    })
}

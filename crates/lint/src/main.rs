//! The `mn-lint` binary: CI entry point for the workspace lints.
//!
//! ```text
//! cargo run -p mn-lint --release            # human-readable report
//! cargo run -p mn-lint -- --github          # GitHub annotations
//! cargo run -p mn-lint -- --update-docs     # regenerate docs/UNSAFE.md
//! cargo run -p mn-lint -- --json report.json
//! ```
//!
//! Exits 0 when the tree is clean, 1 when any violation stands.

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

/// Writes to stdout ignoring errors: a downstream `| head` closing the
/// pipe must not turn a clean lint run into a panic.
fn emit(text: &str) {
    let _ = std::io::stdout().write_all(text.as_bytes());
}

fn usage() -> ! {
    eprintln!(
        "mn-lint: workspace static analysis\n\
         \n\
         USAGE: mn-lint [OPTIONS]\n\
         \n\
         OPTIONS:\n\
         \x20 --root <dir>     tree to lint (default: this workspace)\n\
         \x20 --github         emit ::error annotations (auto-on under GITHUB_ACTIONS)\n\
         \x20 --json <path|->  also write the machine-readable report\n\
         \x20 --update-docs    regenerate docs/UNSAFE.md before checking\n\
         \x20 --list-rules     print the registered rules and exit\n"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut github = std::env::var_os("GITHUB_ACTIONS").is_some();
    let mut json: Option<String> = None;
    let mut opts = mn_lint::Options::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--github" => github = true,
            "--json" => json = Some(args.next().unwrap_or_else(|| usage())),
            "--update-docs" => opts.update_docs = true,
            "--list-rules" => {
                for lint in mn_lint::lints::all() {
                    emit(&format!("{:<18} {}\n", lint.name(), lint.description()));
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("mn-lint: unknown argument `{other}`");
                usage()
            }
        }
    }

    // Default to the workspace this binary was built from, so a bare
    // `cargo run -p mn-lint` works from any cwd inside the repo.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|e| {
                eprintln!("mn-lint: cannot resolve workspace root: {e}");
                std::process::exit(2)
            })
    });

    let report = match mn_lint::run(&root, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mn-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if github {
        emit(&report.render_github());
    }
    emit(&report.render_human());
    if let Some(path) = json {
        let body = report.render_json();
        if path == "-" {
            emit(&body);
            emit("\n");
        } else if let Err(e) = std::fs::write(&path, body) {
            eprintln!("mn-lint: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    ExitCode::from(report.exit_code() as u8)
}

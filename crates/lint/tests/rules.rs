//! End-to-end lockdown of the mn-lint rules against synthesized fixture
//! trees, plus the self-check that keeps the real repository clean.
//!
//! Each fixture is a throwaway directory shaped like a miniature
//! workspace; `mn_lint::run` is the same entry point the CI binary
//! uses, so these tests pin the acceptance criterion directly: a seeded
//! violation of every rule makes the run fail, a clean tree passes, and
//! a reasoned allow marker suppresses exactly its own line.

use mn_lint::{run, Options};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

static FIXTURE_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A temp-dir fixture tree, removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(files: &[(&str, &str)]) -> Fixture {
        let root = std::env::temp_dir().join(format!(
            "mn-lint-fixture-{}-{}",
            std::process::id(),
            FIXTURE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        for (rel, text) in files {
            let path = root.join(rel);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, text).unwrap();
        }
        Fixture { root }
    }

    /// Lint the fixture with a freshly generated unsafe inventory, so
    /// only the rule under test can fire.
    fn lint(&self) -> mn_lint::report::Report {
        run(&self.root, &Options { update_docs: true }).unwrap()
    }

    /// Lint the fixture as-is (used by the inventory-staleness tests).
    fn lint_no_update(&self) -> mn_lint::report::Report {
        run(&self.root, &Options::default()).unwrap()
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn rules_fired(report: &mn_lint::report::Report) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = report.violations.iter().map(|v| v.rule).collect();
    rules.dedup();
    rules
}

/// A registry fixture whose two sites are both wired, keeping the
/// fault-site rule quiet unless a test seeds a violation.
const FAULTS_RS: &str = r#"
pub mod sites {
    pub const QUEUE_POP: &str = "serve.queue.pop";
    pub const WORKER_EVAL: &str = "serve.worker.eval";
}
pub fn trigger(name: &str) { let _ = name; }
"#;

const SERVE_WIRED: &str = "
pub fn worker() {
    faults::trigger(faults::sites::QUEUE_POP);
    faults::trigger(faults::sites::WORKER_EVAL);
}
";

#[test]
fn clean_fixture_tree_passes() {
    let fx = Fixture::new(&[
        ("crates/ensemble/src/faults.rs", FAULTS_RS),
        ("crates/ensemble/src/serve.rs", SERVE_WIRED),
        ("src/lib.rs", "pub fn fine() -> u32 { 7 }\n"),
    ]);
    let report = fx.lint();
    assert_eq!(report.violations, Vec::new());
    assert_eq!(report.exit_code(), 0);
}

#[test]
fn seeded_safety_comment_violation_fails_the_run() {
    let fx = Fixture::new(&[(
        "src/lib.rs",
        "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
    )]);
    let report = fx.lint();
    assert_eq!(rules_fired(&report), ["safety-comment"]);
    assert_eq!(report.exit_code(), 1);
}

#[test]
fn documented_unsafe_passes_safety_comment() {
    let fx = Fixture::new(&[(
        "src/lib.rs",
        "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller passes a valid pointer.\n    unsafe { *p }\n}\n",
    )]);
    assert_eq!(fx.lint().violations, Vec::new());
}

#[test]
fn seeded_no_panic_violation_fails_the_run() {
    let fx = Fixture::new(&[(
        "crates/ensemble/src/serve.rs",
        "pub fn answer(q: Option<u32>) -> u32 { q.unwrap() }\n",
    )]);
    let report = fx.lint();
    assert_eq!(rules_fired(&report), ["no-panic-in-serve"]);
    assert_eq!(report.exit_code(), 1);
}

#[test]
fn poison_recovery_and_test_code_are_exempt_from_no_panic() {
    let fx = Fixture::new(&[(
        "crates/ensemble/src/serve.rs",
        "
pub fn locked(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap_or_else(|e| e.into_inner())
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); }
}
",
    )]);
    assert_eq!(fx.lint().violations, Vec::new());
}

#[test]
fn seeded_fault_site_typo_fails_the_run() {
    let serve = "
pub fn worker() {
    faults::trigger(faults::sites::QUEUE_POP);
    faults::trigger(faults::sites::WORKER_EVAL);
    scope.enable(\"serve.queue.pops\");
}
";
    let fx = Fixture::new(&[
        ("crates/ensemble/src/faults.rs", FAULTS_RS),
        ("crates/ensemble/src/serve.rs", serve),
    ]);
    let report = fx.lint();
    assert_eq!(rules_fired(&report), ["fault-site-names"]);
    assert!(report.violations[0].message.contains("serve.queue.pops"));
}

#[test]
fn seeded_unwired_fault_site_fails_the_run() {
    let serve = "pub fn worker() { faults::trigger(faults::sites::QUEUE_POP); }\n";
    let fx = Fixture::new(&[
        ("crates/ensemble/src/faults.rs", FAULTS_RS),
        ("crates/ensemble/src/serve.rs", serve),
    ]);
    let report = fx.lint();
    assert_eq!(rules_fired(&report), ["fault-site-names"]);
    assert!(report.violations[0].message.contains("WORKER_EVAL"));
}

#[test]
fn seeded_ci_drift_violation_fails_the_run() {
    let fx = Fixture::new(&[
        ("Cargo.toml", "[package]\nname = \"fixture-root\"\n"),
        (
            "src/lib.rs",
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn checksum_detects_bit_flip() {}\n}\n",
        ),
        (
            ".github/workflows/ci.yml",
            "jobs:\n  test:\n    steps:\n      - run: cargo test checksum_detects_bitflip\n",
        ),
    ]);
    let report = fx.lint();
    assert_eq!(rules_fired(&report), ["ci-test-drift"]);
    assert!(report.violations[0]
        .message
        .contains("checksum_detects_bitflip"));
}

#[test]
fn matching_ci_names_pass() {
    let fx = Fixture::new(&[
        ("Cargo.toml", "[package]\nname = \"fixture-root\"\n"),
        (
            "src/lib.rs",
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn checksum_detects_bit_flip() {}\n}\n",
        ),
        ("tests/chaos_serving.rs", "#[test]\nfn chaos_survives() {}\n"),
        (
            ".github/workflows/ci.yml",
            "jobs:\n  test:\n    steps:\n      - run: cargo test checksum_detects_bit_flip\n      - run: cargo test --test chaos_serving -- --nocapture\n",
        ),
    ]);
    assert_eq!(fx.lint().violations, Vec::new());
}

#[test]
fn seeded_hot_path_alloc_fails_the_run() {
    let fx = Fixture::new(&[(
        "src/lib.rs",
        "// mn-lint: hot-path\npub fn kernel(xs: &[f32]) -> Vec<f32> { xs.to_vec() }\n",
    )]);
    let report = fx.lint();
    assert_eq!(rules_fired(&report), ["hot-path-alloc"]);
    assert!(report.violations[0].message.contains("to_vec"));
}

#[test]
fn reasoned_allow_marker_suppresses_exactly_its_line() {
    let fx = Fixture::new(&[(
        "crates/ensemble/src/serve.rs",
        "
pub fn answer(q: Option<u32>, r: Option<u32>) -> u32 {
    // mn-lint: allow(no-panic-in-serve, reason = \"fixture: q is checked by the caller\")
    let a = q.unwrap();
    a + r.unwrap()
}
",
    )]);
    let report = fx.lint();
    assert_eq!(report.suppressed, 1);
    assert_eq!(rules_fired(&report), ["no-panic-in-serve"]);
    assert_eq!(report.violations.len(), 1, "only the unmarked line stays");
    assert_eq!(report.violations[0].line, 5);
}

#[test]
fn allow_marker_without_reason_is_itself_a_violation() {
    let fx = Fixture::new(&[(
        "crates/ensemble/src/serve.rs",
        "
pub fn answer(q: Option<u32>) -> u32 {
    // mn-lint: allow(no-panic-in-serve)
    q.unwrap()
}
",
    )]);
    let report = fx.lint();
    let rules = rules_fired(&report);
    assert!(rules.contains(&"allow-marker"), "{rules:?}");
    assert!(
        rules.contains(&"no-panic-in-serve"),
        "a reasonless marker must not suppress: {rules:?}"
    );
}

#[test]
fn allow_marker_naming_unknown_rule_is_flagged() {
    let fx = Fixture::new(&[(
        "src/lib.rs",
        "// mn-lint: allow(no-panics-in-serve, reason = \"typo'd rule name\")\npub fn f() {}\n",
    )]);
    let report = fx.lint();
    assert_eq!(rules_fired(&report), ["allow-marker"]);
    assert!(report.violations[0].message.contains("no-panics-in-serve"));
}

#[test]
fn missing_and_stale_inventories_are_flagged() {
    let src = "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: fixture pointer is valid.\n    unsafe { *p }\n}\n";
    let fx = Fixture::new(&[("src/lib.rs", src)]);
    // Missing entirely.
    let report = fx.lint_no_update();
    assert_eq!(rules_fired(&report), ["unsafe-inventory"]);
    // Regenerated: clean.
    assert_eq!(fx.lint().violations, Vec::new());
    assert_eq!(fx.lint_no_update().violations, Vec::new());
    // Hand-edited: stale again.
    let doc = fx.root.join("docs/UNSAFE.md");
    let mut text = std::fs::read_to_string(&doc).unwrap();
    text.push_str("\nhand edit\n");
    std::fs::write(&doc, text).unwrap();
    assert_eq!(rules_fired(&fx.lint_no_update()), ["unsafe-inventory"]);
}

#[test]
fn github_rendering_emits_one_annotation_per_violation() {
    let fx = Fixture::new(&[(
        "crates/ensemble/src/serve.rs",
        "pub fn answer(q: Option<u32>) -> u32 { q.unwrap() }\n",
    )]);
    let report = fx.lint();
    let gh = report.render_github();
    assert_eq!(gh.lines().count(), report.violations.len());
    assert!(
        gh.starts_with("::error file=crates/ensemble/src/serve.rs,line=1,"),
        "{gh}"
    );
    let json = report.render_json();
    assert!(json.contains("\"rule\": \"no-panic-in-serve\""), "{json}");
}

/// The acceptance check: the real repository is lint-clean. This is
/// what makes every invariant above *enforced* rather than aspirational
/// — `cargo test` fails the moment HEAD regresses.
#[test]
fn repository_head_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = run(&root, &Options::default()).unwrap();
    assert_eq!(
        report.violations,
        Vec::new(),
        "repo HEAD has mn-lint violations; run `cargo run -p mn-lint` for the report"
    );
    assert!(report.files_scanned > 50, "walker found too few files");
}

//! Property lockdown for the mn-lint lexer. Every lint rule rests on
//! two lexer guarantees:
//!
//! 1. **Losslessness** — concatenating the token texts reproduces the
//!    input byte-for-byte, for arbitrary (even malformed) input. A lexer
//!    that drops or duplicates bytes mis-lines every diagnostic.
//! 2. **Classification** — `unsafe` / `unwrap` spelled inside string
//!    literals, raw strings, char literals, or (nested) comments never
//!    lex as identifiers; spelled in code they always do. This is the
//!    difference between linting the program and linting its prose.

use mn_lint::lexer::{lex, TokenKind};
use proptest::prelude::*;

/// A composable source fragment with the number of `unsafe` and
/// `unwrap` *identifier* tokens it is known to contribute.
struct Piece {
    text: &'static str,
    unsafes: usize,
    unwraps: usize,
}

/// The fragment menu the generator samples from. Each embeds the
/// keywords somewhere a naive substring scan would miscount.
const PIECES: &[Piece] = &[
    // Real code: the keywords are identifiers.
    Piece {
        text: "unsafe { go() }\n",
        unsafes: 1,
        unwraps: 0,
    },
    Piece {
        text: "let v = x.unwrap();\n",
        unsafes: 0,
        unwraps: 1,
    },
    Piece {
        text: "pub unsafe fn k() { y.unwrap() }\n",
        unsafes: 1,
        unwraps: 1,
    },
    // Strings and chars: invisible.
    Piece {
        text: "let s = \"unsafe unwrap\";\n",
        unsafes: 0,
        unwraps: 0,
    },
    Piece {
        text: "let s = \"esc \\\" unsafe\";\n",
        unsafes: 0,
        unwraps: 0,
    },
    Piece {
        text: "let r = r#\"raw unsafe \"quoted\" unwrap\"#;\n",
        unsafes: 0,
        unwraps: 0,
    },
    Piece {
        text: "let b = b\"unsafe bytes\";\n",
        unsafes: 0,
        unwraps: 0,
    },
    Piece {
        text: "let c = 'u';\n",
        unsafes: 0,
        unwraps: 0,
    },
    // Comments, including nesting: invisible.
    Piece {
        text: "// line unsafe unwrap\n",
        unsafes: 0,
        unwraps: 0,
    },
    Piece {
        text: "/* block unsafe */\n",
        unsafes: 0,
        unwraps: 0,
    },
    Piece {
        text: "/* outer /* nested unsafe */ unwrap */\n",
        unsafes: 0,
        unwraps: 0,
    },
    Piece {
        text: "/// doc unsafe\n",
        unsafes: 0,
        unwraps: 0,
    },
    // Near-miss syntax the lexer must keep separate.
    Piece {
        text: "let l: &'static str = \"x\";\n",
        unsafes: 0,
        unwraps: 0,
    },
    Piece {
        text: "let n = 1.0e-5f32;\n",
        unsafes: 0,
        unwraps: 0,
    },
    Piece {
        text: "let id = r#unsafe_named;\n",
        unsafes: 0,
        unwraps: 0,
    },
    Piece {
        text: "#[cfg(test)]\n",
        unsafes: 0,
        unwraps: 0,
    },
];

/// Characters for adversarial raw input: quote/comment/escape machinery
/// in random order, exercising every unterminated-form path.
const SOUP: &[char] = &[
    '"', '\'', '#', 'r', 'b', '/', '*', '\\', '{', '}', 'u', 'n', 's', 'a', 'f', 'e', 'w', 'p',
    '.', '(', ')', '0', '1', 'e', '-', '\n', ' ', '!', ':',
];

fn ident_count(src: &str, word: &str) -> usize {
    lex(src)
        .iter()
        .filter(|t| t.kind == TokenKind::Ident && t.text(src) == word)
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Composed well-formed sources round-trip losslessly and count
    /// exactly the keyword identifiers the composition put in code
    /// (never the ones hidden in strings/comments).
    #[test]
    fn composed_sources_round_trip_and_classify(
        idx in proptest::collection::vec(0usize..PIECES.len(), 1..40)
    ) {
        let mut src = String::new();
        let (mut want_unsafe, mut want_unwrap) = (0usize, 0usize);
        for &i in &idx {
            src.push_str(PIECES[i].text);
            want_unsafe += PIECES[i].unsafes;
            want_unwrap += PIECES[i].unwraps;
        }
        let tokens = lex(&src);
        let rebuilt: String = tokens.iter().map(|t| t.text(&src)).collect();
        prop_assert_eq!(&rebuilt, &src, "lexer is not lossless");
        prop_assert_eq!(ident_count(&src, "unsafe"), want_unsafe, "src: {src:?}");
        prop_assert_eq!(ident_count(&src, "unwrap"), want_unwrap, "src: {src:?}");
    }

    /// Arbitrary character soup — mostly malformed Rust — still
    /// round-trips losslessly with in-order, non-overlapping spans.
    #[test]
    fn adversarial_soup_round_trips(
        idx in proptest::collection::vec(0usize..SOUP.len(), 0..80)
    ) {
        let src: String = idx.iter().map(|&i| SOUP[i]).collect();
        let tokens = lex(&src);
        let rebuilt: String = tokens.iter().map(|t| t.text(&src)).collect();
        prop_assert_eq!(&rebuilt, &src, "lexer is not lossless on {src:?}");
        let mut pos = 0usize;
        for t in &tokens {
            prop_assert_eq!(t.start, pos, "gap or overlap at byte {pos} in {src:?}");
            prop_assert!(t.end > t.start, "empty token in {src:?}");
            pos = t.end;
        }
        prop_assert_eq!(pos, src.len());
    }

    /// Line numbers: a token's recorded line equals 1 + the number of
    /// newlines before its start byte. (Diagnostics point here.)
    #[test]
    fn line_numbers_match_newline_count(
        idx in proptest::collection::vec(0usize..PIECES.len(), 1..20)
    ) {
        let src: String = idx.iter().map(|&i| PIECES[i].text).collect();
        for t in lex(&src) {
            let want = 1 + src[..t.start].matches('\n').count();
            prop_assert_eq!(t.line, want, "token at byte {} in {src:?}", t.start);
        }
    }
}

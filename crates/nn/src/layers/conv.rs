//! 2-D convolutional layer (stride 1, same padding).

use mn_tensor::{conv, init, Tensor};
use rand::Rng;

use crate::layer::Param;

/// A stride-1, same-padded 2-D convolution: input `[N, C, H, W]`, weight
/// `[F, C, K, K]`, bias `[F]`, output `[N, F, H, W]`.
#[derive(Clone, Debug)]
pub struct ConvLayer {
    /// Kernel weights `[F, C, K, K]`.
    pub weight: Param,
    /// Per-filter bias `[F]`.
    pub bias: Param,
    cached_input: Option<Tensor>,
}

impl ConvLayer {
    /// Creates a conv layer with He-initialized kernels and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is even (same padding requires odd kernels).
    pub fn new<R: Rng>(in_channels: usize, filters: usize, kernel: usize, rng: &mut R) -> Self {
        let _ = conv::same_padding(kernel); // validates oddness
        let std = init::he_std(init::conv_fan_in(in_channels, kernel));
        ConvLayer {
            weight: Param::new(Tensor::randn(
                [filters, in_channels, kernel, kernel],
                std,
                rng,
            )),
            bias: Param::new(Tensor::zeros([filters])),
            cached_input: None,
        }
    }

    /// Creates a conv layer from explicit parameters (morphism engine,
    /// tests).
    ///
    /// # Panics
    ///
    /// Panics on malformed shapes or even kernels.
    pub fn from_params(weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(weight.shape().ndim(), 4, "conv weight must be [F, C, K, K]");
        let k = weight.shape().dim(2);
        assert_eq!(k, weight.shape().dim(3), "conv kernels must be square");
        let _ = conv::same_padding(k);
        assert_eq!(
            bias.shape().dims(),
            &[weight.shape().dim(0)],
            "conv bias must be [filters]"
        );
        ConvLayer {
            weight: Param::new(weight),
            bias: Param::new(bias),
            cached_input: None,
        }
    }

    /// Number of output filters.
    pub fn filters(&self) -> usize {
        self.weight.value.shape().dim(0)
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.weight.value.shape().dim(1)
    }

    /// Kernel extent.
    pub fn kernel(&self) -> usize {
        self.weight.value.shape().dim(2)
    }

    /// Same padding for this layer's kernel.
    pub fn padding(&self) -> usize {
        self.kernel() / 2
    }

    /// Forward pass; caches the input for backward when `train` is set.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = conv::conv2d_forward(x, &self.weight.value, &self.bias.value, self.padding());
        if train {
            self.cached_input = Some(x.clone());
        }
        y
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient w.r.t. the input.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("conv backward before forward");
        let (gw, gb) = conv::conv2d_backward_params(grad_out, x, self.kernel(), self.padding());
        self.weight.grad.add_assign(&gw);
        self.bias.grad.add_assign(&gb);
        let h = x.shape().dim(2);
        let w = x.shape().dim(3);
        conv::conv2d_backward_input(grad_out, &self.weight.value, h, w, self.padding())
    }

    /// The layer's trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    /// Drops cached activations.
    pub fn clear_cache(&mut self) {
        self.cached_input = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_tensor::assert_close;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = ConvLayer::new(3, 8, 3, &mut rng);
        let x = Tensor::randn([2, 3, 6, 6], 1.0, &mut rng);
        let y = layer.forward(&x, false);
        assert_eq!(y.shape().dims(), &[2, 8, 6, 6]);
        assert_eq!(layer.filters(), 8);
        assert_eq!(layer.in_channels(), 3);
        assert_eq!(layer.kernel(), 3);
        assert_eq!(layer.padding(), 1);
    }

    #[test]
    fn end_to_end_gradient_check() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = ConvLayer::new(2, 3, 3, &mut rng);
        let x = Tensor::randn([1, 2, 4, 4], 1.0, &mut rng);
        let y = layer.forward(&x, true);
        let gin = layer.backward(&y); // L = 0.5||y||^2
        let eps = 1e-2;
        let mut x2 = x.clone();
        let dir = Tensor::randn([1, 2, 4, 4], 1.0, &mut rng);
        x2.axpy(eps, &dir);
        let lp = layer.forward(&x2, false).sq_norm() * 0.5;
        let mut x3 = x.clone();
        x3.axpy(-eps, &dir);
        let lm = layer.forward(&x3, false).sq_norm() * 0.5;
        let numeric = (lp - lm) / (2.0 * eps);
        let analytic: f32 = gin.data().iter().zip(dir.data()).map(|(g, d)| g * d).sum();
        assert!(
            (numeric - analytic).abs() / (1.0 + analytic.abs()) < 5e-2,
            "{numeric} vs {analytic}"
        );
    }

    #[test]
    fn one_by_one_kernel_supported() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = ConvLayer::new(4, 2, 1, &mut rng);
        let x = Tensor::randn([1, 4, 3, 3], 1.0, &mut rng);
        let y = layer.forward(&x, false);
        assert_eq!(y.shape().dims(), &[1, 2, 3, 3]);
        assert_eq!(layer.padding(), 0);
    }

    #[test]
    #[should_panic(expected = "odd kernel")]
    fn even_kernel_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        ConvLayer::new(3, 4, 2, &mut rng);
    }

    #[test]
    fn from_params_roundtrip() {
        let w = Tensor::ones([2, 1, 3, 3]);
        let b = Tensor::zeros([2]);
        let mut layer = ConvLayer::from_params(w, b);
        let x = Tensor::ones([1, 1, 3, 3]);
        let y = layer.forward(&x, false);
        // Center pixel sees the full 3x3 window of ones.
        assert_close(&[y.at4(0, 0, 1, 1)], &[9.0], 1e-6);
    }
}

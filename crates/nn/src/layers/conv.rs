//! 2-D convolutional layer (stride 1, same padding).
//!
//! The forward pass picks between the two kernel formulations in
//! `mn-tensor` per layer shape: im2col + blocked GEMM when the reduction
//! depth `C·K·K` is deep enough for the register-tiled matmul to win,
//! direct scalar×row accumulation otherwise (1×1 kernels on few
//! channels). Both are pinned to the same outputs by the
//! `kernel_equivalence` property suite.

use mn_tensor::{conv, im2col, init, Tensor, Workspace};
use rand::Rng;

use crate::layer::Param;

/// Minimum im2col reduction depth (`C·K·K`) for the GEMM formulation to
/// beat the direct kernel.
const GEMM_MIN_REDUCTION: usize = 16;

/// Which convolution kernel formulation a [`ConvLayer`] runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ConvFormulation {
    /// Pick per layer shape: im2col + GEMM when the reduction depth is
    /// deep enough, direct otherwise. The default.
    #[default]
    Auto,
    /// Always the direct scalar×row kernel (the pre-optimization path;
    /// used by benchmarks as the naive baseline).
    Direct,
    /// Always im2col + blocked GEMM.
    Im2colGemm,
}

/// A stride-1, same-padded 2-D convolution: input `[N, C, H, W]`, weight
/// `[F, C, K, K]`, bias `[F]`, output `[N, F, H, W]`.
#[derive(Clone, Debug)]
pub struct ConvLayer {
    /// Kernel weights `[F, C, K, K]`.
    pub weight: Param,
    /// Per-filter bias `[F]`.
    pub bias: Param,
    formulation: ConvFormulation,
    cached_input: Option<Tensor>,
}

impl ConvLayer {
    /// Creates a conv layer with He-initialized kernels and zero bias.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is even (same padding requires odd kernels).
    pub fn new<R: Rng>(in_channels: usize, filters: usize, kernel: usize, rng: &mut R) -> Self {
        let _ = conv::same_padding(kernel); // validates oddness
        let std = init::he_std(init::conv_fan_in(in_channels, kernel));
        ConvLayer {
            weight: Param::new(Tensor::randn(
                [filters, in_channels, kernel, kernel],
                std,
                rng,
            )),
            bias: Param::new(Tensor::zeros([filters])),
            formulation: ConvFormulation::Auto,
            cached_input: None,
        }
    }

    /// Creates a conv layer with all-zero kernels and bias — no RNG, no
    /// Box–Muller sampling. This is the cold-start construction path for
    /// checkpoint restore, where every value is immediately overwritten
    /// anyway.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is even.
    pub fn zeroed(in_channels: usize, filters: usize, kernel: usize) -> Self {
        ConvLayer::from_params(
            Tensor::zeros([filters, in_channels, kernel, kernel]),
            Tensor::zeros([filters]),
        )
    }

    /// Creates a conv layer from explicit parameters (morphism engine,
    /// tests).
    ///
    /// # Panics
    ///
    /// Panics on malformed shapes or even kernels.
    pub fn from_params(weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(weight.shape().ndim(), 4, "conv weight must be [F, C, K, K]");
        let k = weight.shape().dim(2);
        assert_eq!(k, weight.shape().dim(3), "conv kernels must be square");
        let _ = conv::same_padding(k);
        assert_eq!(
            bias.shape().dims(),
            &[weight.shape().dim(0)],
            "conv bias must be [filters]"
        );
        ConvLayer {
            weight: Param::new(weight),
            bias: Param::new(bias),
            formulation: ConvFormulation::Auto,
            cached_input: None,
        }
    }

    /// Number of output filters.
    pub fn filters(&self) -> usize {
        self.weight.value.shape().dim(0)
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.weight.value.shape().dim(1)
    }

    /// Kernel extent.
    pub fn kernel(&self) -> usize {
        self.weight.value.shape().dim(2)
    }

    /// Same padding for this layer's kernel.
    pub fn padding(&self) -> usize {
        self.kernel() / 2
    }

    /// The formulation this layer's forward pass runs.
    pub fn formulation(&self) -> ConvFormulation {
        self.formulation
    }

    /// Overrides the forward formulation (benchmarks pin
    /// [`ConvFormulation::Direct`] to measure the naive baseline).
    pub fn set_formulation(&mut self, formulation: ConvFormulation) {
        self.formulation = formulation;
    }

    fn use_gemm(&self) -> bool {
        match self.formulation {
            ConvFormulation::Auto => {
                self.in_channels() * self.kernel() * self.kernel() >= GEMM_MIN_REDUCTION
            }
            ConvFormulation::Direct => false,
            ConvFormulation::Im2colGemm => true,
        }
    }

    /// Forward pass; caches the input for backward when `train` is set.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_ws(x, train, &mut Workspace::new())
    }

    /// [`ConvLayer::forward`] staging its output (and, on the GEMM path,
    /// the im2col scratch; in train mode, the cached-input copy) in a
    /// [`Workspace`].
    pub fn forward_ws(&mut self, x: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let y = self.forward_eval_ws(x, ws);
        if train {
            if let Some(old) = self.cached_input.take() {
                ws.release(old);
            }
            let mut cache = ws.acquire_uninit(x.shape().dims());
            cache.data_mut().copy_from_slice(x.data());
            self.cached_input = Some(cache);
        }
        y
    }

    /// Eval-mode forward through shared access only: the same
    /// [`ConvFormulation`] dispatch as [`ConvLayer::forward_ws`], but it
    /// reads the kernel weights without writing anything back into the
    /// layer — many serving sessions can execute one set of weights
    /// concurrently.
    // mn-lint: hot-path
    pub fn forward_eval_ws(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let k = self.kernel();
        let pad = self.padding();
        if self.use_gemm() {
            im2col::conv2d_forward_im2col_ws(x, &self.weight.value, &self.bias.value, pad, ws)
        } else {
            let d = x.shape().dims();
            let ho = conv::conv_out_extent(d[2], k, pad);
            let wo = conv::conv_out_extent(d[3], k, pad);
            let mut y = ws.acquire_uninit([d[0], self.filters(), ho, wo]);
            conv::conv2d_forward_into(x, &self.weight.value, &self.bias.value, pad, &mut y);
            y
        }
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient w.r.t. the input.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_ws(grad_out, &mut Workspace::new())
    }

    /// [`ConvLayer::backward`] staging every intermediate in a
    /// [`Workspace`]. The same [`ConvFormulation`] switch as the forward
    /// pass applies: deep reductions run the GEMM-backed backward kernels
    /// (col2im input gradient, im2col-transposed weight gradient), shallow
    /// ones the direct loops — both pinned to each other by the
    /// `gradient_equivalence` suite.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward pass.
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("conv backward before forward");
        let k = self.kernel();
        let pad = self.padding();
        let h = x.shape().dim(2);
        let w = x.shape().dim(3);
        if self.use_gemm() {
            let (gw, gb) = im2col::conv2d_backward_params_im2col_ws(grad_out, x, k, pad, ws);
            self.weight.grad.add_assign(&gw);
            self.bias.grad.add_assign(&gb);
            ws.release(gw);
            ws.release(gb);
            im2col::conv2d_backward_input_im2col_ws(grad_out, &self.weight.value, h, w, pad, ws)
        } else {
            let mut gw = ws.acquire_uninit(self.weight.value.shape().dims());
            let mut gb = ws.acquire_uninit(self.bias.value.shape().dims());
            conv::conv2d_backward_params_into(grad_out, x, k, pad, &mut gw, &mut gb);
            self.weight.grad.add_assign(&gw);
            self.bias.grad.add_assign(&gb);
            ws.release(gw);
            ws.release(gb);
            let d = x.shape().dims();
            let mut gin = ws.acquire_uninit([d[0], d[1], h, w]);
            conv::conv2d_backward_input_into(grad_out, &self.weight.value, pad, &mut gin);
            gin
        }
    }

    /// The layer's trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    /// Visits the layer's trainable parameters in [`ConvLayer::params_mut`]
    /// order without materializing a `Vec`.
    pub fn visit_params_mut(&mut self, f: &mut impl FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    /// Drops cached activations.
    pub fn clear_cache(&mut self) {
        self.cached_input = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_tensor::assert_close;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = ConvLayer::new(3, 8, 3, &mut rng);
        let x = Tensor::randn([2, 3, 6, 6], 1.0, &mut rng);
        let y = layer.forward(&x, false);
        assert_eq!(y.shape().dims(), &[2, 8, 6, 6]);
        assert_eq!(layer.filters(), 8);
        assert_eq!(layer.in_channels(), 3);
        assert_eq!(layer.kernel(), 3);
        assert_eq!(layer.padding(), 1);
    }

    #[test]
    fn end_to_end_gradient_check() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = ConvLayer::new(2, 3, 3, &mut rng);
        let x = Tensor::randn([1, 2, 4, 4], 1.0, &mut rng);
        let y = layer.forward(&x, true);
        let gin = layer.backward(&y); // L = 0.5||y||^2
        let eps = 1e-2;
        let mut x2 = x.clone();
        let dir = Tensor::randn([1, 2, 4, 4], 1.0, &mut rng);
        x2.axpy(eps, &dir);
        let lp = layer.forward(&x2, false).sq_norm() * 0.5;
        let mut x3 = x.clone();
        x3.axpy(-eps, &dir);
        let lm = layer.forward(&x3, false).sq_norm() * 0.5;
        let numeric = (lp - lm) / (2.0 * eps);
        let analytic: f32 = gin.data().iter().zip(dir.data()).map(|(g, d)| g * d).sum();
        assert!(
            (numeric - analytic).abs() / (1.0 + analytic.abs()) < 5e-2,
            "{numeric} vs {analytic}"
        );
    }

    #[test]
    fn formulations_agree_and_are_overridable() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut layer = ConvLayer::new(4, 6, 3, &mut rng);
        assert_eq!(layer.formulation(), ConvFormulation::Auto);
        let x = Tensor::randn([2, 4, 6, 6], 1.0, &mut rng);
        let auto = layer.forward(&x, false);
        layer.set_formulation(ConvFormulation::Direct);
        let direct = layer.forward(&x, false);
        layer.set_formulation(ConvFormulation::Im2colGemm);
        let gemm = layer.forward(&x, false);
        assert_close(direct.data(), gemm.data(), 1e-4);
        assert_close(auto.data(), gemm.data(), 1e-4);
    }

    #[test]
    fn one_by_one_kernel_supported() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = ConvLayer::new(4, 2, 1, &mut rng);
        let x = Tensor::randn([1, 4, 3, 3], 1.0, &mut rng);
        let y = layer.forward(&x, false);
        assert_eq!(y.shape().dims(), &[1, 2, 3, 3]);
        assert_eq!(layer.padding(), 0);
    }

    #[test]
    #[should_panic(expected = "odd kernel")]
    fn even_kernel_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        ConvLayer::new(3, 4, 2, &mut rng);
    }

    #[test]
    fn from_params_roundtrip() {
        let w = Tensor::ones([2, 1, 3, 3]);
        let b = Tensor::zeros([2]);
        let mut layer = ConvLayer::from_params(w, b);
        let x = Tensor::ones([1, 1, 3, 3]);
        let y = layer.forward(&x, false);
        // Center pixel sees the full 3x3 window of ones.
        assert_close(&[y.at4(0, 0, 1, 1)], &[9.0], 1e-6);
    }
}

//! Activation layers.

use mn_tensor::{Tensor, Workspace};

/// Rectified linear unit, `y = max(x, 0)`, applied element-wise.
///
/// ReLU is the activation the deepening morphism relies on: an inserted
/// identity layer followed by ReLU preserves the function because the
/// preceding activation is already non-negative (Net2Net/Network Morphism
/// precondition).
#[derive(Clone, Debug, Default)]
pub struct ReluLayer {
    mask: Option<Vec<bool>>,
}

impl ReluLayer {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        ReluLayer { mask: None }
    }

    /// Forward pass; caches the activation mask when `train` is set.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_ws(x, train, &mut Workspace::new())
    }

    /// [`ReluLayer::forward`] staging its output in a [`Workspace`]. The
    /// activation mask's allocation is reused across steps.
    pub fn forward_ws(&mut self, x: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        if train {
            let mut mask = self.mask.take().unwrap_or_default();
            mask.clear();
            mask.extend(x.data().iter().map(|&v| v > 0.0));
            self.mask = Some(mask);
        }
        self.forward_eval_ws(x, ws)
    }

    /// Eval-mode forward through shared access only (no backward mask is
    /// recorded), so many serving sessions can share one layer.
    // mn-lint: hot-path
    pub fn forward_eval_ws(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let mut y = ws.acquire_uninit(x.shape().dims());
        for (out, &v) in y.data_mut().iter_mut().zip(x.data()) {
            *out = v.max(0.0);
        }
        y
    }

    /// Backward pass: zeroes gradient where the input was non-positive.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward pass or on a length
    /// mismatch.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_ws(grad_out, &mut Workspace::new())
    }

    /// [`ReluLayer::backward`] staging its output in a [`Workspace`].
    ///
    /// # Panics
    ///
    /// Same conditions as [`ReluLayer::backward`].
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let mask = self.mask.as_ref().expect("relu backward before forward");
        assert_eq!(mask.len(), grad_out.len(), "relu mask length mismatch");
        let mut g = ws.acquire_uninit(grad_out.shape().dims());
        for ((out, &v), &keep) in g
            .data_mut()
            .iter_mut()
            .zip(grad_out.data())
            .zip(mask.iter())
        {
            *out = if keep { v } else { 0.0 };
        }
        g
    }

    /// Drops cached activations.
    pub fn clear_cache(&mut self) {
        self.mask = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut relu = ReluLayer::new();
        let x = Tensor::from_vec([4], vec![-1.0, 0.0, 2.0, -3.0]);
        let y = relu.forward(&x, false);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut relu = ReluLayer::new();
        let x = Tensor::from_vec([4], vec![-1.0, 0.5, 2.0, -3.0]);
        relu.forward(&x, true);
        let g = relu.backward(&Tensor::ones([4]));
        assert_eq!(g.data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn zero_input_blocks_gradient() {
        // Subgradient choice at 0 is 0 (x > 0 strictly).
        let mut relu = ReluLayer::new();
        relu.forward(&Tensor::zeros([2]), true);
        let g = relu.backward(&Tensor::ones([2]));
        assert_eq!(g.data(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        ReluLayer::new().backward(&Tensor::ones([1]));
    }
}

//! Fully-connected (dense) layer.

use mn_tensor::{init, ops, Tensor, Workspace};
use rand::Rng;

use crate::layer::Param;

/// A dense layer computing `y = x · W + b` for `x: [N, in]`,
/// `W: [in, out]`, `b: [out]`.
#[derive(Clone, Debug)]
pub struct DenseLayer {
    /// Weight matrix `[in, out]`.
    pub weight: Param,
    /// Bias vector `[out]`.
    pub bias: Param,
    cached_input: Option<Tensor>,
}

impl DenseLayer {
    /// Creates a dense layer with He-initialized weights and zero bias.
    pub fn new<R: Rng>(in_features: usize, out_features: usize, rng: &mut R) -> Self {
        let std = init::he_std(in_features);
        DenseLayer {
            weight: Param::new(Tensor::randn([in_features, out_features], std, rng)),
            bias: Param::new(Tensor::zeros([out_features])),
            cached_input: None,
        }
    }

    /// Creates a dense layer with all-zero weights and bias — no RNG, no
    /// Box–Muller sampling. This is the cold-start construction path for
    /// checkpoint restore, where every value is immediately overwritten
    /// anyway.
    pub fn zeroed(in_features: usize, out_features: usize) -> Self {
        DenseLayer::from_params(
            Tensor::zeros([in_features, out_features]),
            Tensor::zeros([out_features]),
        )
    }

    /// Creates a dense layer from explicit weights (used by the morphism
    /// engine and by tests).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not 2-D or `bias` does not match its width.
    pub fn from_params(weight: Tensor, bias: Tensor) -> Self {
        assert_eq!(weight.shape().ndim(), 2, "dense weight must be [in, out]");
        assert_eq!(
            bias.shape().dims(),
            &[weight.shape().dim(1)],
            "dense bias must match weight width"
        );
        DenseLayer {
            weight: Param::new(weight),
            bias: Param::new(bias),
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.shape().dim(0)
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.shape().dim(1)
    }

    /// Forward pass; caches the input for backward when `train` is set.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_ws(x, train, &mut Workspace::new())
    }

    /// [`DenseLayer::forward`] staging its output — and in train mode the
    /// cached-input copy — in a [`Workspace`], so steady-state training
    /// steps reuse both buffers.
    pub fn forward_ws(&mut self, x: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let y = self.forward_eval_ws(x, ws);
        if train {
            if let Some(old) = self.cached_input.take() {
                ws.release(old);
            }
            let mut cache = ws.acquire_uninit(x.shape().dims());
            cache.data_mut().copy_from_slice(x.data());
            self.cached_input = Some(cache);
        }
        y
    }

    /// Eval-mode forward through shared access only: reads the weights,
    /// writes nothing back into the layer. This is what lets many serving
    /// sessions execute one set of layer weights concurrently (the
    /// train-mode cache is the only thing `forward_ws` mutates, and eval
    /// never needs it).
    // mn-lint: hot-path
    pub fn forward_eval_ws(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let mut y = ws.acquire_uninit([x.shape().dim(0), self.out_features()]);
        ops::matmul_into_ws(x, &self.weight.value, &mut y, ws);
        ops::add_row_bias(&mut y, &self.bias.value);
        y
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient w.r.t. the input.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_ws(grad_out, &mut Workspace::new())
    }

    /// [`DenseLayer::backward`] staging every intermediate (weight/bias
    /// gradient scratch and the returned input gradient) in a
    /// [`Workspace`]. Both parameter-gradient products run on the blocked
    /// GEMM core.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward pass.
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("dense backward before forward");
        let mut gw = ws.acquire_uninit([self.in_features(), self.out_features()]);
        ops::matmul_tn_into_ws(x, grad_out, &mut gw, ws);
        self.weight.grad.add_assign(&gw);
        ws.release(gw);
        let mut gb = ws.acquire_uninit([self.out_features()]);
        ops::column_sums_into(grad_out, &mut gb);
        self.bias.grad.add_assign(&gb);
        ws.release(gb);
        let mut gin = ws.acquire_uninit([grad_out.shape().dim(0), self.in_features()]);
        ops::matmul_nt_into_ws(grad_out, &self.weight.value, &mut gin, ws);
        gin
    }

    /// The layer's trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    /// Visits the layer's trainable parameters in [`DenseLayer::params_mut`]
    /// order without materializing a `Vec`.
    pub fn visit_params_mut(&mut self, f: &mut impl FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    /// Drops cached activations (used between training runs).
    pub fn clear_cache(&mut self) {
        self.cached_input = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_tensor::assert_close;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_known_values() {
        let w = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3], vec![0.1, 0.2, 0.3]);
        let mut layer = DenseLayer::from_params(w, b);
        let x = Tensor::from_vec([1, 2], vec![1., 1.]);
        let y = layer.forward(&x, false);
        assert_close(y.data(), &[5.1, 7.2, 9.3], 1e-5);
    }

    #[test]
    fn gradient_check() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut layer = DenseLayer::new(4, 3, &mut rng);
        let x = Tensor::randn([2, 4], 1.0, &mut rng);
        // L = 0.5 * ||y||^2 -> dL/dy = y.
        let y = layer.forward(&x, true);
        let gin = layer.backward(&y);
        let eps = 1e-2;
        // Check weight gradient entries.
        for idx in [0usize, 5, 11] {
            let orig = layer.weight.value[idx];
            layer.weight.value[idx] = orig + eps;
            let lp = layer.forward(&x, false).sq_norm() * 0.5;
            layer.weight.value[idx] = orig - eps;
            let lm = layer.forward(&x, false).sq_norm() * 0.5;
            layer.weight.value[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = layer.weight.grad[idx];
            assert!(
                (numeric - analytic).abs() / (1.0 + analytic.abs()) < 5e-2,
                "weight grad mismatch at {idx}: {numeric} vs {analytic}"
            );
        }
        // Check input gradient via directional derivative.
        let mut x2 = x.clone();
        let dir = Tensor::randn([2, 4], 1.0, &mut rng);
        x2.axpy(eps, &dir);
        let lp = layer.forward(&x2, false).sq_norm() * 0.5;
        let mut x3 = x.clone();
        x3.axpy(-eps, &dir);
        let lm = layer.forward(&x3, false).sq_norm() * 0.5;
        let numeric = (lp - lm) / (2.0 * eps);
        let analytic: f32 = gin.data().iter().zip(dir.data()).map(|(g, d)| g * d).sum();
        assert!(
            (numeric - analytic).abs() / (1.0 + analytic.abs()) < 5e-2,
            "input grad mismatch: {numeric} vs {analytic}"
        );
    }

    #[test]
    fn grads_accumulate_across_calls() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = DenseLayer::new(2, 2, &mut rng);
        let x = Tensor::ones([1, 2]);
        let g = Tensor::ones([1, 2]);
        layer.forward(&x, true);
        layer.backward(&g);
        let after_one = layer.bias.grad.sum();
        layer.forward(&x, true);
        layer.backward(&g);
        assert!((layer.bias.grad.sum() - 2.0 * after_one).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = DenseLayer::new(2, 2, &mut rng);
        layer.backward(&Tensor::ones([1, 2]));
    }
}

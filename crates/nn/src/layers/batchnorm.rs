//! Batch normalization (Ioffe & Szegedy), used by the paper during all
//! training (§3).
//!
//! One implementation covers both layouts the networks need:
//!
//! * [`BnLayout::Spatial`] — per-channel statistics over `[N, C, H, W]`
//!   (convolutional layers);
//! * [`BnLayout::Flat`] — per-feature statistics over `[N, F]`
//!   (dense layers).
//!
//! In `Train` mode batch statistics are used and running statistics updated;
//! in `Eval` mode the frozen running statistics are used, which is what makes
//! the deepening morphism *exactly* function-preserving (see
//! [`BatchNorm::identity`]).

use mn_tensor::chunking::for_each_chunk;
use mn_tensor::{Tensor, Workspace};

use crate::layer::Param;

/// Below this many elements the backward loops run on the calling thread.
const PARALLEL_ELEMENT_THRESHOLD: usize = 16 * 1024;

/// Which axis grouping the statistics are computed over.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BnLayout {
    /// `[N, C, H, W]`: statistics per channel over `N·H·W` elements.
    Spatial,
    /// `[N, F]`: statistics per feature over `N` elements.
    Flat,
}

#[derive(Clone, Debug)]
struct BnCache {
    xhat: Tensor,
    inv_std: Tensor,
    m: usize,
}

/// A batch-normalization layer.
#[derive(Clone, Debug)]
pub struct BatchNorm {
    /// Learnable scale `[C]`.
    pub gamma: Param,
    /// Learnable shift `[C]`.
    pub beta: Param,
    /// Running mean `[C]`, updated in training, used in eval.
    pub running_mean: Tensor,
    /// Running (biased) variance `[C]`.
    pub running_var: Tensor,
    /// Exponential-moving-average coefficient for running statistics.
    pub momentum: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    layout: BnLayout,
    // Boxed: the cache holds two tensors and would otherwise dominate the
    // size of every `LayerNode`.
    cache: Option<Box<BnCache>>,
}

impl BatchNorm {
    /// Creates a batch-norm layer with `gamma = 1`, `beta = 0` and unit
    /// running variance.
    pub fn new(channels: usize, layout: BnLayout) -> Self {
        BatchNorm {
            gamma: Param::new(Tensor::ones([channels])),
            beta: Param::new(Tensor::zeros([channels])),
            running_mean: Tensor::zeros([channels]),
            running_var: Tensor::ones([channels]),
            momentum: 0.9,
            eps: 1e-5,
            layout,
            cache: None,
        }
    }

    /// Creates a batch-norm layer that is an *exact* identity in eval mode:
    /// `running_var` is set to `1 − eps` so that
    /// `gamma · (x − 0)/√(var + eps) + 0 = x` holds bit-for-bit-close.
    ///
    /// This is the deepening morphism's building block.
    pub fn identity(channels: usize, layout: BnLayout) -> Self {
        let mut bn = BatchNorm::new(channels, layout);
        bn.running_var = Tensor::filled([channels], 1.0 - bn.eps);
        bn
    }

    /// Number of normalized channels/features.
    pub fn channels(&self) -> usize {
        self.gamma.value.len()
    }

    /// The statistics layout.
    pub fn layout(&self) -> BnLayout {
        self.layout
    }

    fn group_geometry(&self, x: &Tensor) -> (usize, usize, usize) {
        // Returns (n_batch, channels, inner) where inner = H*W or 1.
        match self.layout {
            BnLayout::Spatial => {
                let d = x.shape().dims();
                assert_eq!(
                    d.len(),
                    4,
                    "spatial batch-norm needs [N,C,H,W], got {}",
                    x.shape()
                );
                assert_eq!(d[1], self.channels(), "channel mismatch");
                (d[0], d[1], d[2] * d[3])
            }
            BnLayout::Flat => {
                let d = x.shape().dims();
                assert_eq!(d.len(), 2, "flat batch-norm needs [N,F], got {}", x.shape());
                assert_eq!(d[1], self.channels(), "feature mismatch");
                (d[0], d[1], 1)
            }
        }
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics on layout mismatch, or in train mode if the per-channel
    /// element count is < 2 (batch statistics undefined).
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_ws(x, train, &mut Workspace::new())
    }

    /// [`BatchNorm::forward`] staging its output — and in train mode the
    /// statistics scratch and `x̂`/inv-std caches — in a [`Workspace`], so
    /// steady-state training steps reuse every buffer.
    ///
    /// # Panics
    ///
    /// Same conditions as [`BatchNorm::forward`].
    pub fn forward_ws(&mut self, x: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        let (nb, cc, inner) = self.group_geometry(x);
        let m = nb * inner;
        if train {
            let mut y = ws.acquire_uninit(x.shape().dims());
            assert!(
                m >= 2,
                "batch-norm needs >= 2 elements per channel in train mode"
            );
            // Recycle the previous step's cache buffers through the pool.
            if let Some(old) = self.cache.take() {
                ws.release(old.xhat);
                ws.release(old.inv_std);
            }
            let mut mean_t = ws.acquire([cc]);
            let mut var_t = ws.acquire([cc]);
            let mean = mean_t.data_mut();
            let var = var_t.data_mut();
            let xd = x.data();
            for n in 0..nb {
                for (c, m) in mean.iter_mut().enumerate() {
                    let base = (n * cc + c) * inner;
                    let s: f32 = xd[base..base + inner].iter().sum();
                    *m += s;
                }
            }
            let inv_m = 1.0 / m as f32;
            mean.iter_mut().for_each(|v| *v *= inv_m);
            for n in 0..nb {
                for (c, v) in var.iter_mut().enumerate() {
                    let base = (n * cc + c) * inner;
                    let mu = mean[c];
                    let s: f32 = xd[base..base + inner]
                        .iter()
                        .map(|v| (v - mu) * (v - mu))
                        .sum();
                    *v += s;
                }
            }
            var.iter_mut().for_each(|v| *v *= inv_m);

            let mut inv_std = ws.acquire_uninit([cc]);
            for (o, &v) in inv_std.data_mut().iter_mut().zip(var.iter()) {
                *o = 1.0 / (v + self.eps).sqrt();
            }
            let mut xhat = ws.acquire_uninit(x.shape().dims());
            {
                let isd = inv_std.data();
                let xh = xhat.data_mut();
                let yd = y.data_mut();
                let g = self.gamma.value.data();
                let b = self.beta.value.data();
                for n in 0..nb {
                    for c in 0..cc {
                        let base = (n * cc + c) * inner;
                        let mu = mean[c];
                        let is = isd[c];
                        for i in base..base + inner {
                            let h = (xd[i] - mu) * is;
                            xh[i] = h;
                            yd[i] = g[c] * h + b[c];
                        }
                    }
                }
            }
            // Update running statistics.
            {
                let rm = self.running_mean.data_mut();
                let rv = self.running_var.data_mut();
                for c in 0..cc {
                    rm[c] = self.momentum * rm[c] + (1.0 - self.momentum) * mean[c];
                    rv[c] = self.momentum * rv[c] + (1.0 - self.momentum) * var[c];
                }
            }
            ws.release(mean_t);
            ws.release(var_t);
            self.cache = Some(Box::new(BnCache { xhat, inv_std, m }));
            y
        } else {
            self.forward_eval_ws(x, ws)
        }
    }

    /// Eval-mode forward through shared access only: normalizes with the
    /// frozen running statistics and writes nothing back into the layer,
    /// so many serving sessions can share one set of statistics. The
    /// inv-std scratch is staged in the workspace.
    // mn-lint: hot-path
    pub fn forward_eval_ws(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let (nb, cc, inner) = self.group_geometry(x);
        let mut y = ws.acquire_uninit(x.shape().dims());
        let mut inv_std = ws.acquire_uninit([cc]);
        for (o, &v) in inv_std.data_mut().iter_mut().zip(self.running_var.data()) {
            *o = 1.0 / (v + self.eps).sqrt();
        }
        {
            let xd = x.data();
            let yd = y.data_mut();
            let g = self.gamma.value.data();
            let b = self.beta.value.data();
            let rm = self.running_mean.data();
            let isd = inv_std.data();
            for n in 0..nb {
                for c in 0..cc {
                    let base = (n * cc + c) * inner;
                    let mu = rm[c];
                    let is = isd[c];
                    for i in base..base + inner {
                        yd[i] = g[c] * (xd[i] - mu) * is + b[c];
                    }
                }
            }
        }
        ws.release(inv_std);
        y
    }

    /// Backward pass (train-mode statistics); returns the gradient w.r.t.
    /// the input and accumulates `gamma`/`beta` gradients.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_ws(grad_out, &mut Workspace::new())
    }

    /// [`BatchNorm::backward`] staging its scratch and output in a
    /// [`Workspace`]. Both batch loops fan out through the shared chunk
    /// dispatcher: the per-channel `dγ`/`dβ` reduction splits over
    /// channels (each worker owns one channel's pair and scans the batch
    /// in order), the input-gradient loop over batch items — so results
    /// are bitwise identical across thread counts.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward pass.
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("batch-norm backward before forward");
        let (nb, cc, inner) = self.group_geometry(grad_out);
        let m = cache.m as f32;
        let gd = grad_out.data();
        let xh = cache.xhat.data();
        let worthwhile = nb * cc * inner >= PARALLEL_ELEMENT_THRESHOLD;

        // stats[c] = (dgamma_c, dbeta_c): one interleaved buffer so the
        // per-channel split stays a single chunked dispatch.
        let mut stats = ws.acquire_uninit([cc.max(1), 2]);
        for_each_chunk(&mut stats.data_mut()[..2 * cc], 2, worthwhile, |c, s| {
            let (mut dg, mut db) = (0.0f32, 0.0f32);
            for n in 0..nb {
                let base = (n * cc + c) * inner;
                for i in base..base + inner {
                    dg += gd[i] * xh[i];
                    db += gd[i];
                }
            }
            s[0] = dg;
            s[1] = db;
        });
        let sd = stats.data();
        {
            let gg = self.gamma.grad.data_mut();
            let gb = self.beta.grad.data_mut();
            for c in 0..cc {
                gg[c] += sd[2 * c];
                gb[c] += sd[2 * c + 1];
            }
        }
        let mut gin = ws.acquire_uninit(grad_out.shape().dims());
        {
            let g = self.gamma.value.data();
            let isd = cache.inv_std.data();
            for_each_chunk(gin.data_mut(), cc * inner, worthwhile, |n, gchunk| {
                for c in 0..cc {
                    let base = (n * cc + c) * inner;
                    let coeff = g[c] * isd[c] / m;
                    let (dg, db) = (sd[2 * c], sd[2 * c + 1]);
                    for (o, i) in gchunk[c * inner..(c + 1) * inner]
                        .iter_mut()
                        .zip(base..base + inner)
                    {
                        *o = coeff * (m * gd[i] - db - xh[i] * dg);
                    }
                }
            });
        }
        ws.release(stats);
        gin
    }

    /// The layer's trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    /// Visits the layer's trainable parameters in [`BatchNorm::params_mut`]
    /// order without materializing a `Vec`.
    pub fn visit_params_mut(&mut self, f: &mut impl FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    /// Drops cached activations.
    pub fn clear_cache(&mut self) {
        self.cache = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_tensor::assert_close;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn train_mode_normalizes_batch() {
        let mut bn = BatchNorm::new(2, BnLayout::Flat);
        let x = Tensor::from_vec([4, 2], vec![1., 10., 2., 20., 3., 30., 4., 40.]);
        let y = bn.forward(&x, true);
        // Per-feature mean ~0, var ~1 after normalization.
        for c in 0..2 {
            let col: Vec<f32> = (0..4).map(|n| y.at2(n, c)).collect();
            let mean: f32 = col.iter().sum::<f32>() / 4.0;
            let var: f32 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn identity_is_exact_in_eval() {
        let mut bn = BatchNorm::identity(3, BnLayout::Spatial);
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::randn([2, 3, 4, 4], 1.0, &mut rng);
        let y = bn.forward(&x, false);
        assert_close(y.data(), x.data(), 1e-6);
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm::new(1, BnLayout::Flat);
        bn.running_mean = Tensor::from_vec([1], vec![5.0]);
        bn.running_var = Tensor::from_vec([1], vec![4.0]);
        let x = Tensor::from_vec([1, 1], vec![9.0]);
        let y = bn.forward(&x, false);
        // (9 - 5)/2 = 2.
        assert!((y[0] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn running_stats_update_toward_batch() {
        let mut bn = BatchNorm::new(1, BnLayout::Flat);
        let x = Tensor::from_vec([2, 1], vec![10.0, 10.0]);
        bn.forward(&x, true);
        // mean moves from 0 toward 10 by (1 - momentum).
        assert!((bn.running_mean[0] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn gradient_check_spatial() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut bn = BatchNorm::new(2, BnLayout::Spatial);
        bn.gamma.value = Tensor::from_vec([2], vec![1.5, 0.5]);
        bn.beta.value = Tensor::from_vec([2], vec![0.1, -0.2]);
        let x = Tensor::randn([2, 2, 3, 3], 1.0, &mut rng);
        let y = bn.forward(&x, true);
        let gin = bn.backward(&y); // L = 0.5||y||^2
        let eps = 1e-2;
        let loss = |bn: &mut BatchNorm, x: &Tensor| bn.forward(x, true).sq_norm() * 0.5;
        let dir = Tensor::randn([2, 2, 3, 3], 1.0, &mut rng);
        let mut xp = x.clone();
        xp.axpy(eps, &dir);
        let lp = loss(&mut bn.clone(), &xp);
        let mut xm = x.clone();
        xm.axpy(-eps, &dir);
        let lm = loss(&mut bn.clone(), &xm);
        let numeric = (lp - lm) / (2.0 * eps);
        let analytic: f32 = gin.data().iter().zip(dir.data()).map(|(g, d)| g * d).sum();
        assert!(
            (numeric - analytic).abs() / (1.0 + analytic.abs()) < 5e-2,
            "{numeric} vs {analytic}"
        );
    }

    #[test]
    fn gamma_beta_gradients() {
        let mut bn = BatchNorm::new(1, BnLayout::Flat);
        let x = Tensor::from_vec([2, 1], vec![1.0, 3.0]);
        let y = bn.forward(&x, true);
        let g = Tensor::ones([2, 1]);
        bn.backward(&g);
        // dbeta = sum g = 2; dgamma = sum(g * xhat) = xhat sums to 0.
        assert!((bn.beta.grad[0] - 2.0).abs() < 1e-5);
        assert!(bn.gamma.grad[0].abs() < 1e-4);
        let _ = y;
    }

    #[test]
    #[should_panic(expected = ">= 2 elements")]
    fn train_rejects_single_element() {
        let mut bn = BatchNorm::new(1, BnLayout::Flat);
        bn.forward(&Tensor::ones([1, 1]), true);
    }
}

//! Residual units (He et al.), the building block of the paper's ResNet
//! ensembles (§3, "ResNets").

use mn_tensor::{Tensor, Workspace};
use rand::Rng;

use crate::layer::Param;
use crate::layers::activation::ReluLayer;
use crate::layers::batchnorm::{BatchNorm, BnLayout};
use crate::layers::conv::ConvLayer;

/// A two-convolution residual unit with an identity skip connection:
///
/// ```text
/// out = ReLU( BN2(Conv2( ReLU(BN1(Conv1(x))) )) + x )
/// ```
///
/// Input and output channel counts are equal (`filters`); the surrounding
/// network inserts a 1×1 projection when a stage changes width.
///
/// A unit whose second convolution is all-zero is an *identity map* (the
/// branch contributes nothing and the inputs are post-ReLU, hence
/// non-negative) — this is how the deepening morphism adds depth to
/// residual networks. See [`ResidualUnit::identity`].
#[derive(Clone, Debug)]
pub struct ResidualUnit {
    /// First convolution of the branch.
    pub conv1: ConvLayer,
    /// Batch norm after the first convolution.
    pub bn1: BatchNorm,
    relu1: ReluLayer,
    /// Second convolution of the branch.
    pub conv2: ConvLayer,
    /// Batch norm after the second convolution.
    pub bn2: BatchNorm,
    relu_out: ReluLayer,
}

impl ResidualUnit {
    /// Creates a randomly initialized residual unit of the given width and
    /// kernel size.
    pub fn new<R: Rng>(filters: usize, kernel: usize, rng: &mut R) -> Self {
        ResidualUnit {
            conv1: ConvLayer::new(filters, filters, kernel, rng),
            bn1: BatchNorm::new(filters, BnLayout::Spatial),
            relu1: ReluLayer::new(),
            conv2: ConvLayer::new(filters, filters, kernel, rng),
            bn2: BatchNorm::new(filters, BnLayout::Spatial),
            relu_out: ReluLayer::new(),
        }
    }

    /// Creates a residual unit whose convolutions are all-zero — no RNG
    /// cost; the cold-start construction path for checkpoint restore,
    /// where every value is immediately overwritten anyway.
    pub fn zeroed(filters: usize, kernel: usize) -> Self {
        ResidualUnit::from_parts(
            ConvLayer::zeroed(filters, filters, kernel),
            BatchNorm::new(filters, BnLayout::Spatial),
            ConvLayer::zeroed(filters, filters, kernel),
            BatchNorm::new(filters, BnLayout::Spatial),
        )
    }

    /// Creates a residual unit that computes the identity function:
    /// `conv1` is randomly initialized (so the unit can learn once trained)
    /// but `conv2` is all-zero and `bn2` is the exact-identity batch norm,
    /// so the branch contributes nothing.
    pub fn identity<R: Rng>(filters: usize, kernel: usize, rng: &mut R) -> Self {
        let mut unit = ResidualUnit::new(filters, kernel, rng);
        unit.conv2.weight.value.fill_zero();
        unit.conv2.bias.value.fill_zero();
        unit.bn2 = BatchNorm::identity(filters, BnLayout::Spatial);
        unit
    }

    /// Assembles a residual unit from explicit sub-layers — the constructor
    /// used by the morphism engine when transferring MotherNet weights.
    ///
    /// # Panics
    ///
    /// Panics if the sub-layers' widths are inconsistent.
    pub fn from_parts(conv1: ConvLayer, bn1: BatchNorm, conv2: ConvLayer, bn2: BatchNorm) -> Self {
        let f = conv1.filters();
        assert_eq!(conv1.in_channels(), f, "residual conv1 must be square");
        assert_eq!(
            conv2.in_channels(),
            f,
            "residual conv2 input width mismatch"
        );
        assert_eq!(conv2.filters(), f, "residual conv2 output width mismatch");
        assert_eq!(bn1.channels(), f, "residual bn1 width mismatch");
        assert_eq!(bn2.channels(), f, "residual bn2 width mismatch");
        ResidualUnit {
            conv1,
            bn1,
            relu1: ReluLayer::new(),
            conv2,
            bn2,
            relu_out: ReluLayer::new(),
        }
    }

    /// Channel width of the unit.
    pub fn filters(&self) -> usize {
        self.conv1.filters()
    }

    /// Kernel extent of the unit's convolutions.
    pub fn kernel(&self) -> usize {
        self.conv1.kernel()
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if the input channel count does not match the unit width.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_ws(x, train, &mut Workspace::new())
    }

    /// [`ResidualUnit::forward`] threading a [`Workspace`] through the
    /// branch; intermediate activations are recycled as they die.
    ///
    /// # Panics
    ///
    /// Panics if the input channel count does not match the unit width.
    pub fn forward_ws(&mut self, x: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        if !train {
            return self.forward_eval_ws(x, ws);
        }
        assert_eq!(
            x.shape().dim(1),
            self.filters(),
            "residual unit width {} does not match input channels {}",
            self.filters(),
            x.shape().dim(1)
        );
        let h1 = self.conv1.forward_ws(x, train, ws);
        let h2 = self.bn1.forward_ws(&h1, train, ws);
        ws.release(h1);
        let h3 = self.relu1.forward_ws(&h2, train, ws);
        ws.release(h2);
        let h4 = self.conv2.forward_ws(&h3, train, ws);
        ws.release(h3);
        let mut s = self.bn2.forward_ws(&h4, train, ws);
        ws.release(h4);
        s.add_assign(x);
        let out = self.relu_out.forward_ws(&s, train, ws);
        ws.release(s);
        out
    }

    /// Eval-mode forward through shared access only, composing the
    /// sub-layers' shared eval forwards — many serving sessions can share
    /// one unit's weights.
    ///
    /// # Panics
    ///
    /// Panics if the input channel count does not match the unit width.
    // mn-lint: hot-path
    pub fn forward_eval_ws(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        assert_eq!(
            x.shape().dim(1),
            self.filters(),
            "residual unit width {} does not match input channels {}",
            self.filters(),
            x.shape().dim(1)
        );
        let h1 = self.conv1.forward_eval_ws(x, ws);
        let h2 = self.bn1.forward_eval_ws(&h1, ws);
        ws.release(h1);
        let h3 = self.relu1.forward_eval_ws(&h2, ws);
        ws.release(h2);
        let h4 = self.conv2.forward_eval_ws(&h3, ws);
        ws.release(h3);
        let mut s = self.bn2.forward_eval_ws(&h4, ws);
        ws.release(h4);
        s.add_assign(x);
        let out = self.relu_out.forward_eval_ws(&s, ws);
        ws.release(s);
        out
    }

    /// Backward pass through both the branch and the skip connection.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_ws(grad_out, &mut Workspace::new())
    }

    /// [`ResidualUnit::backward`] threading a [`Workspace`] through the
    /// branch; intermediate gradients are recycled as they die.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward pass.
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let gs = self.relu_out.backward_ws(grad_out, ws);
        let g1 = self.bn2.backward_ws(&gs, ws);
        let g2 = self.conv2.backward_ws(&g1, ws);
        ws.release(g1);
        let g3 = self.relu1.backward_ws(&g2, ws);
        ws.release(g2);
        let g4 = self.bn1.backward_ws(&g3, ws);
        ws.release(g3);
        let mut gin = self.conv1.backward_ws(&g4, ws);
        ws.release(g4);
        gin.add_assign(&gs); // skip path
        ws.release(gs);
        gin
    }

    /// The unit's trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.conv1.params_mut();
        p.extend(self.bn1.params_mut());
        p.extend(self.conv2.params_mut());
        p.extend(self.bn2.params_mut());
        p
    }

    /// Visits the unit's trainable parameters in
    /// [`ResidualUnit::params_mut`] order without materializing a `Vec`,
    /// delegating to each sub-layer's visitor so the two orders cannot
    /// drift apart independently.
    pub fn visit_params_mut(&mut self, f: &mut impl FnMut(&mut Param)) {
        self.conv1.visit_params_mut(f);
        self.bn1.visit_params_mut(f);
        self.conv2.visit_params_mut(f);
        self.bn2.visit_params_mut(f);
    }

    /// Drops cached activations.
    pub fn clear_cache(&mut self) {
        self.conv1.clear_cache();
        self.bn1.clear_cache();
        self.relu1.clear_cache();
        self.conv2.clear_cache();
        self.bn2.clear_cache();
        self.relu_out.clear_cache();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_tensor::assert_close;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_unit_preserves_nonnegative_input_eval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut unit = ResidualUnit::identity(3, 3, &mut rng);
        // Post-ReLU inputs are non-negative.
        let x = Tensor::randn([2, 3, 4, 4], 1.0, &mut rng).map(|v| v.max(0.0));
        let y = unit.forward(&x, false);
        assert_close(y.data(), x.data(), 1e-5);
    }

    #[test]
    fn identity_unit_preserves_in_train_mode_too() {
        // conv2 is all-zero, so the branch is exactly zero regardless of
        // batch statistics.
        let mut rng = StdRng::seed_from_u64(2);
        let mut unit = ResidualUnit::identity(2, 3, &mut rng);
        let x = Tensor::randn([4, 2, 4, 4], 1.0, &mut rng).map(|v| v.max(0.0));
        let y = unit.forward(&x, true);
        assert_close(y.data(), x.data(), 1e-5);
    }

    #[test]
    fn forward_shape_preserved() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut unit = ResidualUnit::new(4, 3, &mut rng);
        let x = Tensor::randn([2, 4, 5, 5], 1.0, &mut rng);
        let y = unit.forward(&x, false);
        assert_eq!(y.shape().dims(), x.shape().dims());
    }

    #[test]
    fn gradient_check() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut unit = ResidualUnit::new(2, 3, &mut rng);
        let x = Tensor::randn([2, 2, 4, 4], 1.0, &mut rng);
        let y = unit.forward(&x, true);
        let gin = unit.backward(&y); // L = 0.5||y||^2 in train mode
                                     // Small enough that no ReLU kink-crossing band inflates the
                                     // central difference, large enough for f32 cancellation.
        let eps = 2e-3;
        let dir = Tensor::randn([2, 2, 4, 4], 1.0, &mut rng);
        let mut xp = x.clone();
        xp.axpy(eps, &dir);
        let lp = unit.clone().forward(&xp, true).sq_norm() * 0.5;
        let mut xm = x.clone();
        xm.axpy(-eps, &dir);
        let lm = unit.clone().forward(&xm, true).sq_norm() * 0.5;
        let numeric = (lp - lm) / (2.0 * eps);
        let analytic: f32 = gin.data().iter().zip(dir.data()).map(|(g, d)| g * d).sum();
        assert!(
            (numeric - analytic).abs() / (1.0 + analytic.abs()) < 8e-2,
            "{numeric} vs {analytic}"
        );
    }

    #[test]
    #[should_panic(expected = "does not match input channels")]
    fn width_mismatch_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut unit = ResidualUnit::new(4, 3, &mut rng);
        unit.forward(&Tensor::ones([1, 3, 4, 4]), false);
    }

    #[test]
    fn param_count_matches_arch_formula() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut unit = ResidualUnit::new(4, 3, &mut rng);
        let count: usize = unit.params_mut().iter().map(|p| p.len()).sum();
        // 2 convs (4*4*9+4) + 2 BNs (2*4).
        assert_eq!(count, 2 * (4 * 4 * 9 + 4) + 2 * 8);
    }
}

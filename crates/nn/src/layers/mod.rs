//! The layer zoo: every trainable and structural layer used by the paper's
//! networks, each with an exact forward/backward pair.

pub mod activation;
pub mod batchnorm;
pub mod conv;
pub mod dense;
pub mod residual;
pub mod spatial;

pub use activation::ReluLayer;
pub use batchnorm::{BatchNorm, BnLayout};
pub use conv::{ConvFormulation, ConvLayer};
pub use dense::DenseLayer;
pub use residual::ResidualUnit;
pub use spatial::{FlattenLayer, GlobalAvgPoolLayer, MaxPoolLayer};

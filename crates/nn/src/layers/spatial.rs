//! Spatial reshaping layers: max pooling, global average pooling, flatten.

use mn_tensor::{pool, Tensor, Workspace};

/// 2×2 stride-2 max pooling — the block separator of the paper's VGG- and
/// ResNet-style architectures.
#[derive(Clone, Debug, Default)]
pub struct MaxPoolLayer {
    argmax: Option<Vec<usize>>,
    input_shape: Option<Vec<usize>>,
}

impl MaxPoolLayer {
    /// Creates a max-pool layer.
    pub fn new() -> Self {
        MaxPoolLayer {
            argmax: None,
            input_shape: None,
        }
    }

    /// Forward pass; caches routing information when `train` is set.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_ws(x, train, &mut Workspace::new())
    }

    /// [`MaxPoolLayer::forward`] staging its output in a [`Workspace`].
    ///
    /// In eval mode the argmax bookkeeping (only needed for backward) is
    /// skipped entirely; in train mode the argmax buffer's allocation is
    /// reused across steps.
    pub fn forward_ws(&mut self, x: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        if !train {
            return self.forward_eval_ws(x, ws);
        }
        let d = x.shape().dims();
        let mut out = ws.acquire_uninit([d[0], d[1], d[2] / 2, d[3] / 2]);
        let mut argmax = self.argmax.take().unwrap_or_default();
        pool::maxpool2x2_forward_into(x, &mut out, &mut argmax);
        self.argmax = Some(argmax);
        match &mut self.input_shape {
            Some(s) => {
                s.clear();
                s.extend_from_slice(d);
            }
            None => self.input_shape = Some(d.to_vec()),
        }
        out
    }

    /// Eval-mode forward through shared access only (no argmax routing is
    /// recorded), so many serving sessions can share one layer.
    // mn-lint: hot-path
    pub fn forward_eval_ws(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let d = x.shape().dims();
        let mut out = ws.acquire_uninit([d[0], d[1], d[2] / 2, d[3] / 2]);
        pool::maxpool2x2_forward_eval_into(x, &mut out);
        out
    }

    /// Backward pass: routes gradients to the argmax positions.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_ws(grad_out, &mut Workspace::new())
    }

    /// [`MaxPoolLayer::backward`] staging its output in a [`Workspace`].
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward pass.
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let argmax = self
            .argmax
            .as_ref()
            .expect("maxpool backward before forward");
        let shape = self
            .input_shape
            .as_ref()
            .expect("maxpool backward before forward");
        let mut gin = ws.acquire_uninit(shape.as_slice());
        pool::maxpool2x2_backward_into(grad_out, argmax, &mut gin);
        gin
    }

    /// Drops cached activations.
    pub fn clear_cache(&mut self) {
        self.argmax = None;
        self.input_shape = None;
    }
}

/// Global average pooling `[N, C, H, W] → [N, C]` — the ResNet-style head.
#[derive(Clone, Debug, Default)]
pub struct GlobalAvgPoolLayer {
    input_shape: Option<Vec<usize>>,
}

impl GlobalAvgPoolLayer {
    /// Creates a global-average-pool layer.
    pub fn new() -> Self {
        GlobalAvgPoolLayer { input_shape: None }
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_ws(x, train, &mut Workspace::new())
    }

    /// [`GlobalAvgPoolLayer::forward`] staging its output in a
    /// [`Workspace`]. The cached shape's allocation is reused across
    /// steps.
    pub fn forward_ws(&mut self, x: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        if train {
            let d = x.shape().dims();
            match &mut self.input_shape {
                Some(s) => {
                    s.clear();
                    s.extend_from_slice(d);
                }
                None => self.input_shape = Some(d.to_vec()),
            }
        }
        self.forward_eval_ws(x, ws)
    }

    /// Eval-mode forward through shared access only (no input shape is
    /// recorded), so many serving sessions can share one layer.
    // mn-lint: hot-path
    pub fn forward_eval_ws(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let d = x.shape().dims();
        let mut out = ws.acquire_uninit([d[0], d[1]]);
        pool::global_avg_pool_forward_into(x, &mut out);
        out
    }

    /// Backward pass.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_ws(grad_out, &mut Workspace::new())
    }

    /// [`GlobalAvgPoolLayer::backward`] staging its output in a
    /// [`Workspace`].
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward pass.
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let shape = self
            .input_shape
            .as_ref()
            .expect("gap backward before forward");
        let mut gin = ws.acquire_uninit(shape.as_slice());
        pool::global_avg_pool_backward_into(grad_out, &mut gin);
        gin
    }

    /// Drops cached activations.
    pub fn clear_cache(&mut self) {
        self.input_shape = None;
    }
}

/// Flattens `[N, C, H, W] → [N, C·H·W]` between the convolutional body and
/// the dense head.
#[derive(Clone, Debug, Default)]
pub struct FlattenLayer {
    input_shape: Option<Vec<usize>>,
}

impl FlattenLayer {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        FlattenLayer { input_shape: None }
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if the input is not 4-D.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let d = x.shape().dims();
        assert_eq!(d.len(), 4, "flatten expects [N,C,H,W], got {}", x.shape());
        if train {
            self.input_shape = Some(d.to_vec());
        }
        x.reshape([d[0], d[1] * d[2] * d[3]])
    }

    /// [`FlattenLayer::forward`] staging its output in a [`Workspace`].
    /// The cached shape's allocation is reused across steps.
    ///
    /// # Panics
    ///
    /// Panics if the input is not 4-D.
    pub fn forward_ws(&mut self, x: &Tensor, train: bool, ws: &mut Workspace) -> Tensor {
        if train {
            let d = x.shape().dims();
            assert_eq!(d.len(), 4, "flatten expects [N,C,H,W], got {}", x.shape());
            match &mut self.input_shape {
                Some(s) => {
                    s.clear();
                    s.extend_from_slice(d);
                }
                None => self.input_shape = Some(d.to_vec()),
            }
        }
        self.forward_eval_ws(x, ws)
    }

    /// Eval-mode forward through shared access only (no input shape is
    /// recorded), so many serving sessions can share one layer.
    ///
    /// # Panics
    ///
    /// Panics if the input is not 4-D.
    // mn-lint: hot-path
    pub fn forward_eval_ws(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let d = x.shape().dims();
        assert_eq!(d.len(), 4, "flatten expects [N,C,H,W], got {}", x.shape());
        let mut out = ws.acquire_uninit([d[0], d[1] * d[2] * d[3]]);
        out.data_mut().copy_from_slice(x.data());
        out
    }

    /// Backward pass: un-flattens the gradient.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_ws(grad_out, &mut Workspace::new())
    }

    /// [`FlattenLayer::backward`] staging its output in a [`Workspace`].
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode forward pass.
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let shape = self
            .input_shape
            .as_ref()
            .expect("flatten backward before forward");
        let mut gin = ws.acquire_uninit(shape.as_slice());
        gin.data_mut().copy_from_slice(grad_out.data());
        gin
    }

    /// Drops cached activations.
    pub fn clear_cache(&mut self) {
        self.input_shape = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_roundtrip() {
        let mut mp = MaxPoolLayer::new();
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let y = mp.forward(&x, true);
        assert_eq!(y.data(), &[4.0]);
        let g = mp.backward(&Tensor::from_vec([1, 1, 1, 1], vec![7.0]));
        assert_eq!(g.data(), &[0., 0., 0., 7.]);
    }

    #[test]
    fn gap_roundtrip() {
        let mut gap = GlobalAvgPoolLayer::new();
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let y = gap.forward(&x, true);
        assert_eq!(y.data(), &[2.5]);
        let g = gap.backward(&Tensor::from_vec([1, 1], vec![4.0]));
        assert_eq!(g.data(), &[1., 1., 1., 1.]);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut fl = FlattenLayer::new();
        let x = Tensor::from_vec([2, 1, 2, 2], (0..8).map(|v| v as f32).collect());
        let y = fl.forward(&x, true);
        assert_eq!(y.shape().dims(), &[2, 4]);
        let g = fl.backward(&y);
        assert_eq!(g.shape().dims(), &[2, 1, 2, 2]);
        assert_eq!(g.data(), x.data());
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn flatten_backward_requires_forward() {
        FlattenLayer::new().backward(&Tensor::ones([1, 4]));
    }
}

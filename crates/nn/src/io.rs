//! Network checkpointing: weight blobs (full- and low-precision) and
//! self-describing checkpoints.
//!
//! Three formats live here, all little-endian and all closed by a `u32`
//! CRC-32 (IEEE) over every preceding byte, verified *before* any tensor
//! is parsed — a bit-flipped weight file fails loudly at load
//! ([`WeightsError::ChecksumMismatch`]) instead of serving garbage (most
//! single-bit flips land in a numeric payload, where structural
//! validation alone cannot see them):
//!
//! * **`MNW1` weight blob** ([`save_weights`] / [`load_weights`]) —
//!   every persistent tensor of a network (trainable parameters *and*
//!   batch-norm running statistics) at full `f32` precision, restorable
//!   into a structurally identical network. Layout: magic `MNW1`, `u32`
//!   tensor count, then per tensor a `u32` element count followed by
//!   that many `f32` values, then the CRC.
//! * **`MNQ1` quantized weight blob** ([`save_weights_quantized`]) — the
//!   same tensors under a low-precision storage encoding chosen at save
//!   time ([`WeightEncoding`]): IEEE half floats (`f16`, 2 bytes per
//!   element) or symmetric `i8` with a per-tensor scale (1 byte per
//!   element + 4 bytes of scale). Layout: magic `MNQ1`, `u32` tensor
//!   count, then per tensor a `u8` encoding tag, a `u32` element count,
//!   for `i8` the `f32` scale, then the packed payload; closed by the
//!   CRC. [`load_weights`] dispatches on the magic and **dequantizes
//!   back into the network's `f32` tensors**, so everything downstream
//!   (engine plans, trunk sharing, serving) runs unchanged. Non-finite
//!   weights are rejected at *save* time with a typed
//!   [`WeightsError::NonFinite`] (see [`mn_tensor::quant`]).
//! * **Network checkpoint** ([`save_network`] / [`load_network`]) — a
//!   self-describing section pairing the architecture (JSON via serde,
//!   see [`crate::arch::Architecture`]) with one weight blob (either
//!   magic), so a network can be rebuilt from bytes alone. Layout: `u32`
//!   architecture JSON length, the JSON, then the blob to the end. The
//!   `MNE1` ensemble artifact in `mn-ensemble` frames one such section
//!   per member.
//!
//! Serialization needs only shared access ([`save_weights`] takes
//! `&Network` and walks the shared-ref state visitor); restoring mutates
//! and takes `&mut Network`.

use std::fmt;

use bytes::{Buf, BufMut};

use mn_tensor::quant;

use crate::arch::Architecture;
use crate::network::Network;

const MAGIC: &[u8; 4] = b"MNW1";
const MAGIC_QUANT: &[u8; 4] = b"MNQ1";

/// The storage encoding of a weight blob, chosen at save time.
///
/// Loading always dequantizes back into `f32` tensors; the encoding only
/// changes bytes on disk (and therefore artifact size, cold-start copy
/// cost, and cache/transfer footprint), never the serving API.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WeightEncoding {
    /// Full precision — the legacy `MNW1` layout, bit-exact round trip.
    F32,
    /// IEEE 754 binary16: 2 bytes per element, ≤ 2⁻¹¹ relative error for
    /// normal-range weights (0.50x the f32 payload bytes).
    F16,
    /// Symmetric per-tensor `i8`: 1 byte per element plus one `f32`
    /// scale, absolute error ≤ `scale / 2` (0.25x the f32 payload bytes).
    I8,
}

impl WeightEncoding {
    /// The `u8` tag stored per tensor in `MNQ1` blobs.
    fn tag(self) -> u8 {
        match self {
            WeightEncoding::F32 => 0,
            WeightEncoding::F16 => 1,
            WeightEncoding::I8 => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(WeightEncoding::F32),
            1 => Some(WeightEncoding::F16),
            2 => Some(WeightEncoding::I8),
            _ => None,
        }
    }

    /// Human-readable encoding name (`"f32"` / `"f16"` / `"i8"`).
    pub fn label(self) -> &'static str {
        match self {
            WeightEncoding::F32 => "f32",
            WeightEncoding::F16 => "f16",
            WeightEncoding::I8 => "i8",
        }
    }

    /// Payload bytes for an `n`-element tensor under this encoding
    /// (excluding the shared per-tensor framing).
    pub fn payload_bytes(self, n: usize) -> usize {
        match self {
            WeightEncoding::F32 => 4 * n,
            WeightEncoding::F16 => 2 * n,
            WeightEncoding::I8 => 4 + n, // per-tensor scale + codes
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) lookup table,
/// built at compile time — the workspace has no checksum dependency.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the checksum closing `MNW1` weight blobs
/// and `MNE1` ensemble artifacts. Exposed so format-aware tooling (and
/// corruption tests) can recompute it.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Errors when restoring a weight blob or network checkpoint.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WeightsError {
    /// The blob does not start with the expected magic bytes.
    BadMagic,
    /// The blob ended before all tensors were read.
    Truncated,
    /// Tensor count or a tensor's element count does not match the target
    /// network's structure.
    ShapeMismatch {
        /// Human-readable detail.
        detail: String,
    },
    /// Trailing bytes after the last tensor (before the checksum).
    TrailingBytes {
        /// Number of unread bytes.
        count: usize,
    },
    /// The blob's CRC-32 does not match its payload: the bytes were
    /// corrupted (or truncated/extended) since [`save_weights`] wrote
    /// them. Checked before any tensor is parsed.
    ChecksumMismatch {
        /// Checksum stored in the blob.
        expected: u32,
        /// Checksum of the payload as read.
        actual: u32,
    },
    /// A checkpoint's architecture section is not valid JSON, or describes
    /// an architecture that fails validation.
    BadArchitecture {
        /// Human-readable detail.
        detail: String,
    },
    /// A quantized (`MNQ1`) blob carries an encoding tag this build does
    /// not understand.
    BadEncoding {
        /// The unrecognized tag byte.
        tag: u8,
        /// Tensor index carrying it.
        tensor: usize,
    },
    /// A tensor contains NaN or ±Inf and cannot be quantized — raised at
    /// *save* time ([`save_weights_quantized`]), so a corrupt network
    /// fails loudly before bytes ever hit disk.
    NonFinite {
        /// Tensor index within the save order.
        tensor: usize,
        /// Flat element index within that tensor.
        index: usize,
    },
}

impl fmt::Display for WeightsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightsError::BadMagic => write!(f, "not a MNW1 weight blob"),
            WeightsError::Truncated => write!(f, "weight blob ended early"),
            WeightsError::ShapeMismatch { detail } => {
                write!(f, "weight blob does not match network: {detail}")
            }
            WeightsError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after weights")
            }
            WeightsError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "weight blob checksum mismatch: stored {expected:#010x}, computed {actual:#010x}"
                )
            }
            WeightsError::BadArchitecture { detail } => {
                write!(f, "bad architecture section: {detail}")
            }
            WeightsError::BadEncoding { tag, tensor } => {
                write!(f, "tensor {tensor} has unknown weight encoding tag {tag}")
            }
            WeightsError::NonFinite { tensor, index } => {
                write!(
                    f,
                    "tensor {tensor} has a non-finite value at index {index}: cannot quantize"
                )
            }
        }
    }
}

impl std::error::Error for WeightsError {}

/// Serializes all persistent state of `net` into a weight blob.
///
/// Read-only: walks the network's shared-ref state visitor, so a network
/// being served (or borrowed elsewhere) can be checkpointed without `&mut`
/// access and without staging per-tensor copies.
pub fn save_weights(net: &Network) -> Vec<u8> {
    // First pass: size the blob exactly.
    let mut count: u32 = 0;
    let mut payload = 0usize;
    for node in net.nodes() {
        node.visit_state(&mut |t| {
            count += 1;
            payload += 4 + 4 * t.len();
        });
    }
    let mut out = Vec::with_capacity(8 + payload + 4);
    out.put_slice(MAGIC);
    out.put_u32_le(count);
    for node in net.nodes() {
        node.visit_state(&mut |t| {
            out.put_u32_le(t.len() as u32);
            for &v in t.data() {
                out.put_f32_le(v);
            }
        });
    }
    let checksum = crc32(&out);
    out.put_u32_le(checksum);
    out
}

/// Serializes all persistent state of `net` under `encoding`.
///
/// [`WeightEncoding::F32`] delegates to [`save_weights`] — byte-for-byte
/// the legacy `MNW1` blob. `F16` / `I8` write the `MNQ1` layout (see
/// module docs): roughly 0.50x / 0.25x the f32 payload bytes, at the
/// precision cost documented on [`WeightEncoding`]. [`load_weights`]
/// restores either magic transparently.
///
/// # Errors
///
/// [`WeightsError::NonFinite`] when a tensor contains NaN or ±Inf —
/// low-precision encodings cannot represent them faithfully, and a
/// non-finite weight is corrupt regardless, so the save fails loudly
/// instead of burying the problem in an artifact.
pub fn save_weights_quantized(
    net: &Network,
    encoding: WeightEncoding,
) -> Result<Vec<u8>, WeightsError> {
    if encoding == WeightEncoding::F32 {
        return Ok(save_weights(net));
    }
    // First pass: size the blob exactly.
    let mut count: u32 = 0;
    let mut payload = 0usize;
    for node in net.nodes() {
        node.visit_state(&mut |t| {
            count += 1;
            payload += 1 + 4 + encoding.payload_bytes(t.len());
        });
    }
    let mut out = Vec::with_capacity(8 + payload + 4);
    out.put_slice(MAGIC_QUANT);
    out.put_u32_le(count);
    let mut tensor_idx = 0usize;
    let mut bad: Option<WeightsError> = None;
    for node in net.nodes() {
        node.visit_state(&mut |t| {
            if bad.is_some() {
                return;
            }
            out.put_u8(encoding.tag());
            out.put_u32_le(t.len() as u32);
            match encoding {
                WeightEncoding::F32 => unreachable!("handled above"),
                WeightEncoding::F16 => match quant::quantize_f16(t.data()) {
                    Ok(halves) => {
                        for h in halves {
                            out.put_u16_le(h);
                        }
                    }
                    Err(quant::QuantError::NonFinite { index, .. }) => {
                        bad = Some(WeightsError::NonFinite {
                            tensor: tensor_idx,
                            index,
                        });
                    }
                },
                WeightEncoding::I8 => match quant::quantize_i8(t.data()) {
                    Ok((scale, codes)) => {
                        out.put_f32_le(scale);
                        for q in codes {
                            out.put_i8(q);
                        }
                    }
                    Err(quant::QuantError::NonFinite { index, .. }) => {
                        bad = Some(WeightsError::NonFinite {
                            tensor: tensor_idx,
                            index,
                        });
                    }
                },
            }
            tensor_idx += 1;
        });
    }
    if let Some(err) = bad {
        return Err(err);
    }
    let checksum = crc32(&out);
    out.put_u32_le(checksum);
    Ok(out)
}

/// Restores a weight blob — full-precision `MNW1` ([`save_weights`]) or
/// quantized `MNQ1` ([`save_weights_quantized`]), dispatched on the magic
/// — into a structurally identical network. Quantized tensors are
/// dequantized into the network's `f32` storage, so callers never see
/// the encoding.
///
/// # Errors
///
/// Returns a [`WeightsError`] if the blob is malformed or does not match
/// the network's structure. On error the network may be partially updated.
pub fn load_weights(net: &mut Network, blob: &[u8]) -> Result<(), WeightsError> {
    // Header (8) plus trailing checksum (4) is the smallest valid blob.
    if blob.len() < 12 {
        return Err(WeightsError::Truncated);
    }
    let quantized = match &blob[..4] {
        m if m == MAGIC => false,
        m if m == MAGIC_QUANT => true,
        _ => return Err(WeightsError::BadMagic),
    };
    // Verify integrity before parsing a single tensor: corruption inside
    // a numeric payload parses cleanly and would silently poison the
    // network.
    let (payload, stored) = blob.split_at(blob.len() - 4);
    // mn-lint: allow(no-panic-in-serve, reason = "split_at(len - 4) yields exactly a 4-byte tail (the length was bounds-checked above), so the TryInto<[u8; 4]> conversion cannot fail")
    let expected = u32::from_le_bytes(stored.try_into().expect("4-byte checksum"));
    let actual = crc32(payload);
    if expected != actual {
        return Err(WeightsError::ChecksumMismatch { expected, actual });
    }
    let mut blob = &payload[4..];
    let count = blob.get_u32_le() as usize;
    let mut targets: Vec<&mut mn_tensor::Tensor> = net
        .nodes_mut()
        .iter_mut()
        .flat_map(|n| n.state_mut())
        .collect();
    if targets.len() != count {
        return Err(WeightsError::ShapeMismatch {
            detail: format!("blob has {count} tensors, network has {}", targets.len()),
        });
    }
    for (i, target) in targets.iter_mut().enumerate() {
        let encoding = if quantized {
            if blob.remaining() < 1 {
                return Err(WeightsError::Truncated);
            }
            let tag = blob.get_u8();
            WeightEncoding::from_tag(tag).ok_or(WeightsError::BadEncoding { tag, tensor: i })?
        } else {
            WeightEncoding::F32
        };
        if blob.remaining() < 4 {
            return Err(WeightsError::Truncated);
        }
        let len = blob.get_u32_le() as usize;
        if len != target.len() {
            return Err(WeightsError::ShapeMismatch {
                detail: format!(
                    "tensor {i}: blob has {len} elements, network has {}",
                    target.len()
                ),
            });
        }
        if blob.remaining() < encoding.payload_bytes(len) {
            return Err(WeightsError::Truncated);
        }
        match encoding {
            WeightEncoding::F32 => {
                for v in target.data_mut() {
                    *v = blob.get_f32_le();
                }
            }
            WeightEncoding::F16 => {
                for v in target.data_mut() {
                    *v = quant::f32_from_f16_bits(blob.get_u16_le());
                }
            }
            WeightEncoding::I8 => {
                let scale = blob.get_f32_le();
                for v in target.data_mut() {
                    *v = blob.get_i8() as f32 * scale;
                }
            }
        }
    }
    if blob.has_remaining() {
        return Err(WeightsError::TrailingBytes {
            count: blob.remaining(),
        });
    }
    Ok(())
}

/// Serializes a network as a self-describing checkpoint: `u32`
/// architecture-JSON length, the JSON, then the [`save_weights`] blob.
///
/// [`load_network`] rebuilds the network from these bytes alone — no
/// pre-built target network is needed, which is what lets a serving
/// process cold-start an ensemble from disk.
pub fn save_network(net: &Network) -> Vec<u8> {
    // mn-lint: allow(no-panic-in-serve, reason = "serializing an in-memory Architecture (plain enums/structs, string-keyed, no custom Serialize) cannot fail; serde_json errors only on those or on I/O, and this writes to a String")
    let arch_json = serde_json::to_string(net.arch()).expect("architecture serializes");
    let weights = save_weights(net);
    let mut out = Vec::with_capacity(4 + arch_json.len() + weights.len());
    out.put_u32_le(arch_json.len() as u32);
    out.put_slice(arch_json.as_bytes());
    out.put_slice(&weights);
    out
}

/// [`save_network`] with a quantized weight section: `u32`
/// architecture-JSON length, the JSON, then the
/// [`save_weights_quantized`] blob. [`load_network`] restores either
/// variant transparently (the weight magic distinguishes them).
///
/// # Errors
///
/// Returns [`WeightsError::NonFinite`] if any tensor contains NaN or
/// ±Inf (see [`save_weights_quantized`]).
pub fn save_network_quantized(
    net: &Network,
    encoding: WeightEncoding,
) -> Result<Vec<u8>, WeightsError> {
    // mn-lint: allow(no-panic-in-serve, reason = "serializing an in-memory Architecture (plain enums/structs, string-keyed, no custom Serialize) cannot fail; serde_json errors only on those or on I/O, and this writes to a String")
    let arch_json = serde_json::to_string(net.arch()).expect("architecture serializes");
    let weights = save_weights_quantized(net, encoding)?;
    let mut out = Vec::with_capacity(4 + arch_json.len() + weights.len());
    out.put_u32_le(arch_json.len() as u32);
    out.put_slice(arch_json.as_bytes());
    out.put_slice(&weights);
    Ok(out)
}

/// Rebuilds a network from a [`save_network`] checkpoint: parses and
/// validates the architecture JSON, constructs the network, and restores
/// every persistent tensor. The result is bitwise identical to the saved
/// network's state.
///
/// # Errors
///
/// Returns [`WeightsError::BadArchitecture`] for an unparseable or
/// invalid architecture section, and the usual [`WeightsError`]s for a
/// malformed weight blob.
pub fn load_network(mut blob: &[u8]) -> Result<Network, WeightsError> {
    if blob.remaining() < 4 {
        return Err(WeightsError::Truncated);
    }
    let arch_len = blob.get_u32_le() as usize;
    if blob.remaining() < arch_len {
        return Err(WeightsError::Truncated);
    }
    let (arch_bytes, rest) = blob.split_at(arch_len);
    blob = rest;
    let arch_json = std::str::from_utf8(arch_bytes).map_err(|e| WeightsError::BadArchitecture {
        detail: format!("architecture JSON is not UTF-8: {e}"),
    })?;
    let arch: Architecture =
        serde_json::from_str(arch_json).map_err(|e| WeightsError::BadArchitecture {
            detail: format!("architecture JSON does not parse: {e}"),
        })?;
    arch.validate().map_err(|e| WeightsError::BadArchitecture {
        detail: e.to_string(),
    })?;
    // Zero-init target: every persistent tensor is overwritten by
    // load_weights below, so sampling a random init first would only
    // burn cold-start CPU (roughly half of it for large members).
    let mut net = Network::zeroed(&arch);
    load_weights(&mut net, blob)?;
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{Architecture, ConvBlockSpec, InputSpec, ResBlockSpec};
    use crate::{Mode, Network};
    use mn_tensor::Tensor;

    fn archs() -> Vec<Architecture> {
        let input = InputSpec::new(3, 8, 8);
        vec![
            Architecture::mlp("m", input, 5, vec![8]),
            Architecture::plain(
                "p",
                input,
                5,
                vec![ConvBlockSpec::repeated(3, 4, 1)],
                vec![8],
            ),
            Architecture::residual("r", input, 5, vec![ResBlockSpec::new(1, 4, 3)]),
        ]
    }

    #[test]
    fn round_trip_restores_exact_outputs() {
        for arch in archs() {
            let mut original = Network::seeded(&arch, 7);
            // Perturb running stats so they are part of the round trip.
            let x = Tensor::randn([4, 3, 8, 8], 1.0, &mut rand::thread_rng());
            original.forward(&x, Mode::Train);
            original.clear_caches();
            let blob = save_weights(&original);

            let mut restored = Network::seeded(&arch, 999); // different init
            load_weights(&mut restored, &blob).unwrap();
            let a = original.forward(&x, Mode::Eval);
            let b = restored.forward(&x, Mode::Eval);
            assert_eq!(a.data(), b.data(), "round trip not exact for {}", arch.name);
        }
    }

    #[test]
    fn network_checkpoint_rebuilds_from_bytes_alone() {
        for arch in archs() {
            let mut original = Network::seeded(&arch, 21);
            let x = Tensor::randn([3, 3, 8, 8], 1.0, &mut rand::thread_rng());
            original.forward(&x, Mode::Train); // perturb running stats
            original.clear_caches();
            let bytes = save_network(&original);
            let mut rebuilt = load_network(&bytes).unwrap();
            assert_eq!(rebuilt.arch(), original.arch());
            let a = original.forward(&x, Mode::Eval);
            let b = rebuilt.forward(&x, Mode::Eval);
            assert_eq!(a.data(), b.data(), "checkpoint not exact for {}", arch.name);
        }
    }

    #[test]
    fn network_checkpoint_rejects_corruption() {
        let input = InputSpec::new(3, 8, 8);
        let net = Network::seeded(&Architecture::mlp("m", input, 5, vec![8]), 1);
        let bytes = save_network(&net);
        // Too short for even the length prefix.
        assert!(matches!(
            load_network(&bytes[..3]),
            Err(WeightsError::Truncated)
        ));
        // Length prefix pointing past the end.
        let mut huge = bytes.clone();
        huge[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(load_network(&huge), Err(WeightsError::Truncated)));
        // Garbage in the JSON section.
        let mut bad_json = bytes.clone();
        bad_json[4] = b'!';
        assert!(matches!(
            load_network(&bad_json),
            Err(WeightsError::BadArchitecture { .. })
        ));
        // Truncated weight section: the stored checksum is cut in half,
        // so the trailing-u32 no longer matches the payload.
        assert!(matches!(
            load_network(&bytes[..bytes.len() - 2]),
            Err(WeightsError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn rejects_wrong_network() {
        let input = InputSpec::new(3, 8, 8);
        let small = Network::seeded(&Architecture::mlp("s", input, 5, vec![8]), 1);
        let mut big = Network::seeded(&Architecture::mlp("b", input, 5, vec![16]), 1);
        let blob = save_weights(&small);
        assert!(matches!(
            load_weights(&mut big, &blob),
            Err(WeightsError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn rejects_garbage() {
        let input = InputSpec::new(3, 8, 8);
        let mut net = Network::seeded(&Architecture::mlp("m", input, 5, vec![8]), 1);
        assert_eq!(
            load_weights(&mut net, b"junk"),
            Err(WeightsError::Truncated)
        );
        assert_eq!(
            load_weights(&mut net, b"JUNKJUNKJUNK"),
            Err(WeightsError::BadMagic)
        );
        // Valid header, truncated body: checksum catches it first.
        let mut blob = save_weights(&net);
        blob.truncate(blob.len() - 2);
        assert!(matches!(
            load_weights(&mut net, &blob),
            Err(WeightsError::ChecksumMismatch { .. })
        ));
        // Naive trailing byte: the checksum is no longer where the
        // saver put it, so this too reads as corruption.
        let mut blob = save_weights(&net);
        blob.push(0);
        assert!(matches!(
            load_weights(&mut net, &blob),
            Err(WeightsError::ChecksumMismatch { .. })
        ));
        // Trailing bytes with a re-sealed checksum: structural check
        // still catches the extra payload.
        let mut blob = save_weights(&net);
        blob.truncate(blob.len() - 4);
        blob.push(0);
        let fixed = crc32(&blob);
        blob.extend_from_slice(&fixed.to_le_bytes());
        assert!(matches!(
            load_weights(&mut net, &blob),
            Err(WeightsError::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn checksum_detects_bit_flip() {
        let input = InputSpec::new(3, 8, 8);
        let net = Network::seeded(&Architecture::mlp("m", input, 5, vec![8]), 1);
        let clean = save_weights(&net);
        // Flip one bit in the middle of an f32 payload — structurally the
        // blob still parses, so only the checksum can catch this.
        let mut flipped = clean.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        let err = {
            let mut target = Network::seeded(&Architecture::mlp("m", input, 5, vec![8]), 2);
            load_weights(&mut target, &flipped).unwrap_err()
        };
        match err {
            WeightsError::ChecksumMismatch { expected, actual } => {
                assert_ne!(expected, actual);
                assert_eq!(expected, crc32(&clean[..clean.len() - 4]));
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        // The clean blob still restores.
        let mut target = Network::seeded(&Architecture::mlp("m", input, 5, vec![8]), 2);
        load_weights(&mut target, &clean).unwrap();
    }

    /// Max absolute weight drift after a save/load round trip under
    /// `encoding`, across every persistent tensor.
    fn round_trip_drift(net: &Network, encoding: WeightEncoding) -> f32 {
        let blob = save_weights_quantized(net, encoding).unwrap();
        let mut restored = Network::seeded(net.arch(), 4242);
        load_weights(&mut restored, &blob).unwrap();
        let mut originals: Vec<f32> = Vec::new();
        for node in net.nodes() {
            node.visit_state(&mut |t| originals.extend_from_slice(t.data()));
        }
        let mut drift = 0.0f32;
        let mut i = 0usize;
        for node in restored.nodes() {
            node.visit_state(&mut |t| {
                for v in t.data() {
                    drift = drift.max((v - originals[i]).abs());
                    i += 1;
                }
            });
        }
        assert_eq!(i, originals.len());
        drift
    }

    #[test]
    fn f32_quantized_save_is_bit_identical_to_legacy() {
        for arch in archs() {
            let net = Network::seeded(&arch, 7);
            let legacy = save_weights(&net);
            let quantized = save_weights_quantized(&net, WeightEncoding::F32).unwrap();
            assert_eq!(legacy, quantized, "{}", arch.name);
        }
    }

    #[test]
    fn quantized_round_trip_within_encoding_bounds() {
        for arch in archs() {
            let net = Network::seeded(&arch, 11);
            // f16 has 11 significand bits: relative error ≤ 2^-11, and
            // seeded init keeps weights comfortably within ±4.
            assert!(round_trip_drift(&net, WeightEncoding::F16) <= 4.0 / 2048.0);
            // i8 symmetric: absolute error ≤ scale/2 = max_abs/254.
            let mut max_abs = 0.0f32;
            for node in net.nodes() {
                node.visit_state(&mut |t| {
                    for v in t.data() {
                        max_abs = max_abs.max(v.abs());
                    }
                });
            }
            assert!(round_trip_drift(&net, WeightEncoding::I8) <= max_abs / 254.0 + 1e-7);
            // f32 is exact.
            assert_eq!(round_trip_drift(&net, WeightEncoding::F32), 0.0);
        }
    }

    #[test]
    fn quantized_sizes_shrink_as_documented() {
        let input = InputSpec::new(3, 8, 8);
        let arch = Architecture::mlp("m", input, 10, vec![64, 64]);
        let net = Network::seeded(&arch, 3);
        let f32_len = save_weights_quantized(&net, WeightEncoding::F32)
            .unwrap()
            .len() as f64;
        let f16_len = save_weights_quantized(&net, WeightEncoding::F16)
            .unwrap()
            .len() as f64;
        let i8_len = save_weights_quantized(&net, WeightEncoding::I8)
            .unwrap()
            .len() as f64;
        assert!(f16_len / f32_len < 0.55, "f16 ratio {}", f16_len / f32_len);
        assert!(i8_len / f32_len < 0.30, "i8 ratio {}", i8_len / f32_len);
    }

    #[test]
    fn quantized_save_rejects_non_finite_with_location() {
        let input = InputSpec::new(3, 8, 8);
        let mut net = Network::seeded(&Architecture::mlp("m", input, 5, vec![8]), 1);
        // Poison one element of the first persistent tensor.
        let mut poisoned = false;
        for node in net.nodes_mut() {
            for t in node.state_mut() {
                if !poisoned {
                    t.data_mut()[2] = f32::NAN;
                    poisoned = true;
                }
            }
        }
        assert!(poisoned);
        for encoding in [WeightEncoding::F16, WeightEncoding::I8] {
            match save_weights_quantized(&net, encoding) {
                Err(WeightsError::NonFinite { tensor, index }) => {
                    assert_eq!((tensor, index), (0, 2));
                }
                other => panic!("expected NonFinite, got {other:?}"),
            }
        }
        // F32 stays infallible: the legacy format stores bits verbatim.
        save_weights_quantized(&net, WeightEncoding::F32).unwrap();
    }

    #[test]
    fn quantized_blob_detects_bit_flip() {
        let input = InputSpec::new(3, 8, 8);
        let arch = Architecture::mlp("m", input, 5, vec![8]);
        let net = Network::seeded(&arch, 1);
        for encoding in [WeightEncoding::F16, WeightEncoding::I8] {
            let clean = save_weights_quantized(&net, encoding).unwrap();
            let mut flipped = clean.clone();
            let mid = flipped.len() / 2;
            flipped[mid] ^= 0x01;
            let mut target = Network::seeded(&arch, 2);
            assert!(
                matches!(
                    load_weights(&mut target, &flipped),
                    Err(WeightsError::ChecksumMismatch { .. })
                ),
                "{encoding:?} bit flip not caught"
            );
            load_weights(&mut target, &clean).unwrap();
        }
    }

    #[test]
    fn quantized_blob_rejects_unknown_encoding_tag() {
        let input = InputSpec::new(3, 8, 8);
        let arch = Architecture::mlp("m", input, 5, vec![8]);
        let net = Network::seeded(&arch, 1);
        let mut blob = save_weights_quantized(&net, WeightEncoding::F16).unwrap();
        // Byte 8 is the first tensor's encoding tag; reseal so the
        // checksum passes and the structural check must catch it.
        blob[8] = 0x7F;
        let len = blob.len();
        let fixed = crc32(&blob[..len - 4]);
        blob[len - 4..].copy_from_slice(&fixed.to_le_bytes());
        let mut target = Network::seeded(&arch, 2);
        assert!(matches!(
            load_weights(&mut target, &blob),
            Err(WeightsError::BadEncoding {
                tag: 0x7F,
                tensor: 0
            })
        ));
    }

    #[test]
    fn quantized_network_checkpoint_round_trips() {
        for arch in archs() {
            let mut original = Network::seeded(&arch, 21);
            let x = Tensor::randn([3, 3, 8, 8], 1.0, &mut rand::thread_rng());
            original.forward(&x, Mode::Train); // perturb running stats
            original.clear_caches();
            let a = original.forward(&x, Mode::Eval);
            for (encoding, tol) in [
                (WeightEncoding::F32, 0.0),
                (WeightEncoding::F16, 0.05),
                (WeightEncoding::I8, 0.35),
            ] {
                let bytes = save_network_quantized(&original, encoding).unwrap();
                let mut rebuilt = load_network(&bytes).unwrap();
                assert_eq!(rebuilt.arch(), original.arch());
                let b = rebuilt.forward(&x, Mode::Eval);
                let drift = mn_tensor::max_abs_diff(a.data(), b.data());
                assert!(
                    drift <= tol,
                    "{} under {:?}: output drift {drift} > {tol}",
                    arch.name,
                    encoding
                );
            }
        }
    }

    #[test]
    fn encoding_labels_and_tags_round_trip() {
        for encoding in [WeightEncoding::F32, WeightEncoding::F16, WeightEncoding::I8] {
            assert_eq!(WeightEncoding::from_tag(encoding.tag()), Some(encoding));
        }
        assert_eq!(WeightEncoding::from_tag(3), None);
        assert_eq!(WeightEncoding::F32.label(), "f32");
        assert_eq!(WeightEncoding::F16.label(), "f16");
        assert_eq!(WeightEncoding::I8.label(), "i8");
        assert_eq!(WeightEncoding::F32.payload_bytes(10), 40);
        assert_eq!(WeightEncoding::F16.payload_bytes(10), 20);
        assert_eq!(WeightEncoding::I8.payload_bytes(10), 14);
    }
}

//! Network weight checkpointing.
//!
//! Serializes every persistent tensor of a network — trainable parameters
//! *and* batch-norm running statistics — into a compact little-endian
//! binary format, and restores them into a structurally identical network.
//! Architectures themselves serialize as JSON via serde
//! ([`crate::arch::Architecture`]); a checkpoint is the pair
//! (architecture JSON, weight blob).
//!
//! Format: magic `MNW1`, `u32` tensor count, then per tensor a `u32`
//! element count followed by that many `f32` values.

use std::fmt;

use bytes::{Buf, BufMut};

use crate::network::Network;

const MAGIC: &[u8; 4] = b"MNW1";

/// Errors when restoring a weight blob.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WeightsError {
    /// The blob does not start with the expected magic bytes.
    BadMagic,
    /// The blob ended before all tensors were read.
    Truncated,
    /// Tensor count or a tensor's element count does not match the target
    /// network's structure.
    ShapeMismatch {
        /// Human-readable detail.
        detail: String,
    },
    /// Trailing bytes after the last tensor.
    TrailingBytes {
        /// Number of unread bytes.
        count: usize,
    },
}

impl fmt::Display for WeightsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightsError::BadMagic => write!(f, "not a MNW1 weight blob"),
            WeightsError::Truncated => write!(f, "weight blob ended early"),
            WeightsError::ShapeMismatch { detail } => {
                write!(f, "weight blob does not match network: {detail}")
            }
            WeightsError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after weights")
            }
        }
    }
}

impl std::error::Error for WeightsError {}

/// Serializes all persistent state of `net` into a weight blob.
pub fn save_weights(net: &mut Network) -> Vec<u8> {
    let state: Vec<Vec<f32>> = net
        .nodes_mut()
        .iter_mut()
        .flat_map(|n| n.state_mut().into_iter().map(|t| t.data().to_vec()))
        .collect();
    let total: usize = state.iter().map(|t| 4 + 4 * t.len()).sum();
    let mut out = Vec::with_capacity(8 + total);
    out.put_slice(MAGIC);
    out.put_u32_le(state.len() as u32);
    for tensor in &state {
        out.put_u32_le(tensor.len() as u32);
        for &v in tensor {
            out.put_f32_le(v);
        }
    }
    out
}

/// Restores a weight blob produced by [`save_weights`] into a structurally
/// identical network.
///
/// # Errors
///
/// Returns a [`WeightsError`] if the blob is malformed or does not match
/// the network's structure. On error the network may be partially updated.
pub fn load_weights(net: &mut Network, mut blob: &[u8]) -> Result<(), WeightsError> {
    if blob.remaining() < 8 {
        return Err(WeightsError::Truncated);
    }
    let mut magic = [0u8; 4];
    blob.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(WeightsError::BadMagic);
    }
    let count = blob.get_u32_le() as usize;
    let mut targets: Vec<&mut mn_tensor::Tensor> = net
        .nodes_mut()
        .iter_mut()
        .flat_map(|n| n.state_mut())
        .collect();
    if targets.len() != count {
        return Err(WeightsError::ShapeMismatch {
            detail: format!("blob has {count} tensors, network has {}", targets.len()),
        });
    }
    for (i, target) in targets.iter_mut().enumerate() {
        if blob.remaining() < 4 {
            return Err(WeightsError::Truncated);
        }
        let len = blob.get_u32_le() as usize;
        if len != target.len() {
            return Err(WeightsError::ShapeMismatch {
                detail: format!(
                    "tensor {i}: blob has {len} elements, network has {}",
                    target.len()
                ),
            });
        }
        if blob.remaining() < 4 * len {
            return Err(WeightsError::Truncated);
        }
        for v in target.data_mut() {
            *v = blob.get_f32_le();
        }
    }
    if blob.has_remaining() {
        return Err(WeightsError::TrailingBytes {
            count: blob.remaining(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{Architecture, ConvBlockSpec, InputSpec, ResBlockSpec};
    use crate::{Mode, Network};
    use mn_tensor::Tensor;

    fn archs() -> Vec<Architecture> {
        let input = InputSpec::new(3, 8, 8);
        vec![
            Architecture::mlp("m", input, 5, vec![8]),
            Architecture::plain(
                "p",
                input,
                5,
                vec![ConvBlockSpec::repeated(3, 4, 1)],
                vec![8],
            ),
            Architecture::residual("r", input, 5, vec![ResBlockSpec::new(1, 4, 3)]),
        ]
    }

    #[test]
    fn round_trip_restores_exact_outputs() {
        for arch in archs() {
            let mut original = Network::seeded(&arch, 7);
            // Perturb running stats so they are part of the round trip.
            let x = Tensor::randn([4, 3, 8, 8], 1.0, &mut rand::thread_rng());
            original.forward(&x, Mode::Train);
            original.clear_caches();
            let blob = save_weights(&mut original);

            let mut restored = Network::seeded(&arch, 999); // different init
            load_weights(&mut restored, &blob).unwrap();
            let a = original.forward(&x, Mode::Eval);
            let b = restored.forward(&x, Mode::Eval);
            assert_eq!(a.data(), b.data(), "round trip not exact for {}", arch.name);
        }
    }

    #[test]
    fn rejects_wrong_network() {
        let input = InputSpec::new(3, 8, 8);
        let mut small = Network::seeded(&Architecture::mlp("s", input, 5, vec![8]), 1);
        let mut big = Network::seeded(&Architecture::mlp("b", input, 5, vec![16]), 1);
        let blob = save_weights(&mut small);
        assert!(matches!(
            load_weights(&mut big, &blob),
            Err(WeightsError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn rejects_garbage() {
        let input = InputSpec::new(3, 8, 8);
        let mut net = Network::seeded(&Architecture::mlp("m", input, 5, vec![8]), 1);
        assert_eq!(
            load_weights(&mut net, b"junk"),
            Err(WeightsError::Truncated)
        );
        assert_eq!(
            load_weights(&mut net, b"JUNKJUNKJUNK"),
            Err(WeightsError::BadMagic)
        );
        // Valid header, truncated body.
        let mut blob = save_weights(&mut net);
        blob.truncate(blob.len() - 2);
        assert_eq!(load_weights(&mut net, &blob), Err(WeightsError::Truncated));
        // Trailing bytes.
        let mut blob = save_weights(&mut net);
        blob.push(0);
        assert!(matches!(
            load_weights(&mut net, &blob),
            Err(WeightsError::TrailingBytes { count: 1 })
        ));
    }
}

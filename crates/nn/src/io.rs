//! Network checkpointing: weight blobs and self-describing checkpoints.
//!
//! Two formats live here, both little-endian:
//!
//! * **`MNW1` weight blob** ([`save_weights`] / [`load_weights`]) —
//!   every persistent tensor of a network (trainable parameters *and*
//!   batch-norm running statistics), restorable into a structurally
//!   identical network. Layout: magic `MNW1`, `u32` tensor count, then
//!   per tensor a `u32` element count followed by that many `f32`
//!   values, closed by a `u32` CRC-32 (IEEE) over every preceding byte.
//!   The checksum is verified *before* any tensor is parsed: a
//!   bit-flipped weight file fails loudly at load
//!   ([`WeightsError::ChecksumMismatch`]) instead of serving garbage —
//!   most single-bit flips land in an `f32` payload, where structural
//!   validation alone cannot see them.
//! * **Network checkpoint** ([`save_network`] / [`load_network`]) — a
//!   self-describing section pairing the architecture (JSON via serde,
//!   see [`crate::arch::Architecture`]) with its `MNW1` blob, so a
//!   network can be rebuilt from bytes alone. Layout: `u32` architecture
//!   JSON length, the JSON, then the `MNW1` blob to the end. The `MNE1`
//!   ensemble artifact in `mn-ensemble` frames one such section per
//!   member.
//!
//! Serialization needs only shared access ([`save_weights`] takes
//! `&Network` and walks the shared-ref state visitor); restoring mutates
//! and takes `&mut Network`.

use std::fmt;

use bytes::{Buf, BufMut};

use crate::arch::Architecture;
use crate::network::Network;

const MAGIC: &[u8; 4] = b"MNW1";

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) lookup table,
/// built at compile time — the workspace has no checksum dependency.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the checksum closing `MNW1` weight blobs
/// and `MNE1` ensemble artifacts. Exposed so format-aware tooling (and
/// corruption tests) can recompute it.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Errors when restoring a weight blob or network checkpoint.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WeightsError {
    /// The blob does not start with the expected magic bytes.
    BadMagic,
    /// The blob ended before all tensors were read.
    Truncated,
    /// Tensor count or a tensor's element count does not match the target
    /// network's structure.
    ShapeMismatch {
        /// Human-readable detail.
        detail: String,
    },
    /// Trailing bytes after the last tensor (before the checksum).
    TrailingBytes {
        /// Number of unread bytes.
        count: usize,
    },
    /// The blob's CRC-32 does not match its payload: the bytes were
    /// corrupted (or truncated/extended) since [`save_weights`] wrote
    /// them. Checked before any tensor is parsed.
    ChecksumMismatch {
        /// Checksum stored in the blob.
        expected: u32,
        /// Checksum of the payload as read.
        actual: u32,
    },
    /// A checkpoint's architecture section is not valid JSON, or describes
    /// an architecture that fails validation.
    BadArchitecture {
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for WeightsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightsError::BadMagic => write!(f, "not a MNW1 weight blob"),
            WeightsError::Truncated => write!(f, "weight blob ended early"),
            WeightsError::ShapeMismatch { detail } => {
                write!(f, "weight blob does not match network: {detail}")
            }
            WeightsError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after weights")
            }
            WeightsError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "weight blob checksum mismatch: stored {expected:#010x}, computed {actual:#010x}"
                )
            }
            WeightsError::BadArchitecture { detail } => {
                write!(f, "bad architecture section: {detail}")
            }
        }
    }
}

impl std::error::Error for WeightsError {}

/// Serializes all persistent state of `net` into a weight blob.
///
/// Read-only: walks the network's shared-ref state visitor, so a network
/// being served (or borrowed elsewhere) can be checkpointed without `&mut`
/// access and without staging per-tensor copies.
pub fn save_weights(net: &Network) -> Vec<u8> {
    // First pass: size the blob exactly.
    let mut count: u32 = 0;
    let mut payload = 0usize;
    for node in net.nodes() {
        node.visit_state(&mut |t| {
            count += 1;
            payload += 4 + 4 * t.len();
        });
    }
    let mut out = Vec::with_capacity(8 + payload + 4);
    out.put_slice(MAGIC);
    out.put_u32_le(count);
    for node in net.nodes() {
        node.visit_state(&mut |t| {
            out.put_u32_le(t.len() as u32);
            for &v in t.data() {
                out.put_f32_le(v);
            }
        });
    }
    let checksum = crc32(&out);
    out.put_u32_le(checksum);
    out
}

/// Restores a weight blob produced by [`save_weights`] into a structurally
/// identical network.
///
/// # Errors
///
/// Returns a [`WeightsError`] if the blob is malformed or does not match
/// the network's structure. On error the network may be partially updated.
pub fn load_weights(net: &mut Network, blob: &[u8]) -> Result<(), WeightsError> {
    // Header (8) plus trailing checksum (4) is the smallest valid blob.
    if blob.len() < 12 {
        return Err(WeightsError::Truncated);
    }
    if &blob[..4] != MAGIC {
        return Err(WeightsError::BadMagic);
    }
    // Verify integrity before parsing a single tensor: corruption inside
    // an f32 payload parses cleanly and would silently poison the network.
    let (payload, stored) = blob.split_at(blob.len() - 4);
    let expected = u32::from_le_bytes(stored.try_into().expect("4-byte checksum"));
    let actual = crc32(payload);
    if expected != actual {
        return Err(WeightsError::ChecksumMismatch { expected, actual });
    }
    let mut blob = &payload[4..];
    let count = blob.get_u32_le() as usize;
    let mut targets: Vec<&mut mn_tensor::Tensor> = net
        .nodes_mut()
        .iter_mut()
        .flat_map(|n| n.state_mut())
        .collect();
    if targets.len() != count {
        return Err(WeightsError::ShapeMismatch {
            detail: format!("blob has {count} tensors, network has {}", targets.len()),
        });
    }
    for (i, target) in targets.iter_mut().enumerate() {
        if blob.remaining() < 4 {
            return Err(WeightsError::Truncated);
        }
        let len = blob.get_u32_le() as usize;
        if len != target.len() {
            return Err(WeightsError::ShapeMismatch {
                detail: format!(
                    "tensor {i}: blob has {len} elements, network has {}",
                    target.len()
                ),
            });
        }
        if blob.remaining() < 4 * len {
            return Err(WeightsError::Truncated);
        }
        for v in target.data_mut() {
            *v = blob.get_f32_le();
        }
    }
    if blob.has_remaining() {
        return Err(WeightsError::TrailingBytes {
            count: blob.remaining(),
        });
    }
    Ok(())
}

/// Serializes a network as a self-describing checkpoint: `u32`
/// architecture-JSON length, the JSON, then the [`save_weights`] blob.
///
/// [`load_network`] rebuilds the network from these bytes alone — no
/// pre-built target network is needed, which is what lets a serving
/// process cold-start an ensemble from disk.
pub fn save_network(net: &Network) -> Vec<u8> {
    let arch_json = serde_json::to_string(net.arch()).expect("architecture serializes");
    let weights = save_weights(net);
    let mut out = Vec::with_capacity(4 + arch_json.len() + weights.len());
    out.put_u32_le(arch_json.len() as u32);
    out.put_slice(arch_json.as_bytes());
    out.put_slice(&weights);
    out
}

/// Rebuilds a network from a [`save_network`] checkpoint: parses and
/// validates the architecture JSON, constructs the network, and restores
/// every persistent tensor. The result is bitwise identical to the saved
/// network's state.
///
/// # Errors
///
/// Returns [`WeightsError::BadArchitecture`] for an unparseable or
/// invalid architecture section, and the usual [`WeightsError`]s for a
/// malformed weight blob.
pub fn load_network(mut blob: &[u8]) -> Result<Network, WeightsError> {
    if blob.remaining() < 4 {
        return Err(WeightsError::Truncated);
    }
    let arch_len = blob.get_u32_le() as usize;
    if blob.remaining() < arch_len {
        return Err(WeightsError::Truncated);
    }
    let (arch_bytes, rest) = blob.split_at(arch_len);
    blob = rest;
    let arch_json = std::str::from_utf8(arch_bytes).map_err(|e| WeightsError::BadArchitecture {
        detail: format!("architecture JSON is not UTF-8: {e}"),
    })?;
    let arch: Architecture =
        serde_json::from_str(arch_json).map_err(|e| WeightsError::BadArchitecture {
            detail: format!("architecture JSON does not parse: {e}"),
        })?;
    arch.validate().map_err(|e| WeightsError::BadArchitecture {
        detail: e.to_string(),
    })?;
    // Zero-init target: every persistent tensor is overwritten by
    // load_weights below, so sampling a random init first would only
    // burn cold-start CPU (roughly half of it for large members).
    let mut net = Network::zeroed(&arch);
    load_weights(&mut net, blob)?;
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{Architecture, ConvBlockSpec, InputSpec, ResBlockSpec};
    use crate::{Mode, Network};
    use mn_tensor::Tensor;

    fn archs() -> Vec<Architecture> {
        let input = InputSpec::new(3, 8, 8);
        vec![
            Architecture::mlp("m", input, 5, vec![8]),
            Architecture::plain(
                "p",
                input,
                5,
                vec![ConvBlockSpec::repeated(3, 4, 1)],
                vec![8],
            ),
            Architecture::residual("r", input, 5, vec![ResBlockSpec::new(1, 4, 3)]),
        ]
    }

    #[test]
    fn round_trip_restores_exact_outputs() {
        for arch in archs() {
            let mut original = Network::seeded(&arch, 7);
            // Perturb running stats so they are part of the round trip.
            let x = Tensor::randn([4, 3, 8, 8], 1.0, &mut rand::thread_rng());
            original.forward(&x, Mode::Train);
            original.clear_caches();
            let blob = save_weights(&original);

            let mut restored = Network::seeded(&arch, 999); // different init
            load_weights(&mut restored, &blob).unwrap();
            let a = original.forward(&x, Mode::Eval);
            let b = restored.forward(&x, Mode::Eval);
            assert_eq!(a.data(), b.data(), "round trip not exact for {}", arch.name);
        }
    }

    #[test]
    fn network_checkpoint_rebuilds_from_bytes_alone() {
        for arch in archs() {
            let mut original = Network::seeded(&arch, 21);
            let x = Tensor::randn([3, 3, 8, 8], 1.0, &mut rand::thread_rng());
            original.forward(&x, Mode::Train); // perturb running stats
            original.clear_caches();
            let bytes = save_network(&original);
            let mut rebuilt = load_network(&bytes).unwrap();
            assert_eq!(rebuilt.arch(), original.arch());
            let a = original.forward(&x, Mode::Eval);
            let b = rebuilt.forward(&x, Mode::Eval);
            assert_eq!(a.data(), b.data(), "checkpoint not exact for {}", arch.name);
        }
    }

    #[test]
    fn network_checkpoint_rejects_corruption() {
        let input = InputSpec::new(3, 8, 8);
        let net = Network::seeded(&Architecture::mlp("m", input, 5, vec![8]), 1);
        let bytes = save_network(&net);
        // Too short for even the length prefix.
        assert!(matches!(
            load_network(&bytes[..3]),
            Err(WeightsError::Truncated)
        ));
        // Length prefix pointing past the end.
        let mut huge = bytes.clone();
        huge[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(load_network(&huge), Err(WeightsError::Truncated)));
        // Garbage in the JSON section.
        let mut bad_json = bytes.clone();
        bad_json[4] = b'!';
        assert!(matches!(
            load_network(&bad_json),
            Err(WeightsError::BadArchitecture { .. })
        ));
        // Truncated weight section: the stored checksum is cut in half,
        // so the trailing-u32 no longer matches the payload.
        assert!(matches!(
            load_network(&bytes[..bytes.len() - 2]),
            Err(WeightsError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn rejects_wrong_network() {
        let input = InputSpec::new(3, 8, 8);
        let small = Network::seeded(&Architecture::mlp("s", input, 5, vec![8]), 1);
        let mut big = Network::seeded(&Architecture::mlp("b", input, 5, vec![16]), 1);
        let blob = save_weights(&small);
        assert!(matches!(
            load_weights(&mut big, &blob),
            Err(WeightsError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn rejects_garbage() {
        let input = InputSpec::new(3, 8, 8);
        let mut net = Network::seeded(&Architecture::mlp("m", input, 5, vec![8]), 1);
        assert_eq!(
            load_weights(&mut net, b"junk"),
            Err(WeightsError::Truncated)
        );
        assert_eq!(
            load_weights(&mut net, b"JUNKJUNKJUNK"),
            Err(WeightsError::BadMagic)
        );
        // Valid header, truncated body: checksum catches it first.
        let mut blob = save_weights(&net);
        blob.truncate(blob.len() - 2);
        assert!(matches!(
            load_weights(&mut net, &blob),
            Err(WeightsError::ChecksumMismatch { .. })
        ));
        // Naive trailing byte: the checksum is no longer where the
        // saver put it, so this too reads as corruption.
        let mut blob = save_weights(&net);
        blob.push(0);
        assert!(matches!(
            load_weights(&mut net, &blob),
            Err(WeightsError::ChecksumMismatch { .. })
        ));
        // Trailing bytes with a re-sealed checksum: structural check
        // still catches the extra payload.
        let mut blob = save_weights(&net);
        blob.truncate(blob.len() - 4);
        blob.push(0);
        let fixed = crc32(&blob);
        blob.extend_from_slice(&fixed.to_le_bytes());
        assert!(matches!(
            load_weights(&mut net, &blob),
            Err(WeightsError::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn checksum_detects_bit_flip() {
        let input = InputSpec::new(3, 8, 8);
        let net = Network::seeded(&Architecture::mlp("m", input, 5, vec![8]), 1);
        let clean = save_weights(&net);
        // Flip one bit in the middle of an f32 payload — structurally the
        // blob still parses, so only the checksum can catch this.
        let mut flipped = clean.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        let err = {
            let mut target = Network::seeded(&Architecture::mlp("m", input, 5, vec![8]), 2);
            load_weights(&mut target, &flipped).unwrap_err()
        };
        match err {
            WeightsError::ChecksumMismatch { expected, actual } => {
                assert_ne!(expected, actual);
                assert_eq!(expected, crc32(&clean[..clean.len() - 4]));
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        // The clean blob still restores.
        let mut target = Network::seeded(&Architecture::mlp("m", input, 5, vec![8]), 2);
        load_weights(&mut target, &clean).unwrap();
    }
}

//! [`LayerNode`]: the enum that composes layers into networks.
//!
//! Networks are `Vec<LayerNode>`. An enum (rather than `Box<dyn Layer>`) is
//! used deliberately: the morphism engine in `mn-morph` needs to pattern
//! match on layer kinds and rewrite their parameters structurally, which is
//! natural over an enum and awkward over trait objects — and the training
//! loop benefits from static dispatch.

use mn_tensor::{Tensor, Workspace};

use crate::layer::{Mode, Param};
use crate::layers::{
    BatchNorm, ConvLayer, DenseLayer, FlattenLayer, GlobalAvgPoolLayer, MaxPoolLayer, ReluLayer,
    ResidualUnit,
};

/// One node in a network's layer sequence.
#[derive(Clone, Debug)]
pub enum LayerNode {
    /// Fully-connected layer.
    Dense(DenseLayer),
    /// Stride-1 same-padded convolution.
    Conv(ConvLayer),
    /// Batch normalization (spatial or flat).
    BatchNorm(BatchNorm),
    /// ReLU activation.
    Relu(ReluLayer),
    /// 2×2 stride-2 max pooling.
    MaxPool(MaxPoolLayer),
    /// `[N,C,H,W] → [N,CHW]`.
    Flatten(FlattenLayer),
    /// Global average pooling `[N,C,H,W] → [N,C]`.
    GlobalAvgPool(GlobalAvgPoolLayer),
    /// Two-conv residual unit with identity skip. Boxed: the unit holds
    /// four sub-layers and would otherwise more than triple the size of
    /// every node in a network's layer sequence.
    Residual(Box<ResidualUnit>),
}

impl LayerNode {
    /// Forward pass through this node.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        self.forward_ws(x, mode, &mut Workspace::new())
    }

    /// Forward pass staging activations in a [`Workspace`].
    pub fn forward_ws(&mut self, x: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
        let train = mode == Mode::Train;
        match self {
            LayerNode::Dense(l) => l.forward_ws(x, train, ws),
            LayerNode::Conv(l) => l.forward_ws(x, train, ws),
            LayerNode::BatchNorm(l) => l.forward_ws(x, train, ws),
            LayerNode::Relu(l) => l.forward_ws(x, train, ws),
            LayerNode::MaxPool(l) => l.forward_ws(x, train, ws),
            LayerNode::Flatten(l) => l.forward_ws(x, train, ws),
            LayerNode::GlobalAvgPool(l) => l.forward_ws(x, train, ws),
            LayerNode::Residual(l) => l.forward_ws(x, train, ws),
        }
    }

    /// Eval-mode forward through shared access only: every arm delegates
    /// to its layer's `forward_eval_ws`, which reads weights and running
    /// statistics without writing anything back into the layer. This is
    /// the execution path that lets many serving sessions run one shared
    /// set of network weights concurrently; it is bitwise identical to
    /// [`LayerNode::forward_ws`] in [`Mode::Eval`], which routes through
    /// the same per-layer code.
    // mn-lint: hot-path
    pub fn forward_eval_ws(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        match self {
            LayerNode::Dense(l) => l.forward_eval_ws(x, ws),
            LayerNode::Conv(l) => l.forward_eval_ws(x, ws),
            LayerNode::BatchNorm(l) => l.forward_eval_ws(x, ws),
            LayerNode::Relu(l) => l.forward_eval_ws(x, ws),
            LayerNode::MaxPool(l) => l.forward_eval_ws(x, ws),
            LayerNode::Flatten(l) => l.forward_eval_ws(x, ws),
            LayerNode::GlobalAvgPool(l) => l.forward_eval_ws(x, ws),
            LayerNode::Residual(l) => l.forward_eval_ws(x, ws),
        }
    }

    /// Backward pass through this node.
    ///
    /// # Panics
    ///
    /// Panics if the node has not run a training-mode forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_ws(grad_out, &mut Workspace::new())
    }

    /// Backward pass staging gradients in a [`Workspace`].
    ///
    /// # Panics
    ///
    /// Panics if the node has not run a training-mode forward pass.
    pub fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        match self {
            LayerNode::Dense(l) => l.backward_ws(grad_out, ws),
            LayerNode::Conv(l) => l.backward_ws(grad_out, ws),
            LayerNode::BatchNorm(l) => l.backward_ws(grad_out, ws),
            LayerNode::Relu(l) => l.backward_ws(grad_out, ws),
            LayerNode::MaxPool(l) => l.backward_ws(grad_out, ws),
            LayerNode::Flatten(l) => l.backward_ws(grad_out, ws),
            LayerNode::GlobalAvgPool(l) => l.backward_ws(grad_out, ws),
            LayerNode::Residual(l) => l.backward_ws(grad_out, ws),
        }
    }

    /// The node's trainable parameters (empty for structural nodes).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            LayerNode::Dense(l) => l.params_mut(),
            LayerNode::Conv(l) => l.params_mut(),
            LayerNode::BatchNorm(l) => l.params_mut(),
            LayerNode::Residual(l) => l.params_mut(),
            LayerNode::Relu(_)
            | LayerNode::MaxPool(_)
            | LayerNode::Flatten(_)
            | LayerNode::GlobalAvgPool(_) => Vec::new(),
        }
    }

    /// Visits the node's trainable parameters in the same stable order as
    /// [`LayerNode::params_mut`], without materializing a `Vec` — the
    /// zero-allocation path the fused optimizer steps through. Each arm
    /// delegates to its layer's own visitor, which is defined next to
    /// that layer's `params_mut`, so the two orders cannot drift apart.
    pub fn visit_params_mut(&mut self, f: &mut impl FnMut(&mut Param)) {
        match self {
            LayerNode::Dense(l) => l.visit_params_mut(f),
            LayerNode::Conv(l) => l.visit_params_mut(f),
            LayerNode::BatchNorm(l) => l.visit_params_mut(f),
            LayerNode::Residual(l) => l.visit_params_mut(f),
            LayerNode::Relu(_)
            | LayerNode::MaxPool(_)
            | LayerNode::Flatten(_)
            | LayerNode::GlobalAvgPool(_) => {}
        }
    }

    /// Number of trainable scalars in this node.
    pub fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }

    /// All persistent state tensors of this node, in a stable order:
    /// trainable parameter values plus batch-norm running statistics.
    /// This is the checkpointing surface (see `network::Network`'s
    /// `save_weights` / `load_weights`).
    pub fn state_mut(&mut self) -> Vec<&mut mn_tensor::Tensor> {
        match self {
            LayerNode::Dense(l) => vec![&mut l.weight.value, &mut l.bias.value],
            LayerNode::Conv(l) => vec![&mut l.weight.value, &mut l.bias.value],
            LayerNode::BatchNorm(l) => vec![
                &mut l.gamma.value,
                &mut l.beta.value,
                &mut l.running_mean,
                &mut l.running_var,
            ],
            LayerNode::Residual(l) => {
                let mut v = vec![&mut l.conv1.weight.value, &mut l.conv1.bias.value];
                v.extend([
                    &mut l.bn1.gamma.value,
                    &mut l.bn1.beta.value,
                    &mut l.bn1.running_mean,
                    &mut l.bn1.running_var,
                ]);
                v.extend([&mut l.conv2.weight.value, &mut l.conv2.bias.value]);
                v.extend([
                    &mut l.bn2.gamma.value,
                    &mut l.bn2.beta.value,
                    &mut l.bn2.running_mean,
                    &mut l.bn2.running_var,
                ]);
                v
            }
            LayerNode::Relu(_)
            | LayerNode::MaxPool(_)
            | LayerNode::Flatten(_)
            | LayerNode::GlobalAvgPool(_) => Vec::new(),
        }
    }

    /// Visits the node's persistent state tensors by shared reference, in
    /// exactly the [`LayerNode::state_mut`] order — the read-only side of
    /// the checkpointing surface, used by `mn_nn::io::save_weights` so
    /// serialization needs no `&mut` access. A unit test pins the two
    /// orders to each other by pointer identity.
    pub fn visit_state<'s>(&'s self, f: &mut impl FnMut(&'s mn_tensor::Tensor)) {
        match self {
            LayerNode::Dense(l) => {
                f(&l.weight.value);
                f(&l.bias.value);
            }
            LayerNode::Conv(l) => {
                f(&l.weight.value);
                f(&l.bias.value);
            }
            LayerNode::BatchNorm(l) => {
                f(&l.gamma.value);
                f(&l.beta.value);
                f(&l.running_mean);
                f(&l.running_var);
            }
            LayerNode::Residual(l) => {
                f(&l.conv1.weight.value);
                f(&l.conv1.bias.value);
                f(&l.bn1.gamma.value);
                f(&l.bn1.beta.value);
                f(&l.bn1.running_mean);
                f(&l.bn1.running_var);
                f(&l.conv2.weight.value);
                f(&l.conv2.bias.value);
                f(&l.bn2.gamma.value);
                f(&l.bn2.beta.value);
                f(&l.bn2.running_mean);
                f(&l.bn2.running_var);
            }
            LayerNode::Relu(_)
            | LayerNode::MaxPool(_)
            | LayerNode::Flatten(_)
            | LayerNode::GlobalAvgPool(_) => {}
        }
    }

    /// Whether two nodes are **eval-interchangeable**: same layer kind,
    /// same eval-relevant configuration, and bit-for-bit identical
    /// persistent state (weights, biases, batch-norm statistics). Two
    /// eval-equivalent nodes produce bitwise identical output for any
    /// input, so an executor may run either one — this is the detection
    /// primitive behind shared-trunk ensemble serving: members hatched
    /// from one MotherNet keep eval-equivalent prefixes until their first
    /// divergent (widened/retrained) layer.
    ///
    /// State is compared by `f32` bit pattern (`to_bits`), not `==`, so
    /// the check is NaN-safe and distinguishes `-0.0` from `0.0` — the
    /// same notion of identity the engine's bitwise-determinism contract
    /// uses.
    pub fn eval_equivalent(&self, other: &LayerNode) -> bool {
        fn bits_eq(a: &Tensor, b: &Tensor) -> bool {
            a.shape() == b.shape()
                && a.data()
                    .iter()
                    .zip(b.data())
                    .all(|(x, y)| x.to_bits() == y.to_bits())
        }
        // Eval-relevant configuration first: dimensions are implied by the
        // state tensors below, but kernel formulation (conv) and epsilon /
        // layout (batch norm) change the arithmetic without changing any
        // stored tensor, so they must match for bitwise interchangeability.
        let config_eq = match (self, other) {
            (LayerNode::Dense(_), LayerNode::Dense(_)) => true,
            (LayerNode::Conv(a), LayerNode::Conv(b)) => a.formulation() == b.formulation(),
            (LayerNode::BatchNorm(a), LayerNode::BatchNorm(b)) => {
                a.layout() == b.layout() && a.eps.to_bits() == b.eps.to_bits()
            }
            (LayerNode::Residual(a), LayerNode::Residual(b)) => {
                a.conv1.formulation() == b.conv1.formulation()
                    && a.conv2.formulation() == b.conv2.formulation()
                    && a.bn1.eps.to_bits() == b.bn1.eps.to_bits()
                    && a.bn2.eps.to_bits() == b.bn2.eps.to_bits()
            }
            (LayerNode::Relu(_), LayerNode::Relu(_))
            | (LayerNode::MaxPool(_), LayerNode::MaxPool(_))
            | (LayerNode::Flatten(_), LayerNode::Flatten(_))
            | (LayerNode::GlobalAvgPool(_), LayerNode::GlobalAvgPool(_)) => true,
            _ => false,
        };
        if !config_eq {
            return false;
        }
        let mut mine: Vec<&Tensor> = Vec::new();
        self.visit_state(&mut |t| mine.push(t));
        let mut theirs: Vec<&Tensor> = Vec::new();
        other.visit_state(&mut |t| theirs.push(t));
        mine.len() == theirs.len() && mine.iter().zip(&theirs).all(|(a, b)| bits_eq(a, b))
    }

    /// Short kind name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            LayerNode::Dense(_) => "dense",
            LayerNode::Conv(_) => "conv",
            LayerNode::BatchNorm(_) => "batchnorm",
            LayerNode::Relu(_) => "relu",
            LayerNode::MaxPool(_) => "maxpool",
            LayerNode::Flatten(_) => "flatten",
            LayerNode::GlobalAvgPool(_) => "gap",
            LayerNode::Residual(_) => "residual",
        }
    }

    /// Drops cached activations.
    pub fn clear_cache(&mut self) {
        match self {
            LayerNode::Dense(l) => l.clear_cache(),
            LayerNode::Conv(l) => l.clear_cache(),
            LayerNode::BatchNorm(l) => l.clear_cache(),
            LayerNode::Relu(l) => l.clear_cache(),
            LayerNode::MaxPool(l) => l.clear_cache(),
            LayerNode::Flatten(l) => l.clear_cache(),
            LayerNode::GlobalAvgPool(l) => l.clear_cache(),
            LayerNode::Residual(l) => l.clear_cache(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kinds_and_counts() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut nodes = [
            LayerNode::Conv(ConvLayer::new(3, 4, 3, &mut rng)),
            LayerNode::BatchNorm(BatchNorm::new(4, crate::layers::BnLayout::Spatial)),
            LayerNode::Relu(ReluLayer::new()),
            LayerNode::MaxPool(MaxPoolLayer::new()),
            LayerNode::Flatten(FlattenLayer::new()),
        ];
        assert_eq!(nodes[0].kind(), "conv");
        assert_eq!(nodes[0].param_count(), 4 * 3 * 9 + 4);
        assert_eq!(nodes[1].param_count(), 8);
        assert_eq!(nodes[2].param_count(), 0);
        assert_eq!(nodes[3].param_count(), 0);
        assert_eq!(nodes[4].param_count(), 0);
    }

    #[test]
    fn visit_state_matches_state_mut_order() {
        // save_weights walks visit_state while load_weights walks
        // state_mut; the two must agree tensor-for-tensor across every
        // layer family, pinned here by pointer identity.
        let mut rng = StdRng::seed_from_u64(7);
        let nodes = vec![
            LayerNode::Dense(DenseLayer::new(4, 3, &mut rng)),
            LayerNode::Conv(ConvLayer::new(3, 4, 3, &mut rng)),
            LayerNode::BatchNorm(BatchNorm::new(4, crate::layers::BnLayout::Spatial)),
            LayerNode::Residual(Box::new(crate::layers::ResidualUnit::new(4, 3, &mut rng))),
            LayerNode::Relu(ReluLayer::new()),
            LayerNode::MaxPool(MaxPoolLayer::new()),
            LayerNode::Flatten(FlattenLayer::new()),
            LayerNode::GlobalAvgPool(GlobalAvgPoolLayer::new()),
        ];
        for mut node in nodes {
            let mut shared: Vec<*const Tensor> = Vec::new();
            node.visit_state(&mut |t| shared.push(t as *const Tensor));
            let unique: Vec<*const Tensor> = node
                .state_mut()
                .into_iter()
                .map(|t| t as *const Tensor)
                .collect();
            assert_eq!(shared, unique, "order diverged for {}", node.kind());
        }
    }

    #[test]
    fn forward_chain_through_nodes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut nodes = vec![
            LayerNode::Conv(ConvLayer::new(3, 4, 3, &mut rng)),
            LayerNode::Relu(ReluLayer::new()),
            LayerNode::MaxPool(MaxPoolLayer::new()),
            LayerNode::Flatten(FlattenLayer::new()),
            LayerNode::Dense(DenseLayer::new(4 * 2 * 2, 10, &mut rng)),
        ];
        let mut x = Tensor::randn([2, 3, 4, 4], 1.0, &mut rng);
        for n in &mut nodes {
            x = n.forward(&x, Mode::Eval);
        }
        assert_eq!(x.shape().dims(), &[2, 10]);
    }
}

//! Architecture descriptors.
//!
//! MotherNet construction (paper §2.1) and τ-clustering (§2.3) operate on
//! *descriptions* of networks, not on weights: the MotherNet of an ensemble
//! is computed purely from the members' layer/block structure, and the
//! clustering condition compares parameter counts. This module is that
//! description language.
//!
//! Three families are supported, mirroring the paper:
//!
//! * [`Body::Mlp`] — fully-connected networks (paper §2.1, "Fully-connected
//!   networks"): MotherNets are built layer-by-layer.
//! * [`Body::Plain`] — VGG-style convolutional networks: blocks of
//!   stride-1 convolutions separated by 2×2 max pooling, followed by dense
//!   layers. MotherNets are built block-by-block.
//! * [`Body::Residual`] — ResNet-style networks: blocks of residual units
//!   separated by max pooling, with a global-average-pool head.
//!
//! Convolutional layers are written `<filter_size>:<filter_number>`
//! throughout, matching the paper's notation (e.g. `3:64`).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Input tensor geometry: channels × height × width.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct InputSpec {
    /// Number of input channels (3 for RGB image tasks).
    pub channels: usize,
    /// Input height in pixels.
    pub height: usize,
    /// Input width in pixels.
    pub width: usize,
}

impl InputSpec {
    /// Convenience constructor.
    pub fn new(channels: usize, height: usize, width: usize) -> Self {
        InputSpec {
            channels,
            height,
            width,
        }
    }
}

/// One convolutional layer inside a plain (VGG-style) block, in the paper's
/// `<filter_size>:<filter_number>` notation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct ConvLayerSpec {
    /// Square kernel extent (must be odd: 1, 3, 5, …).
    pub filter_size: usize,
    /// Number of output filters (channels).
    pub filters: usize,
}

impl ConvLayerSpec {
    /// Convenience constructor: `conv(3, 64)` is the paper's `3:64`.
    pub fn new(filter_size: usize, filters: usize) -> Self {
        ConvLayerSpec {
            filter_size,
            filters,
        }
    }
}

impl fmt::Display for ConvLayerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.filter_size, self.filters)
    }
}

/// A block of convolutional layers; blocks are separated by 2×2 max pooling.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct ConvBlockSpec {
    /// The block's layers, input side first.
    pub layers: Vec<ConvLayerSpec>,
}

impl ConvBlockSpec {
    /// Builds a block from `(filter_size, filters)` pairs.
    pub fn new(layers: Vec<ConvLayerSpec>) -> Self {
        ConvBlockSpec { layers }
    }

    /// Builds a block of `count` identical `filter_size:filters` layers —
    /// the paper's `(3:64)x2` shorthand.
    pub fn repeated(filter_size: usize, filters: usize, count: usize) -> Self {
        ConvBlockSpec {
            layers: vec![ConvLayerSpec::new(filter_size, filters); count],
        }
    }
}

impl fmt::Display for ConvBlockSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, l) in self.layers.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "]")
    }
}

/// A ResNet-style stage: `units` residual units, each two
/// `filter_size`×`filter_size` convolutions of `filters` channels with an
/// identity skip connection.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct ResBlockSpec {
    /// Number of residual units in the stage.
    pub units: usize,
    /// Channel width of every convolution in the stage.
    pub filters: usize,
    /// Square kernel extent of the unit convolutions (odd).
    pub filter_size: usize,
}

impl ResBlockSpec {
    /// Convenience constructor.
    pub fn new(units: usize, filters: usize, filter_size: usize) -> Self {
        ResBlockSpec {
            units,
            filters,
            filter_size,
        }
    }
}

impl fmt::Display for ResBlockSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}u {}:{}]", self.units, self.filter_size, self.filters)
    }
}

/// The trainable body of an architecture.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Body {
    /// Fully-connected: hidden layer widths, input side first.
    Mlp {
        /// Hidden layer widths.
        hidden: Vec<usize>,
    },
    /// VGG-style: convolutional blocks then dense hidden layers.
    Plain {
        /// Convolutional blocks, separated by 2×2 max pooling.
        blocks: Vec<ConvBlockSpec>,
        /// Hidden dense layer widths after flattening.
        dense: Vec<usize>,
    },
    /// ResNet-style: residual stages then a global-average-pool head.
    Residual {
        /// Residual stages, separated by 2×2 max pooling.
        blocks: Vec<ResBlockSpec>,
    },
}

/// Which structural family an architecture belongs to.
///
/// MotherNet construction requires all ensemble members to share a family;
/// see [`Architecture::family`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Family {
    /// Fully-connected networks.
    Mlp,
    /// VGG-style plain convolutional networks.
    Plain,
    /// ResNet-style residual networks.
    Residual,
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Family::Mlp => write!(f, "mlp"),
            Family::Plain => write!(f, "plain"),
            Family::Residual => write!(f, "residual"),
        }
    }
}

/// Errors produced when validating an [`Architecture`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ArchError {
    /// A kernel size was even or zero; same-padding needs odd kernels.
    InvalidFilterSize {
        /// The offending kernel extent.
        filter_size: usize,
    },
    /// A layer, block, or width count was zero.
    EmptyStructure {
        /// Human-readable description of what was empty.
        what: String,
    },
    /// The pooling pyramid exhausts the spatial extent.
    SpatialUnderflow {
        /// Number of pooling steps requested.
        pools: usize,
        /// Input spatial extent that cannot support them.
        extent: usize,
    },
    /// Two architectures that must be comparable are not (different family,
    /// input, classes or block count).
    Incompatible {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::InvalidFilterSize { filter_size } => {
                write!(
                    f,
                    "filter size {filter_size} is not an odd positive integer"
                )
            }
            ArchError::EmptyStructure { what } => write!(f, "empty structure: {what}"),
            ArchError::SpatialUnderflow { pools, extent } => {
                write!(f, "{pools} pooling steps exhaust spatial extent {extent}")
            }
            ArchError::Incompatible { reason } => write!(f, "incompatible architectures: {reason}"),
        }
    }
}

impl std::error::Error for ArchError {}

/// A complete description of a feed-forward network: input geometry, body,
/// and classifier width.
///
/// ```
/// use mn_nn::arch::{Architecture, ConvBlockSpec, InputSpec};
///
/// // A small VGG-style net: two conv blocks then a 32-wide dense layer.
/// let arch = Architecture::plain(
///     "tiny-vgg",
///     InputSpec::new(3, 8, 8),
///     10,
///     vec![ConvBlockSpec::repeated(3, 8, 2), ConvBlockSpec::repeated(3, 16, 2)],
///     vec![32],
/// );
/// arch.validate().unwrap();
/// assert!(arch.param_count() > 0);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Architecture {
    /// Human-readable name (e.g. `"V16"`).
    pub name: String,
    /// Input tensor geometry.
    pub input: InputSpec,
    /// Number of output class labels.
    pub num_classes: usize,
    /// The trainable body.
    pub body: Body,
}

impl Architecture {
    /// Creates a fully-connected architecture.
    pub fn mlp(
        name: impl Into<String>,
        input: InputSpec,
        num_classes: usize,
        hidden: Vec<usize>,
    ) -> Self {
        Architecture {
            name: name.into(),
            input,
            num_classes,
            body: Body::Mlp { hidden },
        }
    }

    /// Creates a VGG-style plain convolutional architecture.
    pub fn plain(
        name: impl Into<String>,
        input: InputSpec,
        num_classes: usize,
        blocks: Vec<ConvBlockSpec>,
        dense: Vec<usize>,
    ) -> Self {
        Architecture {
            name: name.into(),
            input,
            num_classes,
            body: Body::Plain { blocks, dense },
        }
    }

    /// Creates a ResNet-style residual architecture.
    pub fn residual(
        name: impl Into<String>,
        input: InputSpec,
        num_classes: usize,
        blocks: Vec<ResBlockSpec>,
    ) -> Self {
        Architecture {
            name: name.into(),
            input,
            num_classes,
            body: Body::Residual { blocks },
        }
    }

    /// The structural family of this architecture.
    pub fn family(&self) -> Family {
        match &self.body {
            Body::Mlp { .. } => Family::Mlp,
            Body::Plain { .. } => Family::Plain,
            Body::Residual { .. } => Family::Residual,
        }
    }

    /// Checks structural well-formedness.
    ///
    /// # Errors
    ///
    /// Returns an [`ArchError`] if any kernel is even/zero, any layer list
    /// or width is empty/zero, or pooling would exhaust the input's spatial
    /// extent.
    pub fn validate(&self) -> Result<(), ArchError> {
        if self.num_classes == 0 {
            return Err(ArchError::EmptyStructure {
                what: "num_classes".into(),
            });
        }
        if self.input.channels == 0 || self.input.height == 0 || self.input.width == 0 {
            return Err(ArchError::EmptyStructure {
                what: "input geometry".into(),
            });
        }
        match &self.body {
            Body::Mlp { hidden } => {
                if hidden.is_empty() {
                    return Err(ArchError::EmptyStructure {
                        what: "mlp hidden layers".into(),
                    });
                }
                if hidden.contains(&0) {
                    return Err(ArchError::EmptyStructure {
                        what: "mlp hidden width".into(),
                    });
                }
            }
            Body::Plain { blocks, dense } => {
                if blocks.is_empty() {
                    return Err(ArchError::EmptyStructure {
                        what: "conv blocks".into(),
                    });
                }
                for b in blocks {
                    if b.layers.is_empty() {
                        return Err(ArchError::EmptyStructure {
                            what: "conv block layers".into(),
                        });
                    }
                    for l in &b.layers {
                        if l.filter_size % 2 == 0 || l.filter_size == 0 {
                            return Err(ArchError::InvalidFilterSize {
                                filter_size: l.filter_size,
                            });
                        }
                        if l.filters == 0 {
                            return Err(ArchError::EmptyStructure {
                                what: "conv layer filters".into(),
                            });
                        }
                    }
                }
                if dense.contains(&0) {
                    return Err(ArchError::EmptyStructure {
                        what: "dense width".into(),
                    });
                }
                self.check_spatial(blocks.len())?;
            }
            Body::Residual { blocks } => {
                if blocks.is_empty() {
                    return Err(ArchError::EmptyStructure {
                        what: "residual blocks".into(),
                    });
                }
                for b in blocks {
                    if b.units == 0 {
                        return Err(ArchError::EmptyStructure {
                            what: "residual units".into(),
                        });
                    }
                    if b.filters == 0 {
                        return Err(ArchError::EmptyStructure {
                            what: "residual filters".into(),
                        });
                    }
                    if b.filter_size % 2 == 0 || b.filter_size == 0 {
                        return Err(ArchError::InvalidFilterSize {
                            filter_size: b.filter_size,
                        });
                    }
                }
                // Pooling between blocks only (blocks.len() - 1 pools).
                self.check_spatial(blocks.len() - 1)?;
            }
        }
        Ok(())
    }

    fn check_spatial(&self, pools: usize) -> Result<(), ArchError> {
        let mut h = self.input.height.min(self.input.width);
        for _ in 0..pools {
            h /= 2;
            if h == 0 {
                return Err(ArchError::SpatialUnderflow {
                    pools,
                    extent: self.input.height.min(self.input.width),
                });
            }
        }
        Ok(())
    }

    /// Spatial extent `(h, w)` after the convolutional body (before flatten
    /// / global pooling). Plain bodies pool after every block; residual
    /// bodies pool between blocks.
    pub fn spatial_after_body(&self) -> (usize, usize) {
        let (mut h, mut w) = (self.input.height, self.input.width);
        let pools = match &self.body {
            Body::Mlp { .. } => 0,
            Body::Plain { blocks, .. } => blocks.len(),
            Body::Residual { blocks } => blocks.len() - 1,
        };
        for _ in 0..pools {
            h /= 2;
            w /= 2;
        }
        (h, w)
    }

    /// Total number of trainable parameters (weights, biases, and
    /// batch-norm scale/shift), computed analytically from the description.
    ///
    /// This is the size measure `|N|` used by the clustering condition
    /// (paper §2.3). It is validated against the parameter count of a built
    /// network in the `mn-nn` tests.
    pub fn param_count(&self) -> u64 {
        let mut total: u64 = 0;
        match &self.body {
            Body::Mlp { hidden } => {
                let mut fan_in =
                    (self.input.channels * self.input.height * self.input.width) as u64;
                for &units in hidden {
                    total += fan_in * units as u64 + units as u64; // dense W + b
                    fan_in = units as u64;
                }
                total += fan_in * self.num_classes as u64 + self.num_classes as u64;
            }
            Body::Plain { blocks, dense } => {
                let mut c_in = self.input.channels as u64;
                for block in blocks {
                    for l in &block.layers {
                        let k = l.filter_size as u64;
                        let f = l.filters as u64;
                        total += f * c_in * k * k + f; // conv W + b
                        total += 2 * f; // batch-norm gamma + beta
                        c_in = f;
                    }
                }
                let (h, w) = self.spatial_after_body();
                let mut fan_in = c_in * h as u64 * w as u64;
                for &units in dense {
                    total += fan_in * units as u64 + units as u64;
                    fan_in = units as u64;
                }
                total += fan_in * self.num_classes as u64 + self.num_classes as u64;
            }
            Body::Residual { blocks } => {
                // Stem: 3x3 conv into the first block's width + BN.
                let mut c_in = self.input.channels as u64;
                let stem_f = blocks[0].filters as u64;
                total += stem_f * c_in * 9 + stem_f + 2 * stem_f;
                c_in = stem_f;
                for block in blocks {
                    let f = block.filters as u64;
                    let k = block.filter_size as u64;
                    // Every stage begins with a 1x1 transition conv + BN.
                    // Keeping the transition even when widths match gives
                    // every residual architecture the same node skeleton,
                    // which is what lets the morphism engine hatch any
                    // member from a MotherNet by pure weight transfer.
                    total += f * c_in + f + 2 * f;
                    c_in = f;
                    for _ in 0..block.units {
                        // Two convs + two BNs per unit.
                        total += 2 * (f * f * k * k + f) + 2 * (2 * f);
                    }
                }
                total += c_in * self.num_classes as u64 + self.num_classes as u64;
            }
        }
        total
    }

    /// A one-line structural summary, e.g.
    /// `V16 plain [3:8 3:8][3:16 3:16] d[32] (12345 params)`.
    pub fn summary(&self) -> String {
        let mut s = format!("{} {} ", self.name, self.family());
        match &self.body {
            Body::Mlp { hidden } => {
                s.push_str(&format!("h{hidden:?}"));
            }
            Body::Plain { blocks, dense } => {
                for b in blocks {
                    s.push_str(&format!("{b}"));
                }
                s.push_str(&format!(" d{dense:?}"));
            }
            Body::Residual { blocks } => {
                for b in blocks {
                    s.push_str(&format!("{b}"));
                }
            }
        }
        s.push_str(&format!(" ({} params)", self.param_count()));
        s
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input() -> InputSpec {
        InputSpec::new(3, 8, 8)
    }

    #[test]
    fn mlp_param_count() {
        let a = Architecture::mlp("m", input(), 10, vec![16, 8]);
        // 192*16+16 + 16*8+8 + 8*10+10 = 3088 + 136 + 90
        assert_eq!(a.param_count(), 3088 + 136 + 90);
    }

    #[test]
    fn plain_param_count() {
        let a = Architecture::plain(
            "p",
            input(),
            10,
            vec![ConvBlockSpec::repeated(3, 4, 1)],
            vec![8],
        );
        // conv: 4*3*9+4 = 112, bn: 8; flatten 4*4*4=64 -> dense 64*8+8=520,
        // classifier 8*10+10=90.
        assert_eq!(a.param_count(), 112 + 8 + 520 + 90);
    }

    #[test]
    fn residual_param_count() {
        let a = Architecture::residual("r", input(), 10, vec![ResBlockSpec::new(1, 4, 3)]);
        // stem: 4*3*9+4+8 = 120; transition: 4*4+4+8 = 28;
        // unit: 2*(4*4*9+4)+2*8 = 296+16; classifier: 4*10+10 = 50.
        assert_eq!(a.param_count(), 120 + 28 + 296 + 16 + 50);
    }

    #[test]
    fn residual_projection_counted_on_width_change() {
        let same = Architecture::residual(
            "r",
            input(),
            10,
            vec![ResBlockSpec::new(1, 4, 3), ResBlockSpec::new(1, 4, 3)],
        );
        let wider = Architecture::residual(
            "r",
            input(),
            10,
            vec![ResBlockSpec::new(1, 4, 3), ResBlockSpec::new(1, 8, 3)],
        );
        // The wider second block must include a projection's parameters.
        assert!(wider.param_count() > same.param_count());
    }

    #[test]
    fn validate_catches_even_kernel() {
        let a = Architecture::plain(
            "p",
            input(),
            10,
            vec![ConvBlockSpec::repeated(2, 4, 1)],
            vec![],
        );
        assert!(matches!(
            a.validate(),
            Err(ArchError::InvalidFilterSize { filter_size: 2 })
        ));
    }

    #[test]
    fn validate_catches_spatial_underflow() {
        let a = Architecture::plain(
            "p",
            InputSpec::new(3, 4, 4),
            10,
            vec![
                ConvBlockSpec::repeated(3, 4, 1),
                ConvBlockSpec::repeated(3, 4, 1),
                ConvBlockSpec::repeated(3, 4, 1),
            ],
            vec![],
        );
        assert!(matches!(
            a.validate(),
            Err(ArchError::SpatialUnderflow { .. })
        ));
    }

    #[test]
    fn validate_catches_empty() {
        let a = Architecture::mlp("m", input(), 10, vec![]);
        assert!(a.validate().is_err());
        let b = Architecture::plain(
            "p",
            input(),
            0,
            vec![ConvBlockSpec::repeated(3, 4, 1)],
            vec![],
        );
        assert!(b.validate().is_err());
    }

    #[test]
    fn spatial_after_body() {
        let a = Architecture::plain(
            "p",
            input(),
            10,
            vec![
                ConvBlockSpec::repeated(3, 4, 1),
                ConvBlockSpec::repeated(3, 4, 1),
            ],
            vec![],
        );
        assert_eq!(a.spatial_after_body(), (2, 2));
        let r = Architecture::residual(
            "r",
            input(),
            10,
            vec![ResBlockSpec::new(1, 4, 3), ResBlockSpec::new(1, 4, 3)],
        );
        assert_eq!(r.spatial_after_body(), (4, 4));
    }

    #[test]
    fn display_uses_paper_notation() {
        let spec = ConvLayerSpec::new(3, 64);
        assert_eq!(format!("{spec}"), "3:64");
        let block = ConvBlockSpec::repeated(3, 64, 2);
        assert_eq!(format!("{block}"), "[3:64 3:64]");
    }

    #[test]
    fn family_detection() {
        assert_eq!(
            Architecture::mlp("m", input(), 2, vec![4]).family(),
            Family::Mlp
        );
        assert_eq!(
            Architecture::plain(
                "p",
                input(),
                2,
                vec![ConvBlockSpec::repeated(3, 4, 1)],
                vec![]
            )
            .family(),
            Family::Plain
        );
        assert_eq!(
            Architecture::residual("r", input(), 2, vec![ResBlockSpec::new(1, 4, 3)]).family(),
            Family::Residual
        );
    }
}

//! Stochastic gradient descent with momentum and weight decay — the
//! optimizer family the paper trains with (§3).
//!
//! The update is **fused**: weight decay, momentum and the parameter
//! update run as one pass over each parameter buffer (no cloned
//! gradients, no temporaries), with large buffers split across rayon
//! workers through the shared chunk dispatcher. Each chunk runs the
//! dispatched kernel [`mn_tensor::simd::sgd_update_chunk`] — explicit
//! AVX2 on capable CPUs, portable scalar otherwise, bitwise identical
//! either way. Chunk boundaries are fixed (independent of the thread
//! count) and the update is elementwise, so results are bitwise
//! identical across thread counts *and* kernel backends.

use mn_tensor::chunking::for_each_chunk3;
use mn_tensor::Tensor;

use crate::layer::Param;
use crate::network::Network;

/// Fixed elements-per-chunk of the fused update (thread-count
/// independent, so parallelism cannot perturb results).
const FUSED_CHUNK: usize = 16 * 1024;

/// Below this many elements a parameter updates on the calling thread.
const PARALLEL_ELEMENT_THRESHOLD: usize = 64 * 1024;

/// SGD with classical momentum and decoupled L2 weight decay.
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight-decay coefficient (0 disables decay).
    pub weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive or `momentum` not in `[0, 1)`.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }

    /// Applies one update step to `params` and zeroes their gradients.
    ///
    /// Velocity buffers are created lazily on first use. If an individual
    /// parameter changes shape (e.g. after a width morphism), only
    /// **that** entry's velocity is reset — parameters whose list
    /// position and shape are unchanged keep their momentum. Pairing is
    /// positional: after a *structural* rewrite that shifts parameters to
    /// new list positions (e.g. inserting a layer mid-network), call
    /// [`Sgd::reset`] — a shifted parameter whose shape happens to match
    /// its slot's previous occupant would otherwise inherit that
    /// parameter's momentum. (The ensemble trainer always constructs a
    /// fresh optimizer per training run, so this only concerns callers
    /// that reuse one `Sgd` across morphisms.)
    pub fn step(&mut self, params: &mut [&mut Param]) {
        self.velocity.truncate(params.len());
        for (i, p) in params.iter_mut().enumerate() {
            self.update_entry(i, p);
        }
    }

    /// [`Sgd::step`] over a whole network without materializing the
    /// parameter list — the zero-allocation training-step path.
    pub fn step_network(&mut self, net: &mut Network) {
        let mut i = 0usize;
        net.visit_params_mut(&mut |p| {
            self.update_entry(i, p);
            i += 1;
        });
        self.velocity.truncate(i);
    }

    /// The fused per-parameter update: `g += wd·x; v = μ·v + g;
    /// x -= lr·v; g = 0` in one pass, chunk-parallel for large buffers.
    fn update_entry(&mut self, i: usize, p: &mut Param) {
        debug_assert!(i <= self.velocity.len());
        if i == self.velocity.len() {
            self.velocity.push(Tensor::zeros(p.value.shape()));
        } else if self.velocity[i].shape() != p.value.shape() {
            self.velocity[i] = Tensor::zeros(p.value.shape());
        }
        let v = &mut self.velocity[i];
        let (lr, mom, wd) = (self.lr, self.momentum, self.weight_decay);
        let worthwhile = p.value.len() >= PARALLEL_ELEMENT_THRESHOLD;
        for_each_chunk3(
            p.value.data_mut(),
            v.data_mut(),
            p.grad.data_mut(),
            FUSED_CHUNK,
            worthwhile,
            |_, value, vel, grad| {
                mn_tensor::simd::sgd_update_chunk(value, vel, grad, lr, mom, wd);
            },
        );
    }

    /// Resets momentum state (used when reusing an optimizer across runs).
    pub fn reset(&mut self) {
        self.velocity.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param(x0: f32) -> Param {
        Param::new(Tensor::from_vec([1], vec![x0]))
    }

    #[test]
    fn plain_sgd_descends_quadratic() {
        // minimize f(x) = x^2, grad = 2x.
        let mut p = quadratic_param(1.0);
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        for _ in 0..50 {
            let x = p.value[0];
            p.grad = Tensor::from_vec([1], vec![2.0 * x]);
            opt.step(&mut [&mut p]);
        }
        assert!(p.value[0].abs() < 1e-3, "x = {}", p.value[0]);
    }

    #[test]
    fn momentum_descends_quadratic() {
        let mut p = quadratic_param(1.0);
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        for _ in 0..100 {
            let x = p.value[0];
            p.grad = Tensor::from_vec([1], vec![2.0 * x]);
            opt.step(&mut [&mut p]);
        }
        assert!(p.value[0].abs() < 1e-2, "x = {}", p.value[0]);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut p = quadratic_param(1.0);
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        // Zero task gradient: only decay acts.
        p.grad = Tensor::zeros([1]);
        opt.step(&mut [&mut p]);
        assert!((p.value[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn step_zeroes_gradient() {
        let mut p = quadratic_param(1.0);
        p.grad = Tensor::ones([1]);
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        opt.step(&mut [&mut p]);
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    fn velocity_resets_on_shape_change() {
        let mut p = quadratic_param(1.0);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        p.grad = Tensor::ones([1]);
        opt.step(&mut [&mut p]);
        // Re-shape the parameter (as a morphism would).
        p.replace(Tensor::ones([3]));
        p.grad = Tensor::ones([3]);
        opt.step(&mut [&mut p]); // must not panic
        assert_eq!(p.value.len(), 3);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_zero_lr() {
        Sgd::new(0.0, 0.0, 0.0);
    }

    /// Hand-computed two-step momentum trace: lr = 0.1, μ = 0.9, g ≡ 1.
    ///
    /// step 1: v = 1,   x = 1 − 0.1·1   = 0.9
    /// step 2: v = 1.9, x = 0.9 − 0.19  = 0.71
    #[test]
    fn momentum_matches_hand_computed_trace() {
        let mut p = quadratic_param(1.0);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        p.grad = Tensor::ones([1]);
        opt.step(&mut [&mut p]);
        assert!((p.value[0] - 0.9).abs() < 1e-6, "step 1: {}", p.value[0]);
        p.grad = Tensor::ones([1]);
        opt.step(&mut [&mut p]);
        assert!((p.value[0] - 0.71).abs() < 1e-6, "step 2: {}", p.value[0]);
    }

    /// Hand-computed momentum + weight-decay interaction: the decay term
    /// is folded into the gradient *before* the velocity update
    /// (classical coupled L2).
    ///
    /// lr = 0.1, μ = 0.5, wd = 0.2, g ≡ 0, x₀ = 1:
    /// step 1: g' = 0.2,   v = 0.2,   x = 1 − 0.02   = 0.98
    /// step 2: g' = 0.196, v = 0.296, x = 0.98 − 0.0296 = 0.9504
    #[test]
    fn weight_decay_feeds_momentum() {
        let mut p = quadratic_param(1.0);
        let mut opt = Sgd::new(0.1, 0.5, 0.2);
        opt.step(&mut [&mut p]);
        assert!((p.value[0] - 0.98).abs() < 1e-6, "step 1: {}", p.value[0]);
        opt.step(&mut [&mut p]);
        assert!((p.value[0] - 0.9504).abs() < 1e-6, "step 2: {}", p.value[0]);
    }

    /// Velocity must survive across steps (regression: the optimizer used
    /// to re-zero the full velocity list whenever *any* shape mismatched).
    /// Reshaping one parameter resets only that entry's momentum.
    #[test]
    fn velocity_survives_other_params_shape_change() {
        let mut a = quadratic_param(1.0);
        let mut b = quadratic_param(1.0);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        // Step 1: both velocities become 1.
        a.grad = Tensor::ones([1]);
        b.grad = Tensor::ones([1]);
        opt.step(&mut [&mut a, &mut b]);
        // Reshape b (as a morphism would); a's momentum must persist.
        b.replace(Tensor::ones([3]));
        a.grad = Tensor::ones([1]);
        b.grad = Tensor::ones([3]);
        let a_before = a.value[0];
        let b_before = b.value[0];
        opt.step(&mut [&mut a, &mut b]);
        // a: v = 0.9·1 + 1 = 1.9 → surviving momentum.
        assert!(
            (a_before - a.value[0] - 0.19).abs() < 1e-6,
            "a's velocity was reset: Δ = {}",
            a_before - a.value[0]
        );
        // b: fresh velocity → v = 1 → plain step.
        assert!(
            (b_before - b.value[0] - 0.1).abs() < 1e-6,
            "b's velocity was not reset: Δ = {}",
            b_before - b.value[0]
        );
    }

    /// `step_network` must be equivalent to `step` over `params_mut()`.
    #[test]
    fn step_network_matches_step() {
        use crate::arch::{Architecture, InputSpec};
        use crate::layer::Mode;
        use crate::network::Network;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let arch = Architecture::mlp("m", InputSpec::new(1, 2, 2), 3, vec![8]);
        let mut via_list = Network::seeded(&arch, 3);
        let mut via_visit = Network::seeded(&arch, 3);
        let x = Tensor::randn([4, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(4));
        let mut opt_a = Sgd::new(0.05, 0.9, 1e-4);
        let mut opt_b = Sgd::new(0.05, 0.9, 1e-4);
        for _ in 0..3 {
            let ya = via_list.forward(&x, Mode::Train);
            via_list.backward(&ya);
            let mut params = via_list.params_mut();
            opt_a.step(&mut params);

            let yb = via_visit.forward(&x, Mode::Train);
            via_visit.backward(&yb);
            opt_b.step_network(&mut via_visit);
        }
        let pa = via_list.params_mut();
        let pb = via_visit.params_mut();
        for (a, b) in pa.iter().zip(pb.iter()) {
            assert_eq!(a.value.data(), b.value.data());
        }
    }
}

//! Stochastic gradient descent with momentum and weight decay — the
//! optimizer family the paper trains with (§3).

use mn_tensor::Tensor;

use crate::layer::Param;

/// SGD with classical momentum and decoupled L2 weight decay.
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight-decay coefficient (0 disables decay).
    pub weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive or `momentum` not in `[0, 1)`.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }

    /// Applies one update step to `params` and zeroes their gradients.
    ///
    /// Velocity buffers are created lazily on first use; if the parameter
    /// list changes shape (e.g. after a morphism) the buffers are reset.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        let shapes_match = self.velocity.len() == params.len()
            && self
                .velocity
                .iter()
                .zip(params.iter())
                .all(|(v, p)| v.shape() == p.value.shape());
        if !shapes_match {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape().dims().to_vec()))
                .collect();
        }
        for (p, v) in params.iter_mut().zip(self.velocity.iter_mut()) {
            if self.weight_decay > 0.0 {
                let wd = self.weight_decay;
                let value = p.value.clone();
                p.grad.axpy(wd, &value);
            }
            if self.momentum > 0.0 {
                v.scale(self.momentum);
                v.add_assign(&p.grad);
                p.value.axpy(-self.lr, v);
            } else {
                let grad = p.grad.clone();
                p.value.axpy(-self.lr, &grad);
            }
            p.zero_grad();
        }
    }

    /// Resets momentum state (used when reusing an optimizer across runs).
    pub fn reset(&mut self) {
        self.velocity.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param(x0: f32) -> Param {
        Param::new(Tensor::from_vec([1], vec![x0]))
    }

    #[test]
    fn plain_sgd_descends_quadratic() {
        // minimize f(x) = x^2, grad = 2x.
        let mut p = quadratic_param(1.0);
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        for _ in 0..50 {
            let x = p.value[0];
            p.grad = Tensor::from_vec([1], vec![2.0 * x]);
            opt.step(&mut [&mut p]);
        }
        assert!(p.value[0].abs() < 1e-3, "x = {}", p.value[0]);
    }

    #[test]
    fn momentum_descends_quadratic() {
        let mut p = quadratic_param(1.0);
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        for _ in 0..100 {
            let x = p.value[0];
            p.grad = Tensor::from_vec([1], vec![2.0 * x]);
            opt.step(&mut [&mut p]);
        }
        assert!(p.value[0].abs() < 1e-2, "x = {}", p.value[0]);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut p = quadratic_param(1.0);
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        // Zero task gradient: only decay acts.
        p.grad = Tensor::zeros([1]);
        opt.step(&mut [&mut p]);
        assert!((p.value[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn step_zeroes_gradient() {
        let mut p = quadratic_param(1.0);
        p.grad = Tensor::ones([1]);
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        opt.step(&mut [&mut p]);
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    fn velocity_resets_on_shape_change() {
        let mut p = quadratic_param(1.0);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        p.grad = Tensor::ones([1]);
        opt.step(&mut [&mut p]);
        // Re-shape the parameter (as a morphism would).
        p.replace(Tensor::ones([3]));
        p.grad = Tensor::ones([3]);
        opt.step(&mut [&mut p]); // must not panic
        assert_eq!(p.value.len(), 3);
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn rejects_zero_lr() {
        Sgd::new(0.0, 0.0, 0.0);
    }
}

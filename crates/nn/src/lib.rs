//! # mn-nn
//!
//! Neural networks for the MotherNets reproduction: architecture
//! descriptors, a layer zoo with exact backpropagation, and a mini-batch
//! SGD training loop with the paper's uniform convergence criterion.
//!
//! The crate splits a network into two representations:
//!
//! * [`arch::Architecture`] — the *description* (blocks, layers, widths,
//!   kernel sizes). MotherNet construction and τ-clustering (in the
//!   `mothernets` crate) operate purely on descriptions.
//! * [`network::Network`] — the *executable*: a sequence of
//!   [`node::LayerNode`]s with weights, built from a description.
//!
//! The `mn-morph` crate rewrites a `Network` structurally (widening,
//! deepening, filter growth) while preserving its function; the enum-based
//! [`node::LayerNode`] exists to make those rewrites pattern-matchable.
//!
//! ## Example: build and train a small convolutional network
//!
//! ```
//! use mn_nn::arch::{Architecture, ConvBlockSpec, InputSpec};
//! use mn_nn::network::Network;
//! use mn_nn::train::{train, TrainConfig};
//! use mn_tensor::Tensor;
//!
//! let arch = Architecture::plain(
//!     "tiny",
//!     InputSpec::new(1, 4, 4),
//!     2,
//!     vec![ConvBlockSpec::repeated(3, 4, 1)],
//!     vec![8],
//! );
//! let mut net = Network::seeded(&arch, 0);
//! // Trivial two-class data: all-zeros vs all-ones images.
//! let mut x = Tensor::zeros([8, 1, 4, 4]);
//! for i in 4..8 { for j in 0..16 { x[i * 16 + j] = 1.0; } }
//! let y = vec![0, 0, 0, 0, 1, 1, 1, 1];
//! let cfg = TrainConfig { max_epochs: 5, batch_size: 4, ..TrainConfig::default() };
//! let report = train(&mut net, &x, &y, &x, &y, &cfg);
//! assert!(report.final_val.loss.is_finite());
//! ```

pub mod arch;
pub mod confusion;
pub mod io;
pub mod layer;
pub mod layers;
pub mod loss;
pub mod metrics;
pub mod network;
pub mod node;
pub mod optim;
pub mod schedule;
pub mod train;

pub use arch::{Architecture, Body, Family, InputSpec};
pub use layer::{Mode, Param};
pub use network::Network;
pub use node::LayerNode;
pub use schedule::LrSchedule;

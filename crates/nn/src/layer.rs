//! Shared layer machinery: trainable parameters and execution mode.

use mn_tensor::Tensor;

/// A trainable parameter: a value tensor and its accumulated gradient.
#[derive(Clone, Debug)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient of the loss w.r.t. `value`, filled by the backward pass.
    pub grad: Tensor,
}

impl Param {
    /// Wraps a value tensor with a zeroed gradient of the same shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }

    /// Replaces the value and resizes the gradient to match (used by the
    /// morphism engine when a parameter changes shape).
    pub fn replace(&mut self, value: Tensor) {
        self.grad = Tensor::zeros(value.shape());
        self.value = value;
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty (never true for valid tensors).
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Zeroes the gradient in place.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }
}

/// Execution mode of a forward pass.
///
/// Batch normalization behaves differently in the two modes: `Train` uses
/// batch statistics (and updates running statistics); `Eval` uses the frozen
/// running statistics. Function preservation of the morphism engine is exact
/// in `Eval` mode (see `mn-morph`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Training: batch statistics, caches retained for backward.
    Train,
    /// Inference: running statistics, no parameter updates expected.
    Eval,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_tracks_shapes() {
        let mut p = Param::new(Tensor::ones([2, 3]));
        assert_eq!(p.len(), 6);
        assert_eq!(p.grad.len(), 6);
        p.replace(Tensor::zeros([4]));
        assert_eq!(p.len(), 4);
        assert_eq!(p.grad.len(), 4);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::ones([3]));
        p.grad = Tensor::ones([3]);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }
}

//! Softmax cross-entropy loss.

use mn_tensor::{ops, Tensor, Workspace};

/// Mean softmax cross-entropy over a batch, plus the gradient w.r.t. the
/// logits.
///
/// `logits` is `[N, K]`, `labels` has length `N` with entries `< K`.
/// The returned gradient is `(softmax(logits) − onehot(labels)) / N`.
///
/// # Panics
///
/// Panics on shape mismatch or out-of-range labels.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    softmax_cross_entropy_ws(logits, labels, &mut Workspace::new())
}

/// [`softmax_cross_entropy`] staging the returned gradient tensor in a
/// [`Workspace`] — the training loop's per-step hot path.
///
/// # Panics
///
/// Panics on shape mismatch or out-of-range labels.
pub fn softmax_cross_entropy_ws(
    logits: &Tensor,
    labels: &[usize],
    ws: &mut Workspace,
) -> (f32, Tensor) {
    let n = logits.shape().dim(0);
    let k = logits.shape().dim(1);
    assert_eq!(
        labels.len(),
        n,
        "labels length {} != batch {n}",
        labels.len()
    );
    let mut probs = ws.acquire_uninit([n, k]);
    probs.data_mut().copy_from_slice(logits.data());
    ops::softmax_rows(&mut probs);
    let mut loss = 0.0f32;
    {
        let pd = probs.data();
        for (i, &label) in labels.iter().enumerate() {
            assert!(label < k, "label {label} out of range for {k} classes");
            // Clamp to avoid -inf on a confidently wrong prediction.
            loss -= pd[i * k + label].max(1e-12).ln();
        }
    }
    loss /= n as f32;
    let inv_n = 1.0 / n as f32;
    {
        let pd = probs.data_mut();
        for (i, &label) in labels.iter().enumerate() {
            pd[i * k + label] -= 1.0;
        }
        pd.iter_mut().for_each(|v| *v *= inv_n);
    }
    (loss, probs)
}

/// Mean cross-entropy of already-softmaxed probabilities against labels
/// (no gradient) — used when evaluating ensembles whose combination step
/// produces probabilities directly.
///
/// # Panics
///
/// Panics on shape mismatch or out-of-range labels.
pub fn nll_of_probs(probs: &Tensor, labels: &[usize]) -> f32 {
    let n = probs.shape().dim(0);
    let k = probs.shape().dim(1);
    assert_eq!(
        labels.len(),
        n,
        "labels length {} != batch {n}",
        labels.len()
    );
    let pd = probs.data();
    let mut loss = 0.0f32;
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < k, "label {label} out of range for {k} classes");
        loss -= pd[i * k + label].max(1e-12).ln();
    }
    loss / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Tensor::zeros([2, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn perfect_prediction_low_loss() {
        let mut logits = Tensor::zeros([1, 3]);
        logits[1] = 50.0;
        let (loss, _) = softmax_cross_entropy(&logits, &[1]);
        assert!(loss < 1e-4, "loss {loss}");
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut logits = Tensor::from_vec([2, 3], vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0]);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for idx in 0..6 {
            let orig = logits[idx];
            logits[idx] = orig + eps;
            let (lp, _) = softmax_cross_entropy(&logits, &labels);
            logits[idx] = orig - eps;
            let (lm, _) = softmax_cross_entropy(&logits, &labels);
            logits[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad[idx]).abs() < 1e-3,
                "grad mismatch at {idx}: {numeric} vs {}",
                grad[idx]
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec([1, 3], vec![1.0, 2.0, 3.0]);
        let (_, grad) = softmax_cross_entropy(&logits, &[0]);
        let sum: f32 = grad.data().iter().sum();
        assert!(sum.abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_label() {
        softmax_cross_entropy(&Tensor::zeros([1, 2]), &[5]);
    }

    #[test]
    fn nll_of_probs_matches() {
        let probs = Tensor::from_vec([1, 2], vec![0.25, 0.75]);
        assert!((nll_of_probs(&probs, &[1]) - (-0.75f32.ln())).abs() < 1e-6);
    }
}

//! Mini-batch SGD training loop with the paper's uniform convergence
//! criterion.
//!
//! The paper trains every network — MotherNets, hatched members, and
//! baseline members — with "the same convergence criterion … across all
//! networks" (§3). Here that criterion is *relative* validation-loss
//! patience: training stops once the validation loss has failed to improve
//! by at least a `min_delta` **fraction** for `patience` consecutive epochs
//! (or at `max_epochs`). A relative criterion is what lets a network
//! hatched from a trained MotherNet — which starts at a low loss and can
//! only improve slowly — stop after a handful of epochs, while a
//! from-scratch network keeps earning its large early improvements; this
//! asymmetry is the paper's per-network speedup.
//!
//! The reported [`TrainReport`] carries both wall-clock seconds and a
//! deterministic cost counter (gradient steps × parameter count), which the
//! benchmark harness uses to make figure shapes reproducible on noisy
//! hardware (see DESIGN.md §4).

use std::time::Instant;

use mn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::layer::Mode;
use crate::loss::softmax_cross_entropy;
use crate::metrics::{evaluate, gather_examples, Evaluation};
use crate::network::Network;
use crate::optim::Sgd;
use crate::schedule::LrSchedule;

/// Hyper-parameters of a training run.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Learning-rate schedule (multiplier on `lr` per epoch).
    pub schedule: LrSchedule,
    /// Hard cap on epochs.
    pub max_epochs: usize,
    /// Epochs without `min_delta` improvement before stopping.
    pub patience: usize,
    /// Minimum *relative* validation-loss improvement that resets patience
    /// (e.g. `0.01` = 1 %).
    pub min_delta: f32,
    /// Seed for epoch shuffling.
    pub shuffle_seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            schedule: LrSchedule::default(),
            max_epochs: 30,
            patience: 3,
            min_delta: 0.01,
            shuffle_seed: 0,
        }
    }
}

impl TrainConfig {
    /// Returns a copy with a different epoch cap.
    pub fn with_max_epochs(mut self, max_epochs: usize) -> Self {
        self.max_epochs = max_epochs;
        self
    }

    /// Returns a copy with a different shuffle seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.shuffle_seed = seed;
        self
    }
}

/// Per-epoch statistics.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f32,
    /// Validation loss after the epoch.
    pub val_loss: f32,
    /// Validation error rate after the epoch.
    pub val_error: f32,
    /// Wall-clock seconds spent in the epoch (including validation).
    pub wall_secs: f64,
}

/// Outcome of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Per-epoch statistics, in order.
    pub epochs: Vec<EpochStats>,
    /// Total wall-clock seconds.
    pub wall_secs: f64,
    /// Total number of gradient steps taken.
    pub gradient_steps: u64,
    /// Deterministic cost proxy: gradient steps × parameter count.
    pub cost_units: f64,
    /// Whether the patience criterion fired (vs. hitting `max_epochs`).
    pub converged: bool,
    /// Validation statistics at the end of training.
    pub final_val: Evaluation,
}

impl TrainReport {
    /// Number of epochs actually run.
    pub fn epochs_run(&self) -> usize {
        self.epochs.len()
    }
}

/// Trains `net` on `(x_train, y_train)` until convergence, validating on
/// `(x_val, y_val)`.
///
/// # Panics
///
/// Panics on empty inputs or label/example count mismatches.
pub fn train(
    net: &mut Network,
    x_train: &Tensor,
    y_train: &[usize],
    x_val: &Tensor,
    y_val: &[usize],
    cfg: &TrainConfig,
) -> TrainReport {
    let n = x_train.shape().dim(0);
    assert_eq!(y_train.len(), n, "train labels length mismatch");
    assert!(n > 0, "empty training set");
    assert!(cfg.batch_size > 0, "batch size must be positive");
    assert!(cfg.max_epochs > 0, "max_epochs must be positive");

    let mut opt = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay);
    let mut rng = StdRng::seed_from_u64(cfg.shuffle_seed);
    let param_count = net.param_count() as f64;

    let start = Instant::now();
    let mut epochs = Vec::new();
    let mut steps: u64 = 0;
    let mut best_val = f32::INFINITY;
    let mut wait = 0usize;
    let mut converged = false;

    let mut order: Vec<usize> = (0..n).collect();
    for epoch in 0..cfg.max_epochs {
        let epoch_start = Instant::now();
        opt.lr = cfg.lr * cfg.schedule.factor(epoch);
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut seen = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            // Skip a trailing chunk of size 1: batch norm needs >= 2
            // elements per channel in training mode.
            if chunk.len() < 2 && cfg.batch_size >= 2 {
                continue;
            }
            let xb = gather_examples(x_train, chunk);
            let yb: Vec<usize> = chunk.iter().map(|&i| y_train[i]).collect();
            let logits = net.forward(&xb, Mode::Train);
            let (loss, grad) = softmax_cross_entropy(&logits, &yb);
            net.backward(&grad);
            let mut params = net.params_mut();
            opt.step(&mut params);
            epoch_loss += loss as f64 * chunk.len() as f64;
            seen += chunk.len();
            steps += 1;
        }
        let val = evaluate(net, x_val, y_val, cfg.batch_size);
        epochs.push(EpochStats {
            epoch,
            train_loss: if seen > 0 {
                (epoch_loss / seen as f64) as f32
            } else {
                f32::NAN
            },
            val_loss: val.loss,
            val_error: val.error,
            wall_secs: epoch_start.elapsed().as_secs_f64(),
        });

        let improved = val.loss.is_finite()
            && (best_val.is_infinite() || val.loss < best_val * (1.0 - cfg.min_delta));
        if improved {
            best_val = val.loss;
            wait = 0;
        } else {
            wait += 1;
            if wait >= cfg.patience {
                converged = true;
                break;
            }
        }
    }

    net.clear_caches();
    let final_val = evaluate(net, x_val, y_val, cfg.batch_size);
    TrainReport {
        epochs,
        wall_secs: start.elapsed().as_secs_f64(),
        gradient_steps: steps,
        cost_units: steps as f64 * param_count,
        converged,
        final_val,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{Architecture, InputSpec};

    /// A linearly separable toy problem: class = argmax over channel means.
    fn toy_data(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Tensor::randn([n, 3, 4, 4], 0.3, &mut rng);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 3;
            labels.push(class);
            for h in 0..4 {
                for w in 0..4 {
                    *x.at4_mut(i, class, h, w) += 1.5;
                }
            }
        }
        (x, labels)
    }

    #[test]
    fn training_reduces_error_on_separable_task() {
        let (x_train, y_train) = toy_data(120, 1);
        let (x_val, y_val) = toy_data(60, 2);
        let arch = Architecture::mlp("m", InputSpec::new(3, 4, 4), 3, vec![16]);
        let mut net = Network::seeded(&arch, 3);
        let before = evaluate(&mut net, &x_val, &y_val, 32);
        let cfg = TrainConfig {
            max_epochs: 15,
            patience: 5,
            ..TrainConfig::default()
        };
        let report = train(&mut net, &x_train, &y_train, &x_val, &y_val, &cfg);
        assert!(report.final_val.error < before.error, "no improvement");
        assert!(
            report.final_val.error < 0.2,
            "error too high: {}",
            report.final_val.error
        );
        assert!(report.gradient_steps > 0);
        assert!(report.cost_units > 0.0);
        assert_eq!(report.epochs_run(), report.epochs.len());
    }

    #[test]
    fn early_stopping_fires_on_plateau() {
        let (x, y) = toy_data(60, 4);
        let arch = Architecture::mlp("m", InputSpec::new(3, 4, 4), 3, vec![8]);
        let mut net = Network::seeded(&arch, 5);
        // Impossible relative improvement threshold (>100 %): nothing can
        // ever improve after the first epoch.
        let cfg = TrainConfig {
            max_epochs: 50,
            patience: 2,
            min_delta: 2.0,
            ..TrainConfig::default()
        };
        let report = train(&mut net, &x, &y, &x, &y, &cfg);
        assert!(report.converged);
        // Epoch 0 always "improves" from infinity; then `patience` epochs
        // without improvement.
        assert_eq!(report.epochs_run(), 1 + cfg.patience);
    }

    #[test]
    fn deterministic_given_seeds() {
        let (x, y) = toy_data(40, 6);
        let arch = Architecture::mlp("m", InputSpec::new(3, 4, 4), 3, vec![8]);
        let cfg = TrainConfig {
            max_epochs: 3,
            ..TrainConfig::default()
        };
        let mut a = Network::seeded(&arch, 7);
        let mut b = Network::seeded(&arch, 7);
        let ra = train(&mut a, &x, &y, &x, &y, &cfg);
        let rb = train(&mut b, &x, &y, &x, &y, &cfg);
        assert_eq!(ra.final_val.loss, rb.final_val.loss);
        assert_eq!(ra.gradient_steps, rb.gradient_steps);
    }

    #[test]
    #[should_panic(expected = "labels length mismatch")]
    fn validates_label_count() {
        let arch = Architecture::mlp("m", InputSpec::new(3, 4, 4), 3, vec![8]);
        let mut net = Network::seeded(&arch, 8);
        let x = Tensor::zeros([4, 3, 4, 4]);
        train(
            &mut net,
            &x,
            &[0, 1],
            &x,
            &[0, 1, 2, 0],
            &TrainConfig::default(),
        );
    }
}

//! Mini-batch SGD training loop with the paper's uniform convergence
//! criterion.
//!
//! The paper trains every network — MotherNets, hatched members, and
//! baseline members — with "the same convergence criterion … across all
//! networks" (§3). Here that criterion is *relative* validation-loss
//! patience: training stops once the validation loss has failed to improve
//! by at least a `min_delta` **fraction** for `patience` consecutive epochs
//! (or at `max_epochs`). A relative criterion is what lets a network
//! hatched from a trained MotherNet — which starts at a low loss and can
//! only improve slowly — stop after a handful of epochs, while a
//! from-scratch network keeps earning its large early improvements; this
//! asymmetry is the paper's per-network speedup.
//!
//! The reported [`TrainReport`] carries both wall-clock seconds and a
//! deterministic cost counter (gradient steps × parameter count), which the
//! benchmark harness uses to make figure shapes reproducible on noisy
//! hardware (see DESIGN.md §4).

use std::time::Instant;

use mn_tensor::{Tensor, Workspace};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::layer::Mode;
use crate::loss::softmax_cross_entropy_ws;
use crate::metrics::{evaluate, gather_examples_into, Evaluation};
use crate::network::Network;
use crate::optim::Sgd;
use crate::schedule::LrSchedule;

/// Hyper-parameters of a training run.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Learning-rate schedule (multiplier on `lr` per epoch).
    pub schedule: LrSchedule,
    /// Hard cap on epochs.
    pub max_epochs: usize,
    /// Epochs without `min_delta` improvement before stopping.
    pub patience: usize,
    /// Minimum *relative* validation-loss improvement that resets patience
    /// (e.g. `0.01` = 1 %).
    pub min_delta: f32,
    /// Seed for epoch shuffling.
    pub shuffle_seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            schedule: LrSchedule::default(),
            max_epochs: 30,
            patience: 3,
            min_delta: 0.01,
            shuffle_seed: 0,
        }
    }
}

impl TrainConfig {
    /// Returns a copy with a different epoch cap.
    pub fn with_max_epochs(mut self, max_epochs: usize) -> Self {
        self.max_epochs = max_epochs;
        self
    }

    /// Returns a copy with a different shuffle seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.shuffle_seed = seed;
        self
    }
}

/// Per-epoch statistics.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f32,
    /// Validation loss after the epoch.
    pub val_loss: f32,
    /// Validation error rate after the epoch.
    pub val_error: f32,
    /// Wall-clock seconds spent in the epoch (including validation).
    pub wall_secs: f64,
}

/// Outcome of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Per-epoch statistics, in order.
    pub epochs: Vec<EpochStats>,
    /// Total wall-clock seconds.
    pub wall_secs: f64,
    /// Total number of gradient steps taken.
    pub gradient_steps: u64,
    /// Deterministic cost proxy: gradient steps × parameter count.
    pub cost_units: f64,
    /// Whether the patience criterion fired (vs. hitting `max_epochs`).
    pub converged: bool,
    /// Validation statistics at the end of training.
    pub final_val: Evaluation,
}

impl TrainReport {
    /// Number of epochs actually run.
    pub fn epochs_run(&self) -> usize {
        self.epochs.len()
    }
}

/// Splits `n` examples into mini-batch ranges of `batch_size`, merging a
/// trailing range of size 1 into its predecessor (batch norm needs ≥ 2
/// elements per channel in train mode, and dropping the example would
/// silently shrink the epoch). A lone size-1 range (`n == 1`) is kept.
fn batch_ranges(n: usize, batch_size: usize) -> impl Iterator<Item = std::ops::Range<usize>> {
    let merge_tail = batch_size >= 2 && n > batch_size && n % batch_size == 1;
    let mut starts: Vec<usize> = (0..n).step_by(batch_size).collect();
    if merge_tail {
        starts.pop(); // the last range absorbs the trailing example
    }
    let count = starts.len();
    starts.into_iter().enumerate().map(move |(i, s)| {
        s..if i + 1 == count {
            n
        } else {
            (s + batch_size).min(n)
        }
    })
}

/// Trains `net` on `(x_train, y_train)` until convergence, validating on
/// `(x_val, y_val)`.
///
/// # Panics
///
/// Panics on empty inputs or label/example count mismatches. A training
/// set of exactly one example trains with a batch of 1 (rather than
/// silently skipping it), which batch-norm networks reject loudly
/// ("needs >= 2 elements per channel").
pub fn train(
    net: &mut Network,
    x_train: &Tensor,
    y_train: &[usize],
    x_val: &Tensor,
    y_val: &[usize],
    cfg: &TrainConfig,
) -> TrainReport {
    train_with(
        net,
        x_train,
        y_train,
        x_val,
        y_val,
        cfg,
        &mut Workspace::new(),
    )
}

/// [`train`] staging every per-step buffer — mini-batch gather, forward
/// activations, loss gradient, backward gradients, layer caches and
/// kernel scratch — in the caller's [`Workspace`].
///
/// After the first step of the first epoch the workspace reaches its
/// high-water set of buffers and a steady-state training step performs no
/// heap allocation (the optimizer's velocity buffers persist inside
/// [`Sgd`]). Callers that train many networks (the ensemble trainer's
/// per-worker jobs) pass a retained workspace so the pool survives across
/// member fine-tunes of equal geometry.
///
/// # Panics
///
/// Same conditions as [`train`].
#[allow(clippy::too_many_arguments)]
pub fn train_with(
    net: &mut Network,
    x_train: &Tensor,
    y_train: &[usize],
    x_val: &Tensor,
    y_val: &[usize],
    cfg: &TrainConfig,
    ws: &mut Workspace,
) -> TrainReport {
    let n = x_train.shape().dim(0);
    assert_eq!(y_train.len(), n, "train labels length mismatch");
    assert!(n > 0, "empty training set");
    assert!(cfg.batch_size > 0, "batch size must be positive");
    assert!(cfg.max_epochs > 0, "max_epochs must be positive");

    let mut opt = Sgd::new(cfg.lr, cfg.momentum, cfg.weight_decay);
    let mut rng = StdRng::seed_from_u64(cfg.shuffle_seed);
    let param_count = net.param_count() as f64;

    let start = Instant::now();
    let mut epochs = Vec::new();
    let mut steps: u64 = 0;
    let mut best_val = f32::INFINITY;
    let mut wait = 0usize;
    let mut converged = false;

    let mut order: Vec<usize> = (0..n).collect();
    // Persistent label buffer: reused across every step of the run.
    let mut yb: Vec<usize> = Vec::with_capacity(cfg.batch_size + 1);
    for epoch in 0..cfg.max_epochs {
        let epoch_start = Instant::now();
        opt.lr = cfg.lr * cfg.schedule.factor(epoch);
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut seen = 0usize;
        for range in batch_ranges(n, cfg.batch_size) {
            let chunk = &order[range];
            let mut xb = ws.acquire_uninit(x_train.shape().with_dim(0, chunk.len()));
            gather_examples_into(x_train, chunk, &mut xb);
            yb.clear();
            yb.extend(chunk.iter().map(|&i| y_train[i]));
            let logits = net.forward_with(&xb, Mode::Train, ws);
            ws.release(xb);
            let (loss, grad) = softmax_cross_entropy_ws(&logits, &yb, ws);
            ws.release(logits);
            net.backward_with(&grad, ws);
            ws.release(grad);
            opt.step_network(net);
            epoch_loss += loss as f64 * chunk.len() as f64;
            seen += chunk.len();
            steps += 1;
        }
        let val = evaluate(net, x_val, y_val, cfg.batch_size);
        epochs.push(EpochStats {
            epoch,
            train_loss: if seen > 0 {
                (epoch_loss / seen as f64) as f32
            } else {
                f32::NAN
            },
            val_loss: val.loss,
            val_error: val.error,
            wall_secs: epoch_start.elapsed().as_secs_f64(),
        });

        let improved = val.loss.is_finite()
            && (best_val.is_infinite() || val.loss < best_val * (1.0 - cfg.min_delta));
        if improved {
            best_val = val.loss;
            wait = 0;
        } else {
            wait += 1;
            if wait >= cfg.patience {
                converged = true;
                break;
            }
        }
    }

    net.clear_caches();
    let final_val = evaluate(net, x_val, y_val, cfg.batch_size);
    TrainReport {
        epochs,
        wall_secs: start.elapsed().as_secs_f64(),
        gradient_steps: steps,
        cost_units: steps as f64 * param_count,
        converged,
        final_val,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{Architecture, InputSpec};

    /// A linearly separable toy problem: class = argmax over channel means.
    fn toy_data(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Tensor::randn([n, 3, 4, 4], 0.3, &mut rng);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 3;
            labels.push(class);
            for h in 0..4 {
                for w in 0..4 {
                    *x.at4_mut(i, class, h, w) += 1.5;
                }
            }
        }
        (x, labels)
    }

    #[test]
    fn training_reduces_error_on_separable_task() {
        let (x_train, y_train) = toy_data(120, 1);
        let (x_val, y_val) = toy_data(60, 2);
        let arch = Architecture::mlp("m", InputSpec::new(3, 4, 4), 3, vec![16]);
        let mut net = Network::seeded(&arch, 3);
        let before = evaluate(&mut net, &x_val, &y_val, 32);
        let cfg = TrainConfig {
            max_epochs: 15,
            patience: 5,
            ..TrainConfig::default()
        };
        let report = train(&mut net, &x_train, &y_train, &x_val, &y_val, &cfg);
        assert!(report.final_val.error < before.error, "no improvement");
        assert!(
            report.final_val.error < 0.2,
            "error too high: {}",
            report.final_val.error
        );
        assert!(report.gradient_steps > 0);
        assert!(report.cost_units > 0.0);
        assert_eq!(report.epochs_run(), report.epochs.len());
    }

    #[test]
    fn early_stopping_fires_on_plateau() {
        let (x, y) = toy_data(60, 4);
        let arch = Architecture::mlp("m", InputSpec::new(3, 4, 4), 3, vec![8]);
        let mut net = Network::seeded(&arch, 5);
        // Impossible relative improvement threshold (>100 %): nothing can
        // ever improve after the first epoch.
        let cfg = TrainConfig {
            max_epochs: 50,
            patience: 2,
            min_delta: 2.0,
            ..TrainConfig::default()
        };
        let report = train(&mut net, &x, &y, &x, &y, &cfg);
        assert!(report.converged);
        // Epoch 0 always "improves" from infinity; then `patience` epochs
        // without improvement.
        assert_eq!(report.epochs_run(), 1 + cfg.patience);
    }

    #[test]
    fn deterministic_given_seeds() {
        let (x, y) = toy_data(40, 6);
        let arch = Architecture::mlp("m", InputSpec::new(3, 4, 4), 3, vec![8]);
        let cfg = TrainConfig {
            max_epochs: 3,
            ..TrainConfig::default()
        };
        let mut a = Network::seeded(&arch, 7);
        let mut b = Network::seeded(&arch, 7);
        let ra = train(&mut a, &x, &y, &x, &y, &cfg);
        let rb = train(&mut b, &x, &y, &x, &y, &cfg);
        assert_eq!(ra.final_val.loss, rb.final_val.loss);
        assert_eq!(ra.gradient_steps, rb.gradient_steps);
    }

    #[test]
    fn batch_ranges_merge_trailing_singleton() {
        // 33 examples at batch 32: one merged batch of 33 (no drop).
        let r: Vec<_> = batch_ranges(33, 32).collect();
        assert_eq!(r, vec![0..33]);
        // 65 at 32: 0..32, 32..65.
        let r: Vec<_> = batch_ranges(65, 32).collect();
        assert_eq!(r, vec![0..32, 32..65]);
        // Exact multiples and non-singleton tails are untouched.
        let r: Vec<_> = batch_ranges(64, 32).collect();
        assert_eq!(r, vec![0..32, 32..64]);
        let r: Vec<_> = batch_ranges(34, 32).collect();
        assert_eq!(r, vec![0..32, 32..34]);
        // A lone example (or batch_size 1) is preserved, not merged away.
        let r: Vec<_> = batch_ranges(1, 32).collect();
        assert_eq!(r, vec![0..1]);
        let r: Vec<_> = batch_ranges(3, 1).collect();
        assert_eq!(r, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn every_example_is_seen_with_trailing_singleton() {
        // Regression: n ≡ 1 (mod batch_size) used to silently drop one
        // example per epoch; it must now be merged into the last batch.
        let (x, y) = toy_data(33, 9);
        let arch = Architecture::mlp("m", InputSpec::new(3, 4, 4), 3, vec![8]);
        let mut net = Network::seeded(&arch, 10);
        let cfg = TrainConfig {
            max_epochs: 1,
            batch_size: 32,
            patience: 5,
            ..TrainConfig::default()
        };
        let report = train(&mut net, &x, &y, &x, &y, &cfg);
        // One merged batch of 33 → exactly one gradient step, finite loss
        // computed over all 33 examples.
        assert_eq!(report.gradient_steps, 1);
        assert!(report.epochs[0].train_loss.is_finite());
    }

    #[test]
    fn train_with_reused_workspace_matches_fresh() {
        let (x, y) = toy_data(40, 11);
        let arch = Architecture::mlp("m", InputSpec::new(3, 4, 4), 3, vec![8]);
        let cfg = TrainConfig {
            max_epochs: 2,
            ..TrainConfig::default()
        };
        let mut fresh = Network::seeded(&arch, 12);
        let fresh_report = train(&mut fresh, &x, &y, &x, &y, &cfg);
        // A workspace dirtied by a full prior run must not perturb results.
        let mut ws = mn_tensor::Workspace::new();
        let mut warm = Network::seeded(&arch, 1);
        train_with(&mut warm, &x, &y, &x, &y, &cfg, &mut ws);
        let mut reused = Network::seeded(&arch, 12);
        let reused_report = train_with(&mut reused, &x, &y, &x, &y, &cfg, &mut ws);
        assert_eq!(fresh_report.final_val.loss, reused_report.final_val.loss);
        assert_eq!(fresh_report.gradient_steps, reused_report.gradient_steps);
    }

    #[test]
    #[should_panic(expected = "labels length mismatch")]
    fn validates_label_count() {
        let arch = Architecture::mlp("m", InputSpec::new(3, 4, 4), 3, vec![8]);
        let mut net = Network::seeded(&arch, 8);
        let x = Tensor::zeros([4, 3, 4, 4]);
        train(
            &mut net,
            &x,
            &[0, 1],
            &x,
            &[0, 1, 2, 0],
            &TrainConfig::default(),
        );
    }
}

//! Learning-rate schedules.
//!
//! The trainer multiplies its base learning rate by
//! [`LrSchedule::factor`] at the start of every epoch. Besides the
//! standard decays, [`LrSchedule::CyclicCosine`] implements the
//! warm-restart annealing that snapshot ensembles (Huang et al., cited in
//! the paper's related work §4) rely on: the rate anneals to a minimum
//! within each cycle and restarts at the cycle boundary, driving the
//! network into successive local minima.

/// A learning-rate schedule: a multiplier on the base rate per epoch.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum LrSchedule {
    /// Constant rate.
    Constant,
    /// `factor = gamma^epoch`.
    Exponential {
        /// Per-epoch multiplier in `(0, 1]`.
        gamma: f32,
    },
    /// Multiply by `gamma` every `every` epochs.
    Step {
        /// Epochs between drops.
        every: usize,
        /// Multiplier at each drop, in `(0, 1]`.
        gamma: f32,
    },
    /// Single cosine annealing from 1 to `min_factor` over `period` epochs,
    /// holding `min_factor` afterwards.
    Cosine {
        /// Annealing horizon in epochs.
        period: usize,
        /// Final multiplier in `[0, 1]`.
        min_factor: f32,
    },
    /// Cosine annealing with warm restarts every `cycle_len` epochs
    /// (snapshot-ensemble style).
    CyclicCosine {
        /// Cycle length in epochs.
        cycle_len: usize,
        /// Multiplier at the end of each cycle, in `[0, 1]`.
        min_factor: f32,
    },
}

impl Default for LrSchedule {
    fn default() -> Self {
        LrSchedule::Exponential { gamma: 0.97 }
    }
}

impl LrSchedule {
    /// The multiplier applied to the base learning rate during `epoch`
    /// (0-based).
    ///
    /// # Panics
    ///
    /// Panics if a schedule was constructed with a zero period/cycle.
    pub fn factor(&self, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::Exponential { gamma } => gamma.powi(epoch as i32),
            LrSchedule::Step { every, gamma } => {
                assert!(every > 0, "step period must be positive");
                gamma.powi((epoch / every) as i32)
            }
            LrSchedule::Cosine { period, min_factor } => {
                assert!(period > 0, "cosine period must be positive");
                if epoch >= period {
                    min_factor
                } else {
                    let t = epoch as f32 / period as f32;
                    min_factor + (1.0 - min_factor) * 0.5 * (1.0 + (std::f32::consts::PI * t).cos())
                }
            }
            LrSchedule::CyclicCosine {
                cycle_len,
                min_factor,
            } => {
                assert!(cycle_len > 0, "cycle length must be positive");
                let t = (epoch % cycle_len) as f32 / cycle_len as f32;
                min_factor + (1.0 - min_factor) * 0.5 * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }

    /// Whether `epoch` (0-based) is the last epoch of a cyclic cycle — the
    /// moment a snapshot ensemble would save the model. Always `false` for
    /// non-cyclic schedules.
    pub fn is_cycle_end(&self, epoch: usize) -> bool {
        match *self {
            LrSchedule::CyclicCosine { cycle_len, .. } => (epoch + 1) % cycle_len == 0,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one() {
        assert_eq!(LrSchedule::Constant.factor(0), 1.0);
        assert_eq!(LrSchedule::Constant.factor(100), 1.0);
    }

    #[test]
    fn exponential_decays() {
        let s = LrSchedule::Exponential { gamma: 0.5 };
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(1), 0.5);
        assert_eq!(s.factor(3), 0.125);
    }

    #[test]
    fn step_drops_at_boundaries() {
        let s = LrSchedule::Step {
            every: 2,
            gamma: 0.1,
        };
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(1), 1.0);
        assert!((s.factor(2) - 0.1).abs() < 1e-6);
        assert!((s.factor(5) - 0.01).abs() < 1e-6);
    }

    #[test]
    fn cosine_anneals_to_min_and_holds() {
        let s = LrSchedule::Cosine {
            period: 10,
            min_factor: 0.1,
        };
        assert_eq!(s.factor(0), 1.0);
        assert!(s.factor(5) < 1.0 && s.factor(5) > 0.1);
        // Monotone within the period.
        for e in 1..10 {
            assert!(s.factor(e) <= s.factor(e - 1) + 1e-6);
        }
        assert!((s.factor(10) - 0.1).abs() < 1e-6);
        assert!((s.factor(99) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn cyclic_restarts() {
        let s = LrSchedule::CyclicCosine {
            cycle_len: 4,
            min_factor: 0.05,
        };
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(4), 1.0, "warm restart at cycle boundary");
        assert!(s.factor(3) < s.factor(1), "annealing within the cycle");
        assert!(!s.is_cycle_end(0));
        assert!(s.is_cycle_end(3));
        assert!(s.is_cycle_end(7));
        assert!(!s.is_cycle_end(4));
    }

    #[test]
    fn default_matches_legacy_decay() {
        // The default schedule reproduces the historical lr_decay = 0.97.
        let s = LrSchedule::default();
        assert!((s.factor(2) - 0.97f32 * 0.97).abs() < 1e-6);
    }

    /// Exact factors at every epoch boundary: the epoch *before* a drop
    /// still runs at the old rate, the boundary epoch at the new one.
    #[test]
    fn step_boundary_epochs_are_exact() {
        let s = LrSchedule::Step {
            every: 3,
            gamma: 0.5,
        };
        // Epochs 0..2 → 1.0; 3..5 → 0.5; 6..8 → 0.25.
        for (epoch, expect) in [(0, 1.0), (2, 1.0), (3, 0.5), (5, 0.5), (6, 0.25), (8, 0.25)] {
            assert!(
                (s.factor(epoch) - expect).abs() < 1e-7,
                "epoch {epoch}: {} != {expect}",
                s.factor(epoch)
            );
        }
    }

    /// Cosine hits its hand-computed midpoint and endpoint exactly:
    /// factor(t) = min + (1 − min)·(1 + cos(πt/T))/2.
    #[test]
    fn cosine_midpoint_matches_closed_form() {
        let s = LrSchedule::Cosine {
            period: 8,
            min_factor: 0.2,
        };
        // t = 4/8 = 1/2 → cos(π/2) = 0 → factor = 0.2 + 0.8·0.5 = 0.6.
        assert!((s.factor(4) - 0.6).abs() < 1e-6);
        // t = 2/8 = 1/4 → cos(π/4) = √2/2 → 0.2 + 0.8·(1 + √2/2)/2.
        let expect = 0.2 + 0.8 * 0.5 * (1.0 + std::f32::consts::FRAC_1_SQRT_2);
        assert!((s.factor(2) - expect).abs() < 1e-6);
        // Boundary epoch and beyond hold the floor exactly.
        assert_eq!(s.factor(8), 0.2);
        assert_eq!(s.factor(9), 0.2);
    }

    /// Cyclic cosine restarts exactly at multiples of the cycle length and
    /// repeats the same within-cycle factors every cycle.
    #[test]
    fn cyclic_factors_repeat_across_cycles() {
        let s = LrSchedule::CyclicCosine {
            cycle_len: 5,
            min_factor: 0.1,
        };
        for epoch in 0..5 {
            assert_eq!(
                s.factor(epoch),
                s.factor(epoch + 5),
                "cycle 0 vs 1 differ at offset {epoch}"
            );
            assert_eq!(s.factor(epoch), s.factor(epoch + 10));
        }
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(5), 1.0);
        // Cycle-end flags fire exactly on the last epoch of each cycle.
        let ends: Vec<usize> = (0..12).filter(|&e| s.is_cycle_end(e)).collect();
        assert_eq!(ends, vec![4, 9]);
    }

    /// Exponential decay at hand-computed epochs.
    #[test]
    fn exponential_hand_computed_epochs() {
        let s = LrSchedule::Exponential { gamma: 0.9 };
        assert!((s.factor(5) - 0.59049).abs() < 1e-5);
        assert!((s.factor(10) - 0.348_678_44).abs() < 1e-6);
    }
}

//! Confusion matrices and per-class metrics.

use std::fmt;

/// A `K×K` confusion matrix: `counts[true][predicted]`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConfusionMatrix {
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Builds the matrix from parallel prediction/label slices.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch, empty input, or out-of-range entries.
    pub fn from_predictions(predictions: &[usize], labels: &[usize], num_classes: usize) -> Self {
        assert_eq!(
            predictions.len(),
            labels.len(),
            "prediction/label length mismatch"
        );
        assert!(
            !labels.is_empty(),
            "cannot build a confusion matrix from nothing"
        );
        assert!(num_classes > 0, "need at least one class");
        let mut counts = vec![vec![0usize; num_classes]; num_classes];
        for (&p, &t) in predictions.iter().zip(labels) {
            assert!(p < num_classes && t < num_classes, "entry out of range");
            counts[t][p] += 1;
        }
        ConfusionMatrix { counts }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.counts.len()
    }

    /// Count of examples with true class `t` predicted as `p`.
    pub fn count(&self, t: usize, p: usize) -> usize {
        self.counts[t][p]
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f32 {
        let correct: usize = (0..self.num_classes()).map(|c| self.counts[c][c]).sum();
        let total: usize = self.counts.iter().flatten().sum();
        correct as f32 / total as f32
    }

    /// Per-class recall (`None` when the class has no true examples).
    pub fn recall(&self, class: usize) -> Option<f32> {
        let row: usize = self.counts[class].iter().sum();
        (row > 0).then(|| self.counts[class][class] as f32 / row as f32)
    }

    /// Per-class precision (`None` when the class is never predicted).
    pub fn precision(&self, class: usize) -> Option<f32> {
        let col: usize = (0..self.num_classes()).map(|t| self.counts[t][class]).sum();
        (col > 0).then(|| self.counts[class][class] as f32 / col as f32)
    }

    /// The most confused (off-diagonal) pair `(true, predicted, count)`,
    /// if any misclassification occurred.
    pub fn worst_confusion(&self) -> Option<(usize, usize, usize)> {
        let mut best: Option<(usize, usize, usize)> = None;
        for t in 0..self.num_classes() {
            for p in 0..self.num_classes() {
                if t != p
                    && self.counts[t][p] > 0
                    && best.is_none_or(|(_, _, c)| self.counts[t][p] > c)
                {
                    best = Some((t, p, self.counts[t][p]));
                }
            }
        }
        best
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "confusion (rows = true, cols = predicted):")?;
        for row in &self.counts {
            for c in row {
                write!(f, "{c:>6}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let m = ConfusionMatrix::from_predictions(&[0, 1, 2], &[0, 1, 2], 3);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.recall(0), Some(1.0));
        assert_eq!(m.precision(2), Some(1.0));
        assert_eq!(m.worst_confusion(), None);
    }

    #[test]
    fn mixed_predictions() {
        // true:  0 0 1 1 1
        // pred:  0 1 1 1 0
        let m = ConfusionMatrix::from_predictions(&[0, 1, 1, 1, 0], &[0, 0, 1, 1, 1], 2);
        assert_eq!(m.count(0, 0), 1);
        assert_eq!(m.count(0, 1), 1);
        assert_eq!(m.count(1, 1), 2);
        assert_eq!(m.count(1, 0), 1);
        assert!((m.accuracy() - 0.6).abs() < 1e-6);
        assert_eq!(m.recall(0), Some(0.5));
        assert!((m.recall(1).unwrap() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(m.precision(0), Some(0.5));
        let worst = m.worst_confusion().unwrap();
        assert_eq!(worst.2, 1);
    }

    #[test]
    fn absent_class_yields_none() {
        let m = ConfusionMatrix::from_predictions(&[0, 0], &[0, 0], 3);
        assert_eq!(m.recall(1), None);
        assert_eq!(m.precision(2), None);
        assert_eq!(m.recall(0), Some(1.0));
    }

    #[test]
    fn display_is_nonempty() {
        let m = ConfusionMatrix::from_predictions(&[0], &[0], 1);
        assert!(format!("{m}").contains("confusion"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn validates_entries() {
        ConfusionMatrix::from_predictions(&[5], &[0], 2);
    }
}

//! [`Network`]: an executable network built from an [`Architecture`].

use mn_tensor::{ops, Tensor, Workspace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::arch::{Architecture, Body};
use crate::layer::{Mode, Param};
use crate::layers::{
    BatchNorm, BnLayout, ConvLayer, DenseLayer, FlattenLayer, GlobalAvgPoolLayer, MaxPoolLayer,
    ReluLayer, ResidualUnit,
};
use crate::node::LayerNode;

/// A feed-forward network: an [`Architecture`] plus the layer sequence that
/// realizes it.
///
/// ```
/// use mn_nn::arch::{Architecture, InputSpec};
/// use mn_nn::network::Network;
/// use mn_nn::layer::Mode;
/// use mn_tensor::Tensor;
///
/// let arch = Architecture::mlp("m", InputSpec::new(1, 2, 2), 3, vec![8]);
/// let mut net = Network::seeded(&arch, 42);
/// let x = Tensor::zeros([5, 1, 2, 2]);
/// let logits = net.forward(&x, Mode::Eval);
/// assert_eq!(logits.shape().dims(), &[5, 3]);
/// ```
#[derive(Clone, Debug)]
pub struct Network {
    arch: Architecture,
    nodes: Vec<LayerNode>,
}

impl Network {
    /// Builds a freshly initialized network for `arch`.
    ///
    /// # Panics
    ///
    /// Panics if `arch` fails [`Architecture::validate`].
    pub fn new<R: Rng>(arch: &Architecture, rng: &mut R) -> Self {
        arch.validate()
            .unwrap_or_else(|e| panic!("invalid architecture {}: {e}", arch.name));
        let nodes = build_nodes(arch, rng);
        Network {
            arch: arch.clone(),
            nodes,
        }
    }

    /// Builds a freshly initialized network with a dedicated RNG seed.
    pub fn seeded(arch: &Architecture, seed: u64) -> Self {
        Network::new(arch, &mut StdRng::seed_from_u64(seed))
    }

    /// Builds a structurally complete network with **all-zero** weights —
    /// no RNG, no Box–Muller sampling. This is the cold-start construction
    /// path: checkpoint restore (`mn_nn::io::load_network`) overwrites
    /// every persistent tensor immediately after construction, so sampling
    /// a random init first is pure wasted CPU (roughly half the cold-start
    /// cost for large members). Not a usable init for training — use
    /// [`Network::new`] / [`Network::seeded`] for that.
    ///
    /// # Panics
    ///
    /// Panics if `arch` fails [`Architecture::validate`].
    pub fn zeroed(arch: &Architecture) -> Self {
        arch.validate()
            .unwrap_or_else(|e| panic!("invalid architecture {}: {e}", arch.name));
        let nodes = build_nodes_with(arch, &mut ZeroInit);
        Network {
            arch: arch.clone(),
            nodes,
        }
    }

    /// Reassembles a network from an architecture and a layer sequence —
    /// the constructor used by the morphism engine after structural
    /// rewrites.
    ///
    /// # Panics
    ///
    /// Panics if `arch` is invalid or if a single-item forward pass does
    /// not produce `[1, num_classes]` logits (i.e. the node sequence does
    /// not realize the architecture).
    pub fn from_parts(arch: Architecture, nodes: Vec<LayerNode>) -> Self {
        arch.validate()
            .unwrap_or_else(|e| panic!("invalid architecture {}: {e}", arch.name));
        let mut net = Network { arch, nodes };
        let probe = Tensor::zeros([
            1,
            net.arch.input.channels,
            net.arch.input.height,
            net.arch.input.width,
        ]);
        let out = net.forward(&probe, Mode::Eval);
        assert_eq!(
            out.shape().dims(),
            &[1, net.arch.num_classes],
            "node sequence does not realize architecture {}",
            net.arch.name
        );
        net
    }

    /// The architecture this network realizes.
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// The layer sequence (read-only).
    pub fn nodes(&self) -> &[LayerNode] {
        &self.nodes
    }

    /// Mutable access to the layer sequence.
    ///
    /// This is the structural hook used by the `mn-morph` crate; prefer the
    /// high-level morphism API over direct manipulation.
    pub fn nodes_mut(&mut self) -> &mut Vec<LayerNode> {
        &mut self.nodes
    }

    /// Decomposes the network into its parts (architecture, nodes).
    pub fn into_parts(self) -> (Architecture, Vec<LayerNode>) {
        (self.arch, self.nodes)
    }

    /// Forward pass over a batch `[N, C, H, W]`, returning logits `[N, K]`.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        self.forward_with(x, mode, &mut Workspace::new())
    }

    /// [`Network::forward`] staging every activation in a [`Workspace`].
    ///
    /// Each layer's input buffer is released back into the workspace as
    /// soon as the layer has consumed it, so a forward pass keeps at most
    /// two live activations plus kernel scratch — and a workspace retained
    /// across calls (as the ensemble inference engine does per member)
    /// serves steady-state traffic without reallocating activations or
    /// im2col scratch.
    pub fn forward_with(&mut self, x: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
        if mode == Mode::Eval {
            return self.forward_eval_with(x, ws);
        }
        let mut h: Option<Tensor> = None;
        for node in &mut self.nodes {
            let next = node.forward_ws(h.as_ref().unwrap_or(x), mode, ws);
            if let Some(prev) = h.take() {
                ws.release(prev);
            }
            h = Some(next);
        }
        h.unwrap_or_else(|| x.clone())
    }

    /// Eval-mode forward pass through shared access only: reads weights
    /// and running statistics, writes nothing back into the network. Many
    /// serving sessions (each with its own [`Workspace`]) can therefore
    /// execute one shared network concurrently — this is the hot path of
    /// the ensemble engine's plan/session split. Bitwise identical to
    /// [`Network::forward`] in [`Mode::Eval`]: both route through the same
    /// per-layer eval code.
    pub fn forward_eval(&self, x: &Tensor) -> Tensor {
        self.forward_eval_with(x, &mut Workspace::new())
    }

    /// [`Network::forward_eval`] staging every activation in a
    /// [`Workspace`] (see [`Network::forward_with`] for the buffer
    /// lifecycle).
    // mn-lint: hot-path
    pub fn forward_eval_with(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        eval_nodes(&self.nodes, x, ws)
    }

    /// Eval-forward through the leading `upto` nodes only, returning the
    /// intermediate activation — the **shared-trunk** pass of the ensemble
    /// engine: when several members share a bit-identical layer prefix
    /// (see [`crate::node::LayerNode::eval_equivalent`]), the trunk is
    /// evaluated once and its activation fanned out to every member's
    /// [`Network::forward_eval_tail_with`].
    ///
    /// `upto == 0` returns a clone of `x`; `upto == nodes.len()` runs the
    /// whole network. Shared access only, like
    /// [`Network::forward_eval_with`].
    ///
    /// # Panics
    ///
    /// Panics if `upto` exceeds the node count.
    pub fn forward_eval_prefix_with(&self, x: &Tensor, upto: usize, ws: &mut Workspace) -> Tensor {
        assert!(
            upto <= self.nodes.len(),
            "prefix {upto} out of range for {} nodes",
            self.nodes.len()
        );
        eval_nodes(&self.nodes[..upto], x, ws)
    }

    /// Eval-forward through the nodes from index `from` to the end, given
    /// the activation `h` a (shared) prefix pass produced — the divergent
    /// **tail** pass of shared-trunk ensemble execution. Bitwise: running
    /// `forward_eval_prefix_with(x, k)` then `forward_eval_tail_with(h, k)`
    /// equals `forward_eval_with(x)` for any split point `k`, because both
    /// route through the identical per-node eval code in sequence.
    ///
    /// # Panics
    ///
    /// Panics if `from` exceeds the node count.
    pub fn forward_eval_tail_with(&self, h: &Tensor, from: usize, ws: &mut Workspace) -> Tensor {
        assert!(
            from <= self.nodes.len(),
            "tail start {from} out of range for {} nodes",
            self.nodes.len()
        );
        eval_nodes(&self.nodes[from..], h, ws)
    }

    /// The number of leading nodes this network shares — eval-equivalently,
    /// i.e. bit-for-bit (see [`crate::node::LayerNode::eval_equivalent`]) —
    /// with `other`. Hatched members report how much of their mother they
    /// still carry through this, and the ensemble engine intersects it
    /// across members to find the servable shared trunk.
    pub fn shared_eval_prefix(&self, other: &Network) -> usize {
        self.nodes
            .iter()
            .zip(other.nodes.iter())
            .take_while(|(a, b)| a.eval_equivalent(b))
            .count()
    }

    /// Backward pass from logit gradients; accumulates parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics unless a training-mode forward pass preceded this call.
    pub fn backward(&mut self, grad_logits: &Tensor) {
        self.backward_with(grad_logits, &mut Workspace::new());
    }

    /// [`Network::backward`] staging every intermediate gradient in a
    /// [`Workspace`].
    ///
    /// Each node's upstream gradient is released back into the workspace
    /// as soon as the node has consumed it, so a backward pass keeps at
    /// most two live gradients plus kernel scratch — and a workspace
    /// retained across steps (as the training loop does) runs steady-state
    /// backward passes without heap allocation.
    ///
    /// # Panics
    ///
    /// Panics unless a training-mode forward pass preceded this call.
    pub fn backward_with(&mut self, grad_logits: &Tensor, ws: &mut Workspace) {
        let mut g: Option<Tensor> = None;
        for node in self.nodes.iter_mut().rev() {
            let next = node.backward_ws(g.as_ref().unwrap_or(grad_logits), ws);
            if let Some(prev) = g.take() {
                ws.release(prev);
            }
            g = Some(next);
        }
        if let Some(last) = g {
            ws.release(last);
        }
    }

    /// Class-probability predictions `[N, K]` (eval mode).
    pub fn predict_proba(&mut self, x: &Tensor) -> Tensor {
        let mut logits = self.forward(x, Mode::Eval);
        ops::softmax_rows(&mut logits);
        logits
    }

    /// [`Network::predict_proba`] staging activations in a [`Workspace`].
    pub fn predict_proba_with(&mut self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        self.predict_proba_eval_with(x, ws)
    }

    /// [`Network::predict_proba_with`] through shared access only (see
    /// [`Network::forward_eval_with`]).
    pub fn predict_proba_eval_with(&self, x: &Tensor, ws: &mut Workspace) -> Tensor {
        let mut logits = self.forward_eval_with(x, ws);
        ops::softmax_rows(&mut logits);
        logits
    }

    /// Hard label predictions (eval mode).
    pub fn predict(&mut self, x: &Tensor) -> Vec<usize> {
        let logits = self.forward(x, Mode::Eval);
        ops::argmax_rows(&logits)
    }

    /// All trainable parameters, in layer order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.nodes.iter_mut().flat_map(|n| n.params_mut()).collect()
    }

    /// Visits all trainable parameters in the same stable order as
    /// [`Network::params_mut`], without materializing a `Vec` — the
    /// zero-allocation path the fused optimizer steps through.
    pub fn visit_params_mut(&mut self, f: &mut impl FnMut(&mut Param)) {
        for node in &mut self.nodes {
            node.visit_params_mut(f);
        }
    }

    /// Zeroes every parameter gradient.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of trainable scalars.
    pub fn param_count(&mut self) -> usize {
        self.nodes.iter_mut().map(|n| n.param_count()).sum()
    }

    /// Drops all cached activations (shrinks memory between runs).
    pub fn clear_caches(&mut self) {
        for n in &mut self.nodes {
            n.clear_cache();
        }
    }
}

/// Shared-access eval walk over a node slice: the single code path behind
/// [`Network::forward_eval_with`] and the prefix/tail variants, so a split
/// pass cannot drift from the whole-network pass. An empty slice yields a
/// clone of the input.
fn eval_nodes(nodes: &[LayerNode], x: &Tensor, ws: &mut Workspace) -> Tensor {
    let mut h: Option<Tensor> = None;
    for node in nodes {
        let next = node.forward_eval_ws(h.as_ref().unwrap_or(x), ws);
        if let Some(prev) = h.take() {
            ws.release(prev);
        }
        h = Some(next);
    }
    h.unwrap_or_else(|| x.clone())
}

/// How the parameterized layers of a fresh network get their values. One
/// structural walk ([`build_nodes_with`]) serves both the random-init
/// training path and the zero-init checkpoint-restore path, so the two
/// cannot drift apart layer-for-layer.
trait LayerInit {
    fn dense(&mut self, in_features: usize, out_features: usize) -> DenseLayer;
    fn conv(&mut self, in_channels: usize, filters: usize, kernel: usize) -> ConvLayer;
    fn residual(&mut self, filters: usize, kernel: usize) -> ResidualUnit;
}

/// He-initialized layers drawn from the wrapped RNG.
struct RandomInit<'r, R: Rng>(&'r mut R);

impl<R: Rng> LayerInit for RandomInit<'_, R> {
    fn dense(&mut self, in_features: usize, out_features: usize) -> DenseLayer {
        DenseLayer::new(in_features, out_features, self.0)
    }
    fn conv(&mut self, in_channels: usize, filters: usize, kernel: usize) -> ConvLayer {
        ConvLayer::new(in_channels, filters, kernel, self.0)
    }
    fn residual(&mut self, filters: usize, kernel: usize) -> ResidualUnit {
        ResidualUnit::new(filters, kernel, self.0)
    }
}

/// All-zero layers: no RNG cost, for restore targets only.
struct ZeroInit;

impl LayerInit for ZeroInit {
    fn dense(&mut self, in_features: usize, out_features: usize) -> DenseLayer {
        DenseLayer::zeroed(in_features, out_features)
    }
    fn conv(&mut self, in_channels: usize, filters: usize, kernel: usize) -> ConvLayer {
        ConvLayer::zeroed(in_channels, filters, kernel)
    }
    fn residual(&mut self, filters: usize, kernel: usize) -> ResidualUnit {
        ResidualUnit::zeroed(filters, kernel)
    }
}

fn build_nodes<R: Rng>(arch: &Architecture, rng: &mut R) -> Vec<LayerNode> {
    build_nodes_with(arch, &mut RandomInit(rng))
}

fn build_nodes_with(arch: &Architecture, init: &mut impl LayerInit) -> Vec<LayerNode> {
    let mut nodes = Vec::new();
    match &arch.body {
        Body::Mlp { hidden } => {
            nodes.push(LayerNode::Flatten(FlattenLayer::new()));
            let mut fan_in = arch.input.channels * arch.input.height * arch.input.width;
            for &units in hidden {
                nodes.push(LayerNode::Dense(init.dense(fan_in, units)));
                nodes.push(LayerNode::Relu(ReluLayer::new()));
                fan_in = units;
            }
            nodes.push(LayerNode::Dense(init.dense(fan_in, arch.num_classes)));
        }
        Body::Plain { blocks, dense } => {
            let mut c_in = arch.input.channels;
            for block in blocks {
                for l in &block.layers {
                    nodes.push(LayerNode::Conv(init.conv(c_in, l.filters, l.filter_size)));
                    nodes.push(LayerNode::BatchNorm(BatchNorm::new(
                        l.filters,
                        BnLayout::Spatial,
                    )));
                    nodes.push(LayerNode::Relu(ReluLayer::new()));
                    c_in = l.filters;
                }
                nodes.push(LayerNode::MaxPool(MaxPoolLayer::new()));
            }
            nodes.push(LayerNode::Flatten(FlattenLayer::new()));
            let (h, w) = arch.spatial_after_body();
            let mut fan_in = c_in * h * w;
            for &units in dense {
                nodes.push(LayerNode::Dense(init.dense(fan_in, units)));
                nodes.push(LayerNode::Relu(ReluLayer::new()));
                fan_in = units;
            }
            nodes.push(LayerNode::Dense(init.dense(fan_in, arch.num_classes)));
        }
        Body::Residual { blocks } => {
            // Stem.
            let stem_f = blocks[0].filters;
            nodes.push(LayerNode::Conv(init.conv(arch.input.channels, stem_f, 3)));
            nodes.push(LayerNode::BatchNorm(BatchNorm::new(
                stem_f,
                BnLayout::Spatial,
            )));
            nodes.push(LayerNode::Relu(ReluLayer::new()));
            let mut c_in = stem_f;
            for (i, block) in blocks.iter().enumerate() {
                if i > 0 {
                    nodes.push(LayerNode::MaxPool(MaxPoolLayer::new()));
                }
                // Unconditional 1x1 transition: see Architecture::param_count.
                nodes.push(LayerNode::Conv(init.conv(c_in, block.filters, 1)));
                nodes.push(LayerNode::BatchNorm(BatchNorm::new(
                    block.filters,
                    BnLayout::Spatial,
                )));
                nodes.push(LayerNode::Relu(ReluLayer::new()));
                c_in = block.filters;
                for _ in 0..block.units {
                    nodes.push(LayerNode::Residual(Box::new(
                        init.residual(block.filters, block.filter_size),
                    )));
                }
            }
            nodes.push(LayerNode::GlobalAvgPool(GlobalAvgPoolLayer::new()));
            nodes.push(LayerNode::Dense(init.dense(c_in, arch.num_classes)));
        }
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{ConvBlockSpec, InputSpec, ResBlockSpec};

    fn input() -> InputSpec {
        InputSpec::new(3, 8, 8)
    }

    #[test]
    fn mlp_param_count_matches_analytic() {
        let arch = Architecture::mlp("m", input(), 10, vec![16, 8]);
        let mut net = Network::seeded(&arch, 0);
        assert_eq!(net.param_count() as u64, arch.param_count());
    }

    #[test]
    fn plain_param_count_matches_analytic() {
        let arch = Architecture::plain(
            "p",
            input(),
            10,
            vec![
                ConvBlockSpec::repeated(3, 4, 2),
                ConvBlockSpec::repeated(5, 8, 1),
            ],
            vec![16],
        );
        let mut net = Network::seeded(&arch, 0);
        assert_eq!(net.param_count() as u64, arch.param_count());
    }

    #[test]
    fn residual_param_count_matches_analytic() {
        let arch = Architecture::residual(
            "r",
            input(),
            10,
            vec![ResBlockSpec::new(2, 4, 3), ResBlockSpec::new(1, 8, 3)],
        );
        let mut net = Network::seeded(&arch, 0);
        assert_eq!(net.param_count() as u64, arch.param_count());
    }

    #[test]
    fn forward_shapes_all_families() {
        let archs = vec![
            Architecture::mlp("m", input(), 7, vec![12]),
            Architecture::plain(
                "p",
                input(),
                7,
                vec![
                    ConvBlockSpec::repeated(3, 4, 1),
                    ConvBlockSpec::repeated(3, 8, 1),
                ],
                vec![16],
            ),
            Architecture::residual("r", input(), 7, vec![ResBlockSpec::new(1, 4, 3)]),
        ];
        for arch in archs {
            let mut net = Network::seeded(&arch, 1);
            let x = Tensor::zeros([3, 3, 8, 8]);
            let y = net.forward(&x, Mode::Eval);
            assert_eq!(y.shape().dims(), &[3, 7], "wrong logits for {}", arch.name);
        }
    }

    #[test]
    fn train_backward_produces_gradients() {
        let arch = Architecture::plain(
            "p",
            input(),
            4,
            vec![ConvBlockSpec::repeated(3, 4, 1)],
            vec![8],
        );
        let mut net = Network::seeded(&arch, 2);
        let x = Tensor::randn([4, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(3));
        let y = net.forward(&x, Mode::Train);
        net.backward(&y);
        let grads_sq: f32 = net.params_mut().iter().map(|p| p.grad.sq_norm()).sum();
        assert!(grads_sq > 0.0, "no gradient accumulated");
        net.zero_grad();
        let grads_sq: f32 = net.params_mut().iter().map(|p| p.grad.sq_norm()).sum();
        assert_eq!(grads_sq, 0.0);
    }

    #[test]
    fn predict_proba_rows_sum_to_one() {
        let arch = Architecture::mlp("m", input(), 5, vec![8]);
        let mut net = Network::seeded(&arch, 4);
        let x = Tensor::randn([6, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(5));
        let p = net.predict_proba(&x);
        for i in 0..6 {
            let sum: f32 = (0..5).map(|j| p.at2(i, j)).sum();
            assert!((sum - 1.0).abs() < 1e-4);
        }
        let labels = net.predict(&x);
        assert_eq!(labels.len(), 6);
        assert!(labels.iter().all(|&l| l < 5));
    }

    #[test]
    fn from_parts_validates_realization() {
        let arch = Architecture::mlp("m", input(), 5, vec![8]);
        let net = Network::seeded(&arch, 6);
        let (a, nodes) = net.into_parts();
        let rebuilt = Network::from_parts(a, nodes);
        assert_eq!(rebuilt.arch().name, "m");
    }

    #[test]
    #[should_panic(expected = "does not realize")]
    fn from_parts_rejects_wrong_head() {
        let arch = Architecture::mlp("m", input(), 5, vec![8]);
        let other = Architecture::mlp("m", input(), 3, vec![8]);
        let net = Network::seeded(&arch, 7);
        let (_, nodes) = net.into_parts();
        Network::from_parts(other, nodes);
    }

    #[test]
    fn visit_params_matches_params_mut_order_all_families() {
        // The fused optimizer pairs velocity entries with parameters by
        // visit order, so the visitor must walk the exact same sequence
        // as params_mut — pinned by pointer identity across every layer
        // family (dense, conv, batch norm, residual units).
        let archs = vec![
            Architecture::mlp("m", input(), 5, vec![8]),
            Architecture::plain(
                "p",
                input(),
                5,
                vec![ConvBlockSpec::repeated(3, 4, 1)],
                vec![8],
            ),
            Architecture::residual("r", input(), 5, vec![ResBlockSpec::new(2, 4, 3)]),
        ];
        for arch in archs {
            let mut net = Network::seeded(&arch, 11);
            let listed: Vec<*const Param> = net
                .params_mut()
                .iter()
                .map(|p| *p as *const Param)
                .collect();
            let mut visited: Vec<*const Param> = Vec::new();
            net.visit_params_mut(&mut |p| visited.push(p as *const Param));
            assert_eq!(listed, visited, "order diverged for {}", arch.name);
        }
    }

    #[test]
    fn zeroed_matches_seeded_structure_across_families() {
        // The zero-init restore target must be layer-for-layer identical
        // in structure to the random-init path: same param count, same
        // node kinds, and a weight blob saved from a seeded network must
        // restore into it exactly.
        let archs = vec![
            Architecture::mlp("m", input(), 5, vec![8]),
            Architecture::plain(
                "p",
                input(),
                5,
                vec![ConvBlockSpec::repeated(3, 4, 1)],
                vec![8],
            ),
            Architecture::residual("r", input(), 5, vec![ResBlockSpec::new(2, 4, 3)]),
        ];
        for arch in archs {
            let mut seeded = Network::seeded(&arch, 3);
            let mut zeroed = Network::zeroed(&arch);
            assert_eq!(
                seeded.param_count(),
                zeroed.param_count(),
                "param count diverged for {}",
                arch.name
            );
            let kinds_a: Vec<&str> = seeded.nodes().iter().map(|n| n.kind()).collect();
            let kinds_b: Vec<&str> = zeroed.nodes().iter().map(|n| n.kind()).collect();
            assert_eq!(kinds_a, kinds_b, "node sequence diverged for {}", arch.name);
            // Sampled layers are all-zero (batch-norm keeps its gamma=1,
            // beta=0 defaults — those are constant, not sampled).
            for node in zeroed.nodes() {
                match node {
                    LayerNode::Dense(l) => {
                        assert_eq!(l.weight.value.sq_norm(), 0.0, "dense init is not zero")
                    }
                    LayerNode::Conv(l) => {
                        assert_eq!(l.weight.value.sq_norm(), 0.0, "conv init is not zero")
                    }
                    LayerNode::Residual(l) => {
                        assert_eq!(l.conv1.weight.value.sq_norm(), 0.0);
                        assert_eq!(l.conv2.weight.value.sq_norm(), 0.0);
                    }
                    _ => {}
                }
            }
            let blob = crate::io::save_weights(&seeded);
            crate::io::load_weights(&mut zeroed, &blob).unwrap();
            let x = Tensor::randn([2, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(4));
            assert_eq!(
                seeded.forward(&x, Mode::Eval).data(),
                zeroed.forward(&x, Mode::Eval).data(),
                "restored zeroed network diverged for {}",
                arch.name
            );
        }
    }

    #[test]
    fn shared_eval_forward_matches_mut_forward_bitwise() {
        // forward_eval (shared access) and forward(Mode::Eval) must be
        // the same computation across every layer family — this is the
        // contract that lets serving sessions share one set of weights.
        let archs = vec![
            Architecture::mlp("m", input(), 5, vec![8]),
            Architecture::plain(
                "p",
                input(),
                5,
                vec![ConvBlockSpec::repeated(3, 4, 1)],
                vec![8],
            ),
            Architecture::residual("r", input(), 5, vec![ResBlockSpec::new(1, 4, 3)]),
        ];
        for arch in archs {
            let mut net = Network::seeded(&arch, 5);
            let x = Tensor::randn([3, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(6));
            let shared = net.forward_eval(&x);
            let muted = net.forward(&x, Mode::Eval);
            assert_eq!(
                shared.data(),
                muted.data(),
                "shared eval path diverged for {}",
                arch.name
            );
        }
    }

    #[test]
    fn prefix_plus_tail_equals_whole_forward_at_every_split() {
        // The shared-trunk contract: splitting the eval pass at ANY node
        // boundary and resuming from the intermediate activation is
        // bitwise identical to the unsplit pass, for every layer family.
        let archs = vec![
            Architecture::mlp("m", input(), 5, vec![8]),
            Architecture::plain(
                "p",
                input(),
                5,
                vec![ConvBlockSpec::repeated(3, 4, 1)],
                vec![8],
            ),
            Architecture::residual("r", input(), 5, vec![ResBlockSpec::new(1, 4, 3)]),
        ];
        for arch in archs {
            let net = Network::seeded(&arch, 21);
            let x = Tensor::randn([3, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(22));
            let whole = net.forward_eval(&x);
            let mut ws = mn_tensor::Workspace::new();
            for split in 0..=net.nodes().len() {
                let h = net.forward_eval_prefix_with(&x, split, &mut ws);
                let out = net.forward_eval_tail_with(&h, split, &mut ws);
                assert_eq!(
                    whole.data(),
                    out.data(),
                    "split at node {split} diverged for {}",
                    arch.name
                );
                ws.release(h);
                ws.release(out);
            }
        }
    }

    #[test]
    fn shared_eval_prefix_detects_divergence_point() {
        let arch = Architecture::mlp("m", input(), 5, vec![8, 8]);
        let a = Network::seeded(&arch, 30);
        // Identical clone: full prefix.
        let b = a.clone();
        assert_eq!(a.shared_eval_prefix(&b), a.nodes().len());
        // Re-randomize the final dense layer only: everything before it
        // still shared (fully-shared-but-for-head).
        let mut c = a.clone();
        let last = c.nodes().len() - 1;
        if let crate::node::LayerNode::Dense(l) = &mut c.nodes_mut()[last] {
            let fresh = DenseLayer::new(
                l.in_features(),
                l.out_features(),
                &mut StdRng::seed_from_u64(31),
            );
            *l = fresh;
        } else {
            panic!("mlp must end in a dense head");
        }
        assert_eq!(a.shared_eval_prefix(&c), last);
        // A different seed diverges at the first parameterized node
        // (node 0 is Flatten, which is stateless and always shared).
        let d = Network::seeded(&arch, 31);
        assert_eq!(a.shared_eval_prefix(&d), 1);
        // Flipping one bit anywhere breaks equivalence of that node.
        let mut e = a.clone();
        if let crate::node::LayerNode::Dense(l) = &mut e.nodes_mut()[1] {
            let v = l.weight.value.data()[0];
            l.weight.value.data_mut()[0] = f32::from_bits(v.to_bits() ^ 1);
        }
        assert_eq!(a.shared_eval_prefix(&e), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let arch = Architecture::mlp("m", input(), 5, vec![8]);
        let mut a = Network::seeded(&arch, 9);
        let mut b = Network::seeded(&arch, 9);
        let x = Tensor::randn([2, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(10));
        assert_eq!(
            a.forward(&x, Mode::Eval).data(),
            b.forward(&x, Mode::Eval).data()
        );
    }

    use rand::rngs::StdRng;
    use rand::SeedableRng;
}

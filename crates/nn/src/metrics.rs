//! Evaluation metrics and batching helpers.

use mn_tensor::{ops, Tensor, Workspace};

use crate::layer::Mode;
use crate::loss::softmax_cross_entropy;
use crate::network::Network;

/// Fraction of predictions that differ from the labels, in `[0, 1]`.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn error_rate(predictions: &[usize], labels: &[usize]) -> f32 {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "prediction/label length mismatch"
    );
    assert!(
        !labels.is_empty(),
        "cannot compute error rate of an empty set"
    );
    let wrong = predictions
        .iter()
        .zip(labels.iter())
        .filter(|(p, l)| p != l)
        .count();
    wrong as f32 / labels.len() as f32
}

/// Copies the examples at `indices` out of a batched tensor `[N, ...]`.
///
/// # Panics
///
/// Panics if any index is out of range.
pub fn gather_examples(x: &Tensor, indices: &[usize]) -> Tensor {
    let mut out = Tensor::zeros(x.shape().with_dim(0, indices.len()));
    gather_examples_into(x, indices, &mut out);
    out
}

/// [`gather_examples`] writing into a caller-provided (e.g.
/// workspace-acquired) output of shape `[indices.len(), ...]`; every
/// element is overwritten. This is the training loop's persistent
/// batch-gather buffer path.
///
/// # Panics
///
/// Panics if any index is out of range or `out` has the wrong shape.
pub fn gather_examples_into(x: &Tensor, indices: &[usize], out: &mut Tensor) {
    let n = x.shape().dim(0);
    let row = x.len().checked_div(n).unwrap_or(0);
    assert_eq!(
        out.shape(),
        &x.shape().with_dim(0, indices.len()),
        "gather output shape mismatch"
    );
    let xd = x.data();
    let od = out.data_mut();
    for (dst, &src) in indices.iter().enumerate() {
        assert!(src < n, "index {src} out of range for batch {n}");
        od[dst * row..(dst + 1) * row].copy_from_slice(&xd[src * row..(src + 1) * row]);
    }
}

/// Result of evaluating a network on a labelled set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Evaluation {
    /// Mean softmax cross-entropy.
    pub loss: f32,
    /// Misclassification rate in `[0, 1]`.
    pub error: f32,
}

/// Evaluates a network (eval mode) over a labelled set in mini-batches.
///
/// # Panics
///
/// Panics if `labels` length does not match the example count or is zero.
pub fn evaluate(net: &mut Network, x: &Tensor, labels: &[usize], batch_size: usize) -> Evaluation {
    let n = x.shape().dim(0);
    assert_eq!(labels.len(), n, "labels length mismatch");
    assert!(n > 0, "cannot evaluate on an empty set");
    let bs = batch_size.max(1);
    let mut total_loss = 0.0f64;
    let mut wrong = 0usize;
    let mut start = 0;
    while start < n {
        let end = (start + bs).min(n);
        let idx: Vec<usize> = (start..end).collect();
        let xb = gather_examples(x, &idx);
        let logits = net.forward(&xb, Mode::Eval);
        let (loss, _) = softmax_cross_entropy(&logits, &labels[start..end]);
        total_loss += loss as f64 * (end - start) as f64;
        let preds = ops::argmax_rows(&logits);
        wrong += preds
            .iter()
            .zip(&labels[start..end])
            .filter(|(p, l)| p != l)
            .count();
        start = end;
    }
    Evaluation {
        loss: (total_loss / n as f64) as f32,
        error: wrong as f32 / n as f32,
    }
}

/// Collects class-probability predictions over a set in mini-batches.
pub fn predict_proba_batched(net: &mut Network, x: &Tensor, batch_size: usize) -> Tensor {
    predict_proba_batched_with(net, x, batch_size, &mut Workspace::new())
}

/// [`predict_proba_batched`] staging the mini-batch and every activation
/// in a [`Workspace`]: after the first batch, steady-state prediction
/// stops allocating activations, mini-batches, and im2col scratch. This
/// is the per-member hot path of the ensemble inference engine.
pub fn predict_proba_batched_with(
    net: &mut Network,
    x: &Tensor,
    batch_size: usize,
    ws: &mut Workspace,
) -> Tensor {
    predict_proba_batched_eval(net, x, batch_size, ws)
}

/// [`predict_proba_batched_with`] through shared access only: eval-mode
/// forward passes never write back into the network, so many serving
/// sessions — each with its own workspace — can batch-predict over one
/// shared set of weights concurrently. The `&mut` variants above delegate
/// here, so the two paths are the same code and bitwise identical.
pub fn predict_proba_batched_eval(
    net: &Network,
    x: &Tensor,
    batch_size: usize,
    ws: &mut Workspace,
) -> Tensor {
    let n = x.shape().dim(0);
    let k = net.arch().num_classes;
    let bs = batch_size.max(1);
    let row = x.len().checked_div(n).unwrap_or(0);
    let mut out = Tensor::zeros([n, k]);
    let mut start = 0;
    while start < n {
        let end = (start + bs).min(n);
        // Mini-batches are contiguous example ranges: a straight copy,
        // no index gather needed.
        let mut xb = ws.acquire_uninit(x.shape().with_dim(0, end - start));
        xb.data_mut()
            .copy_from_slice(&x.data()[start * row..end * row]);
        let probs = net.predict_proba_eval_with(&xb, ws);
        out.data_mut()[start * k..end * k].copy_from_slice(probs.data());
        ws.release(probs);
        ws.release(xb);
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{Architecture, InputSpec};

    #[test]
    fn error_rate_counts_mismatches() {
        assert_eq!(error_rate(&[1, 2, 3], &[1, 2, 3]), 0.0);
        assert_eq!(error_rate(&[1, 0, 3], &[1, 2, 3]), 1.0 / 3.0);
        assert_eq!(error_rate(&[0, 0], &[1, 1]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn error_rate_validates() {
        error_rate(&[1], &[1, 2]);
    }

    #[test]
    fn gather_copies_rows() {
        let x = Tensor::from_vec([3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let g = gather_examples(&x, &[2, 0]);
        assert_eq!(g.shape().dims(), &[2, 2]);
        assert_eq!(g.data(), &[5., 6., 1., 2.]);
    }

    #[test]
    fn evaluate_runs_batched() {
        let arch = Architecture::mlp("m", InputSpec::new(1, 2, 2), 3, vec![4]);
        let mut net = crate::network::Network::seeded(&arch, 0);
        let x = Tensor::zeros([7, 1, 2, 2]);
        let labels = vec![0, 1, 2, 0, 1, 2, 0];
        let eval = evaluate(&mut net, &x, &labels, 3);
        assert!(eval.loss > 0.0);
        assert!((0.0..=1.0).contains(&eval.error));
    }

    #[test]
    fn predict_proba_batched_matches_single() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let arch = Architecture::mlp("m", InputSpec::new(1, 2, 2), 3, vec![4]);
        let mut net = crate::network::Network::seeded(&arch, 1);
        let x = Tensor::randn([5, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(2));
        let batched = predict_proba_batched(&mut net, &x, 2);
        let whole = net.predict_proba(&x);
        mn_tensor::assert_close(batched.data(), whole.data(), 1e-5);
    }
}

//! The reference-kernel lockdown suite: every blocked / parallel kernel
//! must match its naive reference implementation to ≤ 1e-5 across
//! randomized shapes — including shapes that are not multiples of the
//! register-tile or band sizes, and degenerate shapes with 0- or 1-extent
//! dimensions.
//!
//! This is the contract that lets later PRs rewrite the hot kernels
//! freely: as long as this suite passes, the optimization is behaviorally
//! invisible.

use mn_tensor::pool::{maxpool2x2_forward, maxpool2x2_forward_eval_into};
use mn_tensor::{conv, im2col, ops, Tensor, Workspace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TOL: f32 = 1e-5;

fn randn(shape: Vec<usize>, seed: u64) -> Tensor {
    Tensor::randn(shape, 1.0, &mut StdRng::seed_from_u64(seed))
}

/// Normalized max abs diff: tolerance scales with the reduction depth so
/// reordered f32 summation over long dots stays within budget.
fn close(a: &Tensor, b: &Tensor, k: usize) -> bool {
    assert_eq!(a.shape(), b.shape(), "shape mismatch");
    mn_tensor::max_abs_diff(a.data(), b.data()) <= TOL * (k.max(1) as f32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Blocked matmul == reference across randomized shapes, including
    /// 0-extent (empty) and 1-extent (vector-like) dimensions and sizes
    /// straddling the MR/NR/BAND_ROWS boundaries.
    #[test]
    fn matmul_matches_reference(
        m in 0usize..40,
        k in 0usize..40,
        n in 0usize..40,
        seed in 0u64..1_000_000,
    ) {
        let a = randn(vec![m, k], seed);
        let b = randn(vec![k, n], seed + 1);
        prop_assert!(close(&ops::matmul(&a, &b), &ops::reference::matmul(&a, &b), k));
    }

    /// Blocked A-transposed product == reference.
    #[test]
    fn matmul_tn_matches_reference(
        m in 0usize..40,
        k in 0usize..40,
        n in 0usize..40,
        seed in 0u64..1_000_000,
    ) {
        let a = randn(vec![k, m], seed);
        let b = randn(vec![k, n], seed + 1);
        prop_assert!(close(&ops::matmul_tn(&a, &b), &ops::reference::matmul_tn(&a, &b), k));
    }

    /// Blocked B-transposed product == reference.
    #[test]
    fn matmul_nt_matches_reference(
        m in 0usize..40,
        k in 0usize..40,
        n in 0usize..40,
        seed in 0u64..1_000_000,
    ) {
        let a = randn(vec![m, k], seed);
        let b = randn(vec![n, k], seed + 1);
        prop_assert!(close(&ops::matmul_nt(&a, &b), &ops::reference::matmul_nt(&a, &b), k));
    }

    /// Shapes crossing whole parallel-band boundaries (the multi-band code
    /// path) still match the reference.
    #[test]
    fn matmul_matches_reference_across_bands(
        extra in 0usize..(2 * ops::MR + 1),
        k in 1usize..24,
        n in 1usize..24,
        seed in 0u64..1_000_000,
    ) {
        let m = ops::BAND_ROWS + extra;
        let a = randn(vec![m, k], seed);
        let b = randn(vec![k, n], seed + 1);
        prop_assert!(close(&ops::matmul(&a, &b), &ops::reference::matmul(&a, &b), k));
    }

    /// Parallel direct convolution == naive reference, arbitrary geometry.
    #[test]
    fn conv_direct_matches_reference(
        n in 0usize..4,
        c in 1usize..5,
        f in 1usize..5,
        hw in 3usize..9,
        k_idx in 0usize..3,
        pad_same in proptest::bool::ANY,
        seed in 0u64..1_000_000,
    ) {
        let k = [1usize, 3, 5][k_idx];
        prop_assume!(hw + 2 * (if pad_same { k / 2 } else { 0 }) >= k);
        let pad = if pad_same { k / 2 } else { 0 };
        let input = randn(vec![n, c, hw, hw], seed);
        let weight = randn(vec![f, c, k, k], seed + 1);
        let bias = randn(vec![f], seed + 2);
        let fast = conv::conv2d_forward(&input, &weight, &bias, pad);
        if n == 0 {
            prop_assert!(fast.is_empty());
        } else {
            let slow = conv::conv2d_forward_reference(&input, &weight, &bias, pad);
            prop_assert!(close(&fast, &slow, c * k * k));
        }
    }

    /// im2col + blocked GEMM convolution == naive reference, with and
    /// without workspace reuse.
    #[test]
    fn conv_im2col_matches_reference(
        n in 0usize..4,
        c in 1usize..5,
        f in 1usize..5,
        hw in 3usize..9,
        k_idx in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let k = [1usize, 3, 5][k_idx];
        let pad = k / 2;
        let input = randn(vec![n, c, hw, hw], seed);
        let weight = randn(vec![f, c, k, k], seed + 1);
        let bias = randn(vec![f], seed + 2);
        let gemm = im2col::conv2d_forward_im2col(&input, &weight, &bias, pad);
        if n == 0 {
            prop_assert!(gemm.is_empty());
        } else {
            let slow = conv::conv2d_forward_reference(&input, &weight, &bias, pad);
            prop_assert!(close(&gemm, &slow, c * k * k));
            // A dirty reused workspace must not change the result.
            let mut ws = Workspace::new();
            let warm = im2col::conv2d_forward_im2col_ws(&input, &weight, &bias, pad, &mut ws);
            ws.release(warm);
            let reused = im2col::conv2d_forward_im2col_ws(&input, &weight, &bias, pad, &mut ws);
            prop_assert_eq!(gemm.data(), reused.data());
        }
    }

    /// Parallel max pooling == an inline naive reference, and the
    /// eval-mode variant matches the train-mode output.
    #[test]
    fn maxpool_matches_reference(
        n in 1usize..5,
        c in 1usize..4,
        h in 2usize..9,
        w in 2usize..9,
        seed in 0u64..1_000_000,
    ) {
        let input = randn(vec![n, c, h, w], seed);
        let fast = maxpool2x2_forward(&input);
        let (ho, wo) = (h / 2, w / 2);
        for b in 0..n {
            for ch in 0..c {
                for oh in 0..ho {
                    for ow in 0..wo {
                        let window = [
                            input.at4(b, ch, 2 * oh, 2 * ow),
                            input.at4(b, ch, 2 * oh, 2 * ow + 1),
                            input.at4(b, ch, 2 * oh + 1, 2 * ow),
                            input.at4(b, ch, 2 * oh + 1, 2 * ow + 1),
                        ];
                        let expect = window.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                        prop_assert_eq!(fast.output.at4(b, ch, oh, ow), expect);
                    }
                }
            }
        }
        let mut eval = Tensor::zeros([n, c, ho, wo]);
        maxpool2x2_forward_eval_into(&input, &mut eval);
        prop_assert_eq!(eval.data(), fast.output.data());
    }

    /// `matmul_into` into a dirty reused workspace tensor == fresh matmul.
    #[test]
    fn matmul_into_workspace_reuse_is_invisible(
        m in 0usize..24,
        k in 0usize..24,
        n in 0usize..24,
        seed in 0u64..1_000_000,
    ) {
        let a = randn(vec![m, k], seed);
        let b = randn(vec![k, n], seed + 1);
        let mut ws = Workspace::new();
        let dirty = randn(vec![(m * n).max(1)], seed + 2);
        ws.release(dirty);
        let mut c = ws.acquire([m, n]);
        ops::matmul_into(&a, &b, &mut c);
        prop_assert_eq!(c.data(), ops::matmul(&a, &b).data());
    }
}

/// Pinned (non-randomized) degenerate and boundary shapes, so failures
/// name the exact case.
#[test]
fn pinned_boundary_shapes() {
    let cases = [
        (0, 0, 0),
        (1, 1, 1),
        (1, 0, 1),
        (0, 7, 3),
        (ops::MR, 1, ops::NR),
        (ops::MR - 1, 3, ops::NR - 1),
        (ops::MR + 1, 3, ops::NR + 1),
        (2 * ops::MR + 1, 17, 3 * ops::NR - 1),
        (ops::BAND_ROWS, 8, ops::NR),
        (ops::BAND_ROWS + 1, 8, ops::NR + 3),
    ];
    for (i, &(m, k, n)) in cases.iter().enumerate() {
        let a = randn(vec![m, k], 100 + i as u64);
        let b = randn(vec![k, n], 200 + i as u64);
        let fast = ops::matmul(&a, &b);
        let slow = ops::reference::matmul(&a, &b);
        assert!(
            mn_tensor::max_abs_diff(fast.data(), slow.data()) <= TOL * (k.max(1) as f32),
            "matmul mismatch at case {i}: ({m}, {k}, {n})"
        );
    }
}

/// Zero extents in *non-batch* dimensions (channels, filters) are legal
/// too and degrade to empty or bias-only outputs instead of panicking.
#[test]
fn zero_extent_non_batch_dims_are_no_ops() {
    // Zero channels through max pooling.
    let x = Tensor::zeros([2, 0, 4, 4]);
    let pooled = maxpool2x2_forward(&x);
    assert_eq!(pooled.output.shape().dims(), &[2, 0, 2, 2]);
    let mut eval = Tensor::zeros([2, 0, 2, 2]);
    maxpool2x2_forward_eval_into(&x, &mut eval);
    assert!(eval.is_empty());

    // Zero filters through both convolution formulations.
    let input = Tensor::zeros([1, 3, 4, 4]);
    let no_filters = Tensor::zeros([0, 3, 3, 3]);
    let no_bias = Tensor::zeros([0]);
    assert_eq!(
        conv::conv2d_forward(&input, &no_filters, &no_bias, 1)
            .shape()
            .dims(),
        &[1, 0, 4, 4]
    );
    assert_eq!(
        im2col::conv2d_forward_im2col(&input, &no_filters, &no_bias, 1)
            .shape()
            .dims(),
        &[1, 0, 4, 4]
    );

    // Zero input channels: the output is bias-only.
    let empty_input = Tensor::zeros([1, 0, 4, 4]);
    let weight = Tensor::zeros([2, 0, 3, 3]);
    let bias = Tensor::from_vec([2], vec![1.5, -2.0]);
    let y = conv::conv2d_forward(&empty_input, &weight, &bias, 1);
    assert_eq!(y.shape().dims(), &[1, 2, 4, 4]);
    assert!(y.data()[..16].iter().all(|&v| v == 1.5));
    assert!(y.data()[16..].iter().all(|&v| v == -2.0));
}

/// The blocked kernels are bitwise identical across thread counts — the
/// parallel split is over disjoint output bands whose per-element
/// accumulation order is fixed.
#[test]
fn matmul_bitwise_identical_across_thread_counts() {
    let a = randn(vec![3 * ops::BAND_ROWS + 7, 64], 7);
    let b = randn(vec![64, 48], 8);
    let one = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(|| ops::matmul(&a, &b));
    let many = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap()
        .install(|| ops::matmul(&a, &b));
    assert_eq!(one.data(), many.data());
}

/// The explicit-AVX2 kernel backend is pinned **bitwise** against the
/// portable-scalar path — not merely within tolerance. Both paths
/// accumulate in the same per-element k-order and fuse multiply-adds
/// identically (governed by [`mn_tensor::simd::COMPILED_FMA`]), so
/// `MN_SIMD=scalar` and `MN_SIMD=avx2` runs of the same build must
/// produce identical bits.
///
/// One test function (not proptest) on purpose: backend selection is a
/// process-global, so switching it from concurrently running test
/// threads would race. The shape grid deliberately straddles the
/// MR/NR register-tile and BAND_ROWS boundaries, plus degenerate 0/1
/// extents.
#[test]
fn gemm_backends_bitwise_identical() {
    use mn_tensor::simd::{self, Backend};
    if !simd::avx2_available() {
        eprintln!("skipping: AVX2+FMA not available on this CPU");
        return;
    }
    let shapes: Vec<(usize, usize, usize)> = {
        let mut s = vec![
            (0, 5, 5),
            (5, 0, 5),
            (5, 5, 0),
            (1, 1, 1),
            (ops::MR, 17, ops::NR),
            (ops::MR - 1, 33, ops::NR - 1),
            (ops::MR + 1, 12, ops::NR + 1),
            (2 * ops::MR + 3, 29, 3 * ops::NR - 5),
            (ops::BAND_ROWS, 31, 2 * ops::NR),
            (ops::BAND_ROWS + ops::MR + 2, 24, ops::NR + 7),
        ];
        // A few pseudo-random shapes off the boundary grid.
        for seed in 0..6u64 {
            let m = (seed.wrapping_mul(2654435761) % 70) as usize + 1;
            let k = (seed.wrapping_mul(40503) % 50) as usize + 1;
            let n = (seed.wrapping_mul(9973) % 60) as usize + 1;
            s.push((m, k, n));
        }
        s
    };
    for (i, &(m, k, n)) in shapes.iter().enumerate() {
        let seed = 1000 + i as u64;
        // matmul: A [m,k] · B [k,n]
        let a = randn(vec![m, k], seed);
        let b = randn(vec![k, n], seed + 1);
        let scalar = simd::with_backend(Backend::Scalar, || ops::matmul(&a, &b));
        let avx2 = simd::with_backend(Backend::Avx2, || ops::matmul(&a, &b));
        assert_eq!(
            scalar.data(),
            avx2.data(),
            "matmul backends diverge at {m}x{k}x{n}"
        );
        // matmul_tn: Aᵀ [k,m] · B [k,n]
        let at = randn(vec![k, m], seed + 2);
        let scalar = simd::with_backend(Backend::Scalar, || ops::matmul_tn(&at, &b));
        let avx2 = simd::with_backend(Backend::Avx2, || ops::matmul_tn(&at, &b));
        assert_eq!(
            scalar.data(),
            avx2.data(),
            "matmul_tn backends diverge at {m}x{k}x{n}"
        );
        // matmul_nt: A [m,k] · Bᵀ [n,k]
        let bt = randn(vec![n, k], seed + 3);
        let scalar = simd::with_backend(Backend::Scalar, || ops::matmul_nt(&a, &bt));
        let avx2 = simd::with_backend(Backend::Avx2, || ops::matmul_nt(&a, &bt));
        assert_eq!(
            scalar.data(),
            avx2.data(),
            "matmul_nt backends diverge at {m}x{k}x{n}"
        );
    }
}

/// Backend equivalence holds through the full convolution lowering too
/// (im2col + GEMM + bias), which exercises the axpy bias path on top of
/// the micro-kernel.
#[test]
fn conv_backends_bitwise_identical() {
    use mn_tensor::simd::{self, Backend};
    if !simd::avx2_available() {
        eprintln!("skipping: AVX2+FMA not available on this CPU");
        return;
    }
    let input = randn(vec![2, 3, 8, 8], 51);
    let weight = randn(vec![4, 3, 3, 3], 52);
    let bias = randn(vec![4], 53);
    let scalar = simd::with_backend(Backend::Scalar, || {
        im2col::conv2d_forward_im2col(&input, &weight, &bias, 1)
    });
    let avx2 = simd::with_backend(Backend::Avx2, || {
        im2col::conv2d_forward_im2col(&input, &weight, &bias, 1)
    });
    assert_eq!(scalar.data(), avx2.data());
}

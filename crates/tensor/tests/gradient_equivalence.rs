//! The backward-kernel lockdown suite: the GEMM-backed backward
//! convolution kernels (col2im input gradient, im2col-transposed weight
//! gradient) must match the direct-loop ground truth in `mn_tensor::conv`
//! to ≤ 1e-5 (normalized by reduction depth) across randomized shapes —
//! including 0/1-extent dimensions and sizes off the register-tile and
//! band boundaries — and must be unaffected by dirty workspace reuse.
//!
//! This is the training-side counterpart of `kernel_equivalence.rs`: as
//! long as this suite passes, a backward-kernel rewrite is behaviorally
//! invisible to training.

use mn_tensor::{conv, im2col, Tensor, Workspace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TOL: f32 = 1e-5;

fn randn(shape: Vec<usize>, seed: u64) -> Tensor {
    Tensor::randn(shape, 1.0, &mut StdRng::seed_from_u64(seed))
}

/// Normalized closeness: tolerance scales with the reduction depth so
/// reordered f32 summation over long dots stays within budget.
fn close(a: &Tensor, b: &Tensor, depth: usize) -> bool {
    assert_eq!(a.shape(), b.shape(), "shape mismatch");
    mn_tensor::max_abs_diff(a.data(), b.data()) <= TOL * (depth.max(1) as f32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GEMM-backed input gradient == direct input gradient. The reduction
    /// depth per input element is F·K·K.
    #[test]
    fn backward_input_matches_direct(
        n in 0usize..4,
        c in 1usize..5,
        f in 1usize..6,
        hw in 3usize..9,
        k_idx in 0usize..3,
        pad_same in proptest::bool::ANY,
        seed in 0u64..1_000_000,
    ) {
        let k = [1usize, 3, 5][k_idx];
        prop_assume!(hw + 2 * (if pad_same { k / 2 } else { 0 }) >= k);
        let pad = if pad_same { k / 2 } else { 0 };
        let ho = conv::conv_out_extent(hw, k, pad);
        let wo = ho;
        let grad_out = randn(vec![n, f, ho, wo], seed);
        let weight = randn(vec![f, c, k, k], seed + 1);
        let direct = conv::conv2d_backward_input(&grad_out, &weight, hw, hw, pad);
        let gemm = im2col::conv2d_backward_input_im2col(&grad_out, &weight, hw, hw, pad);
        prop_assert!(close(&gemm, &direct, f * k * k));
    }

    /// GEMM-backed weight gradient == direct weight gradient; bias
    /// gradients are computed in the identical order and must be bitwise
    /// equal. The weight reduction depth is N·H'·W'.
    #[test]
    fn backward_params_match_direct(
        n in 0usize..4,
        c in 1usize..5,
        f in 1usize..6,
        hw in 3usize..9,
        k_idx in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let k = [1usize, 3, 5][k_idx];
        let pad = k / 2;
        let ho = conv::conv_out_extent(hw, k, pad);
        let input = randn(vec![n, c, hw, hw], seed);
        let grad_out = randn(vec![n, f, ho, ho], seed + 1);
        let (gw_d, gb_d) = conv::conv2d_backward_params(&grad_out, &input, k, pad);
        let (gw_g, gb_g) = im2col::conv2d_backward_params_im2col(&grad_out, &input, k, pad);
        prop_assert!(close(&gw_g, &gw_d, n * ho * ho));
        prop_assert_eq!(gb_g.data(), gb_d.data());
    }

    /// A dirty reused workspace must not change either backward kernel's
    /// result (bitwise).
    #[test]
    fn backward_workspace_reuse_is_invisible(
        n in 1usize..3,
        c in 1usize..4,
        f in 1usize..4,
        hw in 3usize..7,
        seed in 0u64..1_000_000,
    ) {
        let (k, pad) = (3usize, 1usize);
        let input = randn(vec![n, c, hw, hw], seed);
        let grad_out = randn(vec![n, f, hw, hw], seed + 1);
        let weight = randn(vec![f, c, k, k], seed + 2);

        let mut ws = Workspace::new();
        // Warm the pool with dirty buffers of the shapes the kernels use.
        let fresh_gin = im2col::conv2d_backward_input_im2col(&grad_out, &weight, hw, hw, pad);
        let warm = im2col::conv2d_backward_input_im2col_ws(&grad_out, &weight, hw, hw, pad, &mut ws);
        ws.release(warm);
        let reused = im2col::conv2d_backward_input_im2col_ws(&grad_out, &weight, hw, hw, pad, &mut ws);
        prop_assert_eq!(fresh_gin.data(), reused.data());
        ws.release(reused);

        let (fresh_gw, fresh_gb) = im2col::conv2d_backward_params_im2col(&grad_out, &input, k, pad);
        let (warm_gw, warm_gb) =
            im2col::conv2d_backward_params_im2col_ws(&grad_out, &input, k, pad, &mut ws);
        ws.release(warm_gw);
        ws.release(warm_gb);
        let (gw, gb) = im2col::conv2d_backward_params_im2col_ws(&grad_out, &input, k, pad, &mut ws);
        prop_assert_eq!(fresh_gw.data(), gw.data());
        prop_assert_eq!(fresh_gb.data(), gb.data());
    }

    /// The `_into` variants of the direct backward kernels overwrite stale
    /// buffer contents completely.
    #[test]
    fn direct_into_variants_overwrite_stale_output(
        n in 1usize..3,
        c in 1usize..4,
        f in 1usize..4,
        hw in 3usize..7,
        seed in 0u64..1_000_000,
    ) {
        let (k, pad) = (3usize, 1usize);
        let input = randn(vec![n, c, hw, hw], seed);
        let grad_out = randn(vec![n, f, hw, hw], seed + 1);
        let weight = randn(vec![f, c, k, k], seed + 2);

        let mut gin = Tensor::filled([n, c, hw, hw], f32::NAN);
        conv::conv2d_backward_input_into(&grad_out, &weight, pad, &mut gin);
        let expect = conv::conv2d_backward_input(&grad_out, &weight, hw, hw, pad);
        prop_assert_eq!(gin.data(), expect.data());

        let mut gw = Tensor::filled([f, c, k, k], f32::NAN);
        let mut gb = Tensor::filled([f], f32::NAN);
        conv::conv2d_backward_params_into(&grad_out, &input, k, pad, &mut gw, &mut gb);
        let (ew, eb) = conv::conv2d_backward_params(&grad_out, &input, k, pad);
        prop_assert_eq!(gw.data(), ew.data());
        prop_assert_eq!(gb.data(), eb.data());
    }
}

/// Pinned degenerate and boundary geometries, so failures name the exact
/// case: empty batch, single filter/channel, 1×1 spatial output, and a
/// batch·position count that crosses GEMM band boundaries.
#[test]
fn pinned_backward_boundary_shapes() {
    let cases: &[(usize, usize, usize, usize, usize)] = &[
        // (n, c, f, hw, k)
        (0, 3, 4, 5, 3),  // empty batch
        (1, 1, 1, 3, 3),  // all-ones geometry
        (2, 1, 1, 3, 1),  // 1x1 kernel
        (1, 2, 3, 3, 5),  // kernel == padded extent edge
        (3, 2, 17, 8, 3), // filters past one NR panel
        (2, 4, 4, 16, 3), // positions cross MR/BAND boundaries
    ];
    for (i, &(n, c, f, hw, k)) in cases.iter().enumerate() {
        let pad = k / 2;
        let ho = conv::conv_out_extent(hw, k, pad);
        let input = randn(vec![n, c, hw, hw], 300 + i as u64);
        let grad_out = randn(vec![n, f, ho, ho], 400 + i as u64);
        let weight = randn(vec![f, c, k, k], 500 + i as u64);

        let direct = conv::conv2d_backward_input(&grad_out, &weight, hw, hw, pad);
        let gemm = im2col::conv2d_backward_input_im2col(&grad_out, &weight, hw, hw, pad);
        assert!(
            mn_tensor::max_abs_diff(direct.data(), gemm.data()) <= TOL * (f * k * k) as f32,
            "backward_input mismatch at case {i}: ({n}, {c}, {f}, {hw}, {k})"
        );

        let (gw_d, gb_d) = conv::conv2d_backward_params(&grad_out, &input, k, pad);
        let (gw_g, gb_g) = im2col::conv2d_backward_params_im2col(&grad_out, &input, k, pad);
        assert!(
            mn_tensor::max_abs_diff(gw_d.data(), gw_g.data()) <= TOL * (n * ho * ho).max(1) as f32,
            "backward_params mismatch at case {i}: ({n}, {c}, {f}, {hw}, {k})"
        );
        assert_eq!(gb_d.data(), gb_g.data(), "bias grad differs at case {i}");
    }
}

/// The GEMM backward kernels are bitwise identical across thread counts —
/// the GEMM core accumulates every output element in a fixed order, and
/// the col2im scatter splits work per batch item.
#[test]
fn backward_kernels_bitwise_identical_across_thread_counts() {
    let (n, c, f, hw, k, pad) = (4usize, 6usize, 8usize, 12usize, 3usize, 1usize);
    let input = randn(vec![n, c, hw, hw], 7);
    let grad_out = randn(vec![n, f, hw, hw], 8);
    let weight = randn(vec![f, c, k, k], 9);
    let run = |threads: usize| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool builds")
            .install(|| {
                let gin = im2col::conv2d_backward_input_im2col(&grad_out, &weight, hw, hw, pad);
                let (gw, gb) = im2col::conv2d_backward_params_im2col(&grad_out, &input, k, pad);
                (gin, gw, gb)
            })
    };
    let (gin1, gw1, gb1) = run(1);
    let (gin4, gw4, gb4) = run(4);
    assert_eq!(gin1.data(), gin4.data());
    assert_eq!(gw1.data(), gw4.data());
    assert_eq!(gb1.data(), gb4.data());
}

/// Finite-difference spot check of the GEMM backward kernels directly
/// (not just vs the direct loops): L = 0.5‖conv(x)‖² gradients.
#[test]
fn gemm_backward_finite_difference() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut input = Tensor::randn([1, 2, 4, 4], 1.0, &mut rng);
    let mut weight = Tensor::randn([3, 2, 3, 3], 1.0, &mut rng);
    let bias = Tensor::zeros([3]);
    let pad = 1;
    let loss = |x: &Tensor, w: &Tensor| -> f32 {
        conv::conv2d_forward(x, w, &bias, pad)
            .data()
            .iter()
            .map(|v| v * v)
            .sum::<f32>()
            * 0.5
    };
    let out = conv::conv2d_forward(&input, &weight, &bias, pad);
    let gin = im2col::conv2d_backward_input_im2col(&out, &weight, 4, 4, pad);
    let (gw, _) = im2col::conv2d_backward_params_im2col(&out, &input, 3, pad);
    let eps = 1e-2;
    for idx in [0usize, 9, 21, 31] {
        let orig = input[idx];
        input[idx] = orig + eps;
        let lp = loss(&input, &weight);
        input[idx] = orig - eps;
        let lm = loss(&input, &weight);
        input[idx] = orig;
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (numeric - gin[idx]).abs() / (1.0 + gin[idx].abs()) < 5e-2,
            "input grad mismatch at {idx}: {numeric} vs {}",
            gin[idx]
        );
    }
    for idx in [0usize, 13, 27, 53] {
        let orig = weight[idx];
        weight[idx] = orig + eps;
        let lp = loss(&input, &weight);
        weight[idx] = orig - eps;
        let lm = loss(&input, &weight);
        weight[idx] = orig;
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (numeric - gw[idx]).abs() / (1.0 + gw[idx].abs()) < 5e-2,
            "weight grad mismatch at {idx}: {numeric} vs {}",
            gw[idx]
        );
    }
}

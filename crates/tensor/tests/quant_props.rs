//! Property lockdown for the quantized storage encodings in
//! [`mn_tensor::quant`]: round-trip error bounds for `f16` and `i8`,
//! exactness on representable values, and typed rejection of non-finite
//! input. These bounds are what the quantized-artifact drift tolerances
//! in the serving stack are derived from — if they move, the artifact
//! suite's pins move with them.

use mn_tensor::quant::{
    dequantize_f16, dequantize_i8, f16_bits_from_f32, f32_from_f16_bits, quantize_f16, quantize_i8,
    QuantError, F16_MAX,
};
use proptest::prelude::*;

/// Units-in-the-last-place bound for binary16 round-to-nearest-even:
/// relative error ≤ 2^-11 for normal halves.
const F16_REL: f32 = 1.0 / 2048.0;

/// Smallest normal binary16 (2^-14); below this, absolute error is
/// bounded by half the subnormal step (2^-25) instead.
const F16_MIN_NORMAL: f32 = 6.103_515_6e-5;
const F16_SUBNORMAL_HALF_STEP: f32 = 1.0 / 33_554_432.0; // 2^-25

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// f32 → f16 → f32 over the full representable-magnitude range:
    /// relative error ≤ 2^-11 for normal values, absolute error ≤ 2^-25
    /// in the subnormal range, and the sign always survives.
    #[test]
    fn f16_round_trip_error_bound(v in -65504.0f32..65504.0) {
        let back = f32_from_f16_bits(f16_bits_from_f32(v));
        let err = (back - v).abs();
        if v.abs() >= F16_MIN_NORMAL {
            prop_assert!(
                err <= v.abs() * F16_REL,
                "v={v} back={back} rel_err={}",
                err / v.abs()
            );
        } else {
            prop_assert!(err <= F16_SUBNORMAL_HALF_STEP, "v={v} back={back} err={err}");
        }
        if v != 0.0 && back != 0.0 {
            prop_assert_eq!(v.is_sign_negative(), back.is_sign_negative());
        }
    }

    /// Values beyond ±65504 saturate to exactly ±F16_MAX — a finite
    /// weight never becomes Inf in an artifact.
    #[test]
    fn f16_saturates_beyond_max(mag in 65505.0f32..3.0e38, neg in proptest::bool::ANY) {
        let v = if neg { -mag } else { mag };
        let back = f32_from_f16_bits(f16_bits_from_f32(v));
        prop_assert_eq!(back.abs(), F16_MAX);
        prop_assert_eq!(back.is_sign_negative(), neg);
    }

    /// Encoding an exactly representable half (any finite f16 bit
    /// pattern lifted to f32) is lossless.
    #[test]
    fn f16_exact_on_representable(bits in 0u16..0xFFFF) {
        let exp = (bits >> 10) & 0x1F;
        prop_assume!(exp != 0x1F); // skip Inf/NaN patterns
        let v = f32_from_f16_bits(bits);
        let back = f32_from_f16_bits(f16_bits_from_f32(v));
        prop_assert_eq!(v.to_bits(), back.to_bits());
    }

    /// Batch f16 round trip through the slice API preserves the same
    /// bounds element-wise, including a zero and the extremes spliced in.
    #[test]
    fn f16_slice_round_trip(xs in proptest::collection::vec(-65504.0f32..65504.0, 0..64)) {
        let mut xs = xs;
        xs.extend_from_slice(&[0.0, -0.0, 65504.0, -65504.0, F16_MIN_NORMAL, 1e-7]);
        let halves = quantize_f16(&xs).unwrap();
        let mut back = vec![0.0f32; xs.len()];
        dequantize_f16(&halves, &mut back);
        for (v, b) in xs.iter().zip(&back) {
            let bound = if v.abs() >= F16_MIN_NORMAL {
                v.abs() * F16_REL
            } else {
                F16_SUBNORMAL_HALF_STEP
            };
            prop_assert!((b - v).abs() <= bound, "v={v} back={b}");
        }
    }

    /// i8 symmetric quantization: absolute error ≤ scale/2 everywhere,
    /// scale = max|x|/127, and the extreme element reconstructs exactly.
    #[test]
    fn i8_round_trip_error_bound(xs in proptest::collection::vec(-1.0e3f32..1.0e3, 1..64)) {
        let (scale, codes) = quantize_i8(&xs).unwrap();
        let max_abs = xs.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        if max_abs > 0.0 {
            prop_assert!((scale - max_abs / 127.0).abs() <= max_abs * 1e-6);
        } else {
            prop_assert_eq!(scale, 1.0);
        }
        let mut back = vec![0.0f32; xs.len()];
        dequantize_i8(scale, &codes, &mut back);
        for (v, b) in xs.iter().zip(&back) {
            prop_assert!(
                (b - v).abs() <= scale / 2.0 + scale * 1e-5,
                "v={v} back={b} scale={scale}"
            );
        }
        // The max-magnitude element lands on code ±127 and reconstructs
        // to ±scale·127 — within one f32 rounding of itself.
        if max_abs > 0.0 {
            let i = xs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
                .unwrap()
                .0;
            prop_assert_eq!(codes[i].unsigned_abs(), 127);
            prop_assert!((back[i] - xs[i]).abs() <= max_abs * 1e-6);
        }
    }

    /// A NaN or ±Inf anywhere in the tensor fails both encoders with the
    /// poisoned index — never a silently saturated artifact.
    #[test]
    fn non_finite_rejected_with_index(
        xs in proptest::collection::vec(-10.0f32..10.0, 1..32),
        idx in 0usize..32,
        kind in 0usize..3,
    ) {
        let mut xs = xs;
        let idx = idx % xs.len();
        xs[idx] = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY][kind];
        // The *first* non-finite index is reported; ours is the only one.
        match quantize_f16(&xs) {
            Err(QuantError::NonFinite { index, .. }) => prop_assert_eq!(index, idx),
            other => prop_assert!(false, "f16 accepted non-finite: {other:?}"),
        }
        match quantize_i8(&xs) {
            Err(QuantError::NonFinite { index, .. }) => prop_assert_eq!(index, idx),
            other => prop_assert!(false, "i8 accepted non-finite: {other:?}"),
        }
    }
}

/// Deterministic corner pins that proptest ranges can miss.
#[test]
fn encoding_corner_cases() {
    // Zero is exact under both encodings (and i8 uses unit scale).
    assert_eq!(f32_from_f16_bits(f16_bits_from_f32(0.0)).to_bits(), 0);
    assert_eq!(
        f32_from_f16_bits(f16_bits_from_f32(-0.0)).to_bits(),
        (-0.0f32).to_bits()
    );
    let (scale, codes) = quantize_i8(&[0.0, 0.0]).unwrap();
    assert_eq!(scale, 1.0);
    assert_eq!(codes, vec![0, 0]);

    // ±F16_MAX round-trips exactly.
    for v in [F16_MAX, -F16_MAX] {
        assert_eq!(f32_from_f16_bits(f16_bits_from_f32(v)), v);
    }

    // The smallest positive f16 subnormal round-trips exactly; anything
    // below half of it flushes to zero.
    let tiny = f32_from_f16_bits(0x0001);
    assert_eq!(f16_bits_from_f32(tiny), 0x0001);
    assert_eq!(f16_bits_from_f32(tiny / 4.0), 0);

    // f32::MIN_POSITIVE (a subnormal-range value for f16) stays finite.
    let back = f32_from_f16_bits(f16_bits_from_f32(f32::MIN_POSITIVE));
    assert!(back.abs() <= F16_SUBNORMAL_HALF_STEP);
}

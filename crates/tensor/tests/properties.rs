//! Property-based tests of the tensor kernels: the optimized loops must
//! agree with naive reference implementations for arbitrary shapes, and
//! algebraic identities must hold.

use mn_tensor::{conv, ops, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn randn(shape: Vec<usize>, seed: u64) -> Tensor {
    Tensor::randn(shape, 1.0, &mut StdRng::seed_from_u64(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fast convolution agrees with the obviously-correct reference
    /// for arbitrary geometry, kernel size, and padding.
    #[test]
    fn conv_forward_matches_reference(
        n in 1usize..3,
        c in 1usize..4,
        f in 1usize..4,
        hw in 3usize..8,
        k_idx in 0usize..3,
        pad_same in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let k = [1usize, 3, 5][k_idx];
        prop_assume!(hw + 2 * (if pad_same { k / 2 } else { 0 }) >= k);
        let pad = if pad_same { k / 2 } else { 0 };
        let input = randn(vec![n, c, hw, hw], seed);
        let weight = randn(vec![f, c, k, k], seed + 1);
        let bias = randn(vec![f], seed + 2);
        let fast = conv::conv2d_forward(&input, &weight, &bias, pad);
        let slow = conv::conv2d_forward_reference(&input, &weight, &bias, pad);
        prop_assert!(mn_tensor::max_abs_diff(fast.data(), slow.data()) < 1e-3);
    }

    /// Convolution is linear in its input:
    /// conv(a·x + b·y) = a·conv(x) + b·conv(y) (zero bias).
    #[test]
    fn conv_is_linear_in_input(seed in 0u64..1000, a in -2.0f32..2.0, b in -2.0f32..2.0) {
        let x = randn(vec![1, 2, 5, 5], seed);
        let y = randn(vec![1, 2, 5, 5], seed + 1);
        let w = randn(vec![3, 2, 3, 3], seed + 2);
        let zero_bias = Tensor::zeros([3]);
        let mut combo = x.clone();
        combo.scale(a);
        combo.axpy(b, &y);
        let lhs = conv::conv2d_forward(&combo, &w, &zero_bias, 1);
        let mut rhs = conv::conv2d_forward(&x, &w, &zero_bias, 1);
        rhs.scale(a);
        rhs.axpy(b, &conv::conv2d_forward(&y, &w, &zero_bias, 1));
        prop_assert!(mn_tensor::max_abs_diff(lhs.data(), rhs.data()) < 1e-3);
    }

    /// Matrix multiplication is associative: (AB)C = A(BC).
    #[test]
    fn matmul_is_associative(m in 1usize..5, k in 1usize..5, l in 1usize..5, n in 1usize..5, seed in 0u64..1000) {
        let a = randn(vec![m, k], seed);
        let b = randn(vec![k, l], seed + 1);
        let c = randn(vec![l, n], seed + 2);
        let left = ops::matmul(&ops::matmul(&a, &b), &c);
        let right = ops::matmul(&a, &ops::matmul(&b, &c));
        prop_assert!(mn_tensor::max_abs_diff(left.data(), right.data()) < 1e-3);
    }

    /// Transposed-product kernels match explicit transposition.
    #[test]
    fn transpose_product_identities(m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..1000) {
        let a = randn(vec![k, m], seed);
        let b = randn(vec![k, n], seed + 1);
        let tn = ops::matmul_tn(&a, &b);
        let explicit = ops::matmul(&ops::transpose(&a), &b);
        prop_assert!(mn_tensor::max_abs_diff(tn.data(), explicit.data()) < 1e-4);

        let c = randn(vec![m, k], seed + 2);
        let d = randn(vec![n, k], seed + 3);
        let nt = ops::matmul_nt(&c, &d);
        let explicit = ops::matmul(&c, &ops::transpose(&d));
        prop_assert!(mn_tensor::max_abs_diff(nt.data(), explicit.data()) < 1e-4);
    }

    /// Softmax rows always form a probability distribution, whatever the
    /// logit magnitudes.
    #[test]
    fn softmax_rows_are_distributions(
        rows in 1usize..6,
        cols in 1usize..6,
        scale in 0.01f32..100.0,
        seed in 0u64..1000,
    ) {
        let mut x = randn(vec![rows, cols], seed);
        x.scale(scale);
        ops::softmax_rows(&mut x);
        for r in 0..rows {
            let row = &x.data()[r * cols..(r + 1) * cols];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row {r} sums to {sum}");
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    /// Max pooling never invents values: every output element is present
    /// in the input, and pooling an all-equal tensor is the identity value.
    #[test]
    fn maxpool_selects_existing_values(n in 1usize..3, c in 1usize..3, hw in 2usize..7, seed in 0u64..1000) {
        let input = randn(vec![n, c, hw, hw], seed);
        let out = mn_tensor::pool::maxpool2x2_forward(&input);
        for (i, &v) in out.output.data().iter().enumerate() {
            let idx = out.argmax[i];
            prop_assert_eq!(input.data()[idx], v);
        }
    }

    /// Gathering examples preserves rows exactly.
    #[test]
    fn column_sums_match_manual(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
        let x = randn(vec![rows, cols], seed);
        let sums = ops::column_sums(&x);
        for j in 0..cols {
            let manual: f32 = (0..rows).map(|i| x.at2(i, j)).sum();
            prop_assert!((sums[j] - manual).abs() < 1e-4);
        }
    }
}

//! Tensor shapes and index arithmetic.

use std::fmt;

/// The shape of a [`crate::Tensor`]: a list of dimension extents.
///
/// A `Shape` is an inexpensive wrapper around `Vec<usize>` that adds the
/// index arithmetic the kernels need (row-major linearization) and a
/// human-readable `Display`.
///
/// ```
/// use mn_tensor::Shape;
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.ndim(), 3);
/// assert_eq!(format!("{s}"), "[2, 3, 4]");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension extents.
    ///
    /// Zero extents are legal and produce a zero-element tensor: the
    /// inference engine represents an empty request batch as `[0, C, H, W]`
    /// and its predictions as `[0, K]`. Kernels degrade to empty (or
    /// bias-only) outputs on zero batch/channel/filter extents; kernels
    /// with a minimum spatial extent (convolution, max pooling) still
    /// panic loudly when it is violated.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty (a tensor always has a rank).
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "shape must have at least one dimension");
        Shape(dims)
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of extents).
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Whether the shape has zero total elements (some extent is zero,
    /// e.g. an empty request batch).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extent of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.ndim()`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// The extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Row-major linear index of a 2-D coordinate.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the shape is not 2-D or the coordinate is out
    /// of bounds.
    #[inline]
    pub fn index2(&self, r: usize, c: usize) -> usize {
        debug_assert_eq!(self.ndim(), 2, "index2 on non-matrix shape {self}");
        debug_assert!(r < self.0[0] && c < self.0[1], "({r},{c}) out of {self}");
        r * self.0[1] + c
    }

    /// Row-major linear index of a 4-D (NCHW) coordinate.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the shape is not 4-D or the coordinate is out
    /// of bounds.
    #[inline]
    pub fn index4(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert_eq!(self.ndim(), 4, "index4 on non-4D shape {self}");
        debug_assert!(
            n < self.0[0] && c < self.0[1] && h < self.0[2] && w < self.0[3],
            "({n},{c},{h},{w}) out of {self}"
        );
        ((n * self.0[1] + c) * self.0[2] + h) * self.0[3] + w
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_product() {
        assert_eq!(Shape::new(vec![2, 3, 4]).len(), 24);
        assert_eq!(Shape::new(vec![7]).len(), 7);
    }

    #[test]
    fn zero_extent_is_a_legal_empty_batch() {
        let s = Shape::new(vec![0, 3, 8, 8]);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert_eq!(s.dim(0), 0);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_rejected() {
        Shape::new(vec![]);
    }

    #[test]
    fn index2_row_major() {
        let s = Shape::new(vec![3, 5]);
        assert_eq!(s.index2(0, 0), 0);
        assert_eq!(s.index2(0, 4), 4);
        assert_eq!(s.index2(1, 0), 5);
        assert_eq!(s.index2(2, 3), 13);
    }

    #[test]
    fn index4_nchw() {
        let s = Shape::new(vec![2, 3, 4, 5]);
        assert_eq!(s.index4(0, 0, 0, 0), 0);
        assert_eq!(s.index4(0, 0, 0, 1), 1);
        assert_eq!(s.index4(0, 0, 1, 0), 5);
        assert_eq!(s.index4(0, 1, 0, 0), 20);
        assert_eq!(s.index4(1, 0, 0, 0), 60);
        assert_eq!(s.index4(1, 2, 3, 4), 119);
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", Shape::new(vec![1, 2])), "[1, 2]");
    }

    #[test]
    fn conversions() {
        let a: Shape = vec![2, 2].into();
        let b: Shape = [2usize, 2].into();
        assert_eq!(a, b);
    }
}

//! Tensor shapes and index arithmetic.

use std::fmt;

/// Maximum tensor rank. The paper's networks need at most NCHW (4-D);
/// keeping the bound const lets [`Shape`] store its extents inline.
pub const MAX_NDIM: usize = 4;

/// The shape of a [`crate::Tensor`]: a list of dimension extents.
///
/// A `Shape` stores up to [`MAX_NDIM`] extents **inline** (no heap
/// allocation), which is what lets the [`crate::Workspace`]-driven hot
/// paths build tensors without touching the allocator: a steady-state
/// training or inference step constructs thousands of shapes, and each
/// one is a couple of register moves. Besides storage it adds the index
/// arithmetic the kernels need (row-major linearization) and a
/// human-readable `Display`.
///
/// ```
/// use mn_tensor::Shape;
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.ndim(), 3);
/// assert_eq!(format!("{s}"), "[2, 3, 4]");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Shape {
    dims: [usize; MAX_NDIM],
    ndim: usize,
}

impl Shape {
    /// Creates a shape from dimension extents.
    ///
    /// Zero extents are legal and produce a zero-element tensor: the
    /// inference engine represents an empty request batch as `[0, C, H, W]`
    /// and its predictions as `[0, K]`. Kernels degrade to empty (or
    /// bias-only) outputs on zero batch/channel/filter extents; kernels
    /// with a minimum spatial extent (convolution, max pooling) still
    /// panic loudly when it is violated.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty (a tensor always has a rank) or has more
    /// than [`MAX_NDIM`] dimensions.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape::from_dims(&dims)
    }

    /// Creates a shape from a slice of extents, without allocating.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Shape::new`].
    pub fn from_dims(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "shape must have at least one dimension");
        assert!(
            dims.len() <= MAX_NDIM,
            "shape rank {} exceeds MAX_NDIM {MAX_NDIM}",
            dims.len()
        );
        let mut inline = [0usize; MAX_NDIM];
        inline[..dims.len()].copy_from_slice(dims);
        Shape {
            dims: inline,
            ndim: dims.len(),
        }
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.ndim
    }

    /// Total number of elements (product of extents).
    pub fn len(&self) -> usize {
        self.dims[..self.ndim].iter().product()
    }

    /// Whether the shape has zero total elements (some extent is zero,
    /// e.g. an empty request batch).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extent of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.ndim()`.
    pub fn dim(&self, i: usize) -> usize {
        assert!(i < self.ndim, "dimension {i} out of rank {}", self.ndim);
        self.dims[i]
    }

    /// The extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.ndim]
    }

    /// Returns a copy of the shape with dimension `i` replaced by `v` —
    /// the allocation-free way to derive a mini-batch shape from a full
    /// batch shape.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.ndim()`.
    pub fn with_dim(&self, i: usize, v: usize) -> Shape {
        assert!(i < self.ndim, "dimension {i} out of rank {}", self.ndim);
        let mut s = *self;
        s.dims[i] = v;
        s
    }

    /// Row-major linear index of a 2-D coordinate.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the shape is not 2-D or the coordinate is out
    /// of bounds.
    #[inline]
    pub fn index2(&self, r: usize, c: usize) -> usize {
        debug_assert_eq!(self.ndim(), 2, "index2 on non-matrix shape {self}");
        debug_assert!(
            r < self.dims[0] && c < self.dims[1],
            "({r},{c}) out of {self}"
        );
        r * self.dims[1] + c
    }

    /// Row-major linear index of a 4-D (NCHW) coordinate.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the shape is not 4-D or the coordinate is out
    /// of bounds.
    #[inline]
    pub fn index4(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert_eq!(self.ndim(), 4, "index4 on non-4D shape {self}");
        debug_assert!(
            n < self.dims[0] && c < self.dims[1] && h < self.dims[2] && w < self.dims[3],
            "({n},{c},{h},{w}) out of {self}"
        );
        ((n * self.dims[1] + c) * self.dims[2] + h) * self.dims[3] + w
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::from_dims(&dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::from_dims(dims)
    }
}

impl From<&Shape> for Shape {
    fn from(shape: &Shape) -> Self {
        *shape
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::from_dims(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_product() {
        assert_eq!(Shape::new(vec![2, 3, 4]).len(), 24);
        assert_eq!(Shape::new(vec![7]).len(), 7);
    }

    #[test]
    fn zero_extent_is_a_legal_empty_batch() {
        let s = Shape::new(vec![0, 3, 8, 8]);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert_eq!(s.dim(0), 0);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_rejected() {
        Shape::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_NDIM")]
    fn over_rank_rejected() {
        Shape::new(vec![1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "out of rank")]
    fn dim_out_of_rank_rejected() {
        Shape::new(vec![2, 3]).dim(2);
    }

    #[test]
    fn index2_row_major() {
        let s = Shape::new(vec![3, 5]);
        assert_eq!(s.index2(0, 0), 0);
        assert_eq!(s.index2(0, 4), 4);
        assert_eq!(s.index2(1, 0), 5);
        assert_eq!(s.index2(2, 3), 13);
    }

    #[test]
    fn index4_nchw() {
        let s = Shape::new(vec![2, 3, 4, 5]);
        assert_eq!(s.index4(0, 0, 0, 0), 0);
        assert_eq!(s.index4(0, 0, 0, 1), 1);
        assert_eq!(s.index4(0, 0, 1, 0), 5);
        assert_eq!(s.index4(0, 1, 0, 0), 20);
        assert_eq!(s.index4(1, 0, 0, 0), 60);
        assert_eq!(s.index4(1, 2, 3, 4), 119);
    }

    #[test]
    fn display_format() {
        assert_eq!(format!("{}", Shape::new(vec![1, 2])), "[1, 2]");
    }

    #[test]
    fn conversions() {
        let a: Shape = vec![2, 2].into();
        let b: Shape = [2usize, 2].into();
        let c: Shape = (&a).into();
        let d: Shape = a.dims().into();
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a, d);
    }
}

//! [`Workspace`]: a reusable scratch-buffer arena for inference hot paths.
//!
//! Every layer of a forward pass produces a fresh activation tensor, and
//! the im2col convolution path needs a large unfold buffer per call. Under
//! batched serving those allocations repeat with identical sizes on every
//! request, so the network forward pass threads a `Workspace` through the
//! layers instead: finished buffers are [released](Workspace::release) back
//! into a pool and the next [acquire](Workspace::acquire) reuses them.
//! After the first request through a network the pool reaches its
//! high-water set of buffers and steady-state inference performs no heap
//! allocation for activations or im2col scratch.
//!
//! A workspace is deliberately not thread-safe: the batched ensemble
//! engine keeps one workspace **per member worker**, which keeps the hot
//! path lock-free.
//!
//! ```
//! use mn_tensor::{Tensor, Workspace};
//!
//! let mut ws = Workspace::new();
//! let a = ws.acquire([4, 4]);
//! assert_eq!(a.sum(), 0.0); // acquired tensors are zeroed
//! ws.release(a);
//! let b = ws.acquire([2, 8]); // reuses the same 16-element buffer
//! assert_eq!(b.len(), 16);
//! assert_eq!(ws.pooled_buffers(), 0);
//! ```

use crate::{Shape, Tensor};

/// A pool of reusable `f32` buffers handed out as zeroed [`Tensor`]s.
#[derive(Default)]
pub struct Workspace {
    pool: Vec<Vec<f32>>,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Returns a **zeroed** tensor of `shape`, reusing pooled storage when
    /// possible.
    ///
    /// Reuse picks the smallest pooled buffer whose capacity fits; if none
    /// fits, the largest pooled buffer is grown instead of allocating a
    /// fresh one, so the pool size stays bounded by the high-water count of
    /// simultaneously live tensors.
    pub fn acquire<S: Into<Shape>>(&mut self, shape: S) -> Tensor {
        let shape = shape.into();
        let len = shape.len();
        let mut buf = self.take_buffer(len);
        buf.clear();
        buf.resize(len, 0.0);
        Tensor::from_vec(shape, buf)
    }

    /// Like [`Workspace::acquire`], but with **unspecified** (stale)
    /// contents — for kernels that overwrite every output element, this
    /// skips a full-buffer zeroing memset per call. Do **not** use for
    /// outputs with elements the consuming kernel leaves untouched.
    pub fn acquire_uninit<S: Into<Shape>>(&mut self, shape: S) -> Tensor {
        let shape = shape.into();
        let len = shape.len();
        let mut buf = self.take_buffer(len);
        if buf.len() >= len {
            buf.truncate(len);
        } else {
            buf.resize(len, 0.0);
        }
        Tensor::from_vec(shape, buf)
    }

    /// Removes and returns the best-fitting pooled buffer for `len`
    /// elements (smallest sufficient capacity, else the largest so growth
    /// reuses it), or a fresh allocation when the pool is empty.
    fn take_buffer(&mut self, len: usize) -> Vec<f32> {
        let mut best: Option<usize> = None;
        for (i, buf) in self.pool.iter().enumerate() {
            let fits = buf.capacity() >= len;
            match best {
                Some(j) => {
                    let best_fits = self.pool[j].capacity() >= len;
                    let better = if fits && best_fits {
                        buf.capacity() < self.pool[j].capacity()
                    } else if fits != best_fits {
                        fits
                    } else {
                        buf.capacity() > self.pool[j].capacity()
                    };
                    if better {
                        best = Some(i);
                    }
                }
                None => best = Some(i),
            }
        }
        match best {
            Some(i) => self.pool.swap_remove(i),
            None => Vec::with_capacity(len),
        }
    }

    /// Returns a tensor's storage to the pool for future reuse.
    ///
    /// Releasing a tensor the workspace did not create is fine — the pool
    /// only cares about raw buffers.
    pub fn release(&mut self, t: Tensor) {
        let buf = t.into_vec();
        if buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    /// Number of buffers currently parked in the pool.
    pub fn pooled_buffers(&self) -> usize {
        self.pool.len()
    }

    /// Total `f32` capacity currently parked in the pool.
    pub fn pooled_capacity(&self) -> usize {
        self.pool.iter().map(|b| b.capacity()).sum()
    }

    /// Drops every pooled buffer.
    pub fn clear(&mut self) {
        self.pool.clear();
    }
}

impl std::fmt::Debug for Workspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workspace")
            .field("buffers", &self.pool.len())
            .field("capacity", &self.pooled_capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_returns_zeroed_tensor_of_requested_shape() {
        let mut ws = Workspace::new();
        let mut t = ws.acquire([3, 4]);
        assert_eq!(t.shape().dims(), &[3, 4]);
        assert!(t.data().iter().all(|&v| v == 0.0));
        // Dirty the buffer, release, re-acquire: still zeroed.
        t.data_mut().iter_mut().for_each(|v| *v = 7.0);
        ws.release(t);
        let t2 = ws.acquire([3, 4]);
        assert!(t2.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn acquire_uninit_reuses_without_zeroing_and_sizes_correctly() {
        let mut ws = Workspace::new();
        let mut t = ws.acquire([8]);
        t.data_mut().iter_mut().for_each(|v| *v = 3.0);
        ws.release(t);
        // Same-size reuse: contents are unspecified (here: stale 3s), but
        // the length and shape must be exact.
        let t2 = ws.acquire_uninit([2, 4]);
        assert_eq!(t2.len(), 8);
        assert_eq!(t2.shape().dims(), &[2, 4]);
        ws.release(t2);
        // Shrinking and growing reuse must also produce exact lengths.
        let small = ws.acquire_uninit([3]);
        assert_eq!(small.len(), 3);
        ws.release(small);
        let big = ws.acquire_uninit([16]);
        assert_eq!(big.len(), 16);
    }

    #[test]
    fn release_then_acquire_reuses_storage() {
        let mut ws = Workspace::new();
        let t = ws.acquire([64]);
        ws.release(t);
        assert_eq!(ws.pooled_buffers(), 1);
        let _t2 = ws.acquire([32]); // fits in the pooled 64-element buffer
        assert_eq!(ws.pooled_buffers(), 0);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut ws = Workspace::new();
        let big = ws.acquire([100]);
        let small = ws.acquire([10]);
        ws.release(big);
        ws.release(small);
        let t = ws.acquire([8]);
        assert!(t.len() == 8);
        // The 10-capacity buffer was chosen; the 100 one is still pooled.
        assert_eq!(ws.pooled_capacity(), 100);
    }

    #[test]
    fn grows_largest_buffer_instead_of_accumulating() {
        let mut ws = Workspace::new();
        let t = ws.acquire([4]);
        ws.release(t);
        let big = ws.acquire([1000]); // grows the pooled buffer
        assert_eq!(big.len(), 1000);
        assert_eq!(ws.pooled_buffers(), 0);
    }

    #[test]
    fn zero_element_shapes_are_supported() {
        let mut ws = Workspace::new();
        let t = ws.acquire([0, 5]);
        assert_eq!(t.len(), 0);
        assert_eq!(t.shape().dims(), &[0, 5]);
        ws.release(t);
    }

    #[test]
    fn clear_empties_pool() {
        let mut ws = Workspace::new();
        let t = ws.acquire([16]);
        ws.release(t);
        ws.clear();
        assert_eq!(ws.pooled_buffers(), 0);
        assert_eq!(ws.pooled_capacity(), 0);
    }
}

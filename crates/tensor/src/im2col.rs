//! im2col + GEMM convolution: the standard alternative formulation.
//!
//! The im2col path lowers convolution onto the blocked matrix-multiply
//! kernel ([`crate::ops`]): unfold the input into a `[N·H'·W', C·K·K]`
//! matrix, multiply by the `[F, C·K·K]` weight view, and fold back to
//! NCHW. With the register-tiled GEMM this wins whenever the reduction
//! depth `C·K·K` is non-trivial; the direct kernel ([`crate::conv`]) wins
//! for very shallow reductions (e.g. 1×1 kernels on few channels). The
//! `ConvLayer` in `mn-nn` picks between them per layer shape, and the
//! property tests pin both to identical outputs.
//!
//! The unfold's batch loop fans out across rayon worker threads (one batch
//! item's rows per work unit — disjoint output, bitwise-deterministic).
//! The [`conv2d_forward_im2col_ws`] variant stages the unfold matrix and
//! GEMM product in a [`Workspace`] so steady-state inference reuses both
//! buffers instead of reallocating them per call.
//!
//! The **backward** pass lowers onto the same GEMM core:
//!
//! * input gradient ([`conv2d_backward_input_im2col`]) — multiply the
//!   rearranged upstream gradient `[N·H'·W', F]` by the `[F, C·K·K]`
//!   weight view, then fold overlapping receptive fields back with the
//!   col2im scatter ([`col2im_accumulate_into`]);
//! * weight gradient ([`conv2d_backward_params_im2col`]) — the
//!   im2col-transposed product `[N·H'·W', F]ᵀ × [N·H'·W', C·K·K]`.
//!
//! The direct loops in [`crate::conv`] survive as the ground truth the
//! `gradient_equivalence` property suite pins these kernels against.

use crate::chunking::for_each_chunk;
use crate::conv::conv_out_extent;
use crate::ops::MatRef;
use crate::{ops, Tensor, Workspace};

/// Below this many copied elements the unfold runs on the calling thread.
const PARALLEL_COPY_THRESHOLD: usize = 64 * 1024;

/// Unfolds `input: [N, C, H, W]` into the im2col matrix
/// `[N·H'·W', C·K·K]`, where each row is the receptive field of one output
/// position (zero-padded out of bounds).
///
/// # Panics
///
/// Panics if the input is not 4-D or the kernel (less padding) exceeds the
/// input extent.
pub fn im2col(input: &Tensor, k: usize, pad: usize) -> Tensor {
    let d = input.shape().dims();
    assert_eq!(d.len(), 4, "im2col input must be [N, C, H, W]");
    let (n_batch, c_in, h, w) = (d[0], d[1], d[2], d[3]);
    let ho = conv_out_extent(h, k, pad);
    let wo = conv_out_extent(w, k, pad);
    let mut out = Tensor::zeros([n_batch * ho * wo, c_in * k * k]);
    im2col_into(input, k, pad, &mut out);
    out
}

/// [`im2col`] writing into a caller-provided output tensor.
///
/// `out` must be `[N·H'·W', C·K·K]`; every element is written (zeros for
/// out-of-bounds receptive-field positions), so the buffer need not be
/// zeroed beforehand.
///
/// # Panics
///
/// Panics on layout mismatches, including a wrongly shaped `out`.
pub fn im2col_into(input: &Tensor, k: usize, pad: usize, out: &mut Tensor) {
    let d = input.shape().dims();
    assert_eq!(d.len(), 4, "im2col input must be [N, C, H, W]");
    let (n_batch, c_in, h, w) = (d[0], d[1], d[2], d[3]);
    let ho = conv_out_extent(h, k, pad);
    let wo = conv_out_extent(w, k, pad);
    let row_len = c_in * k * k;
    assert_eq!(
        out.shape().dims(),
        &[n_batch * ho * wo, row_len],
        "im2col output must be [{}, {row_len}]",
        n_batch * ho * wo
    );
    let id = input.data();
    let ipad = pad as isize;
    let per_item = ho * wo * row_len;
    let total = n_batch * per_item;
    let unfold_item = |n: usize, ochunk: &mut [f32]| {
        for oh in 0..ho {
            for ow in 0..wo {
                let row = (oh * wo + ow) * row_len;
                for c in 0..c_in {
                    let ibase = (n * c_in + c) * h * w;
                    for kh in 0..k {
                        let obase = row + (c * k + kh) * k;
                        let ih = oh as isize + kh as isize - ipad;
                        if ih < 0 || ih as usize >= h {
                            ochunk[obase..obase + k].fill(0.0); // padding
                            continue;
                        }
                        let irow = ibase + ih as usize * w;
                        for kw in 0..k {
                            let iw = ow as isize + kw as isize - ipad;
                            ochunk[obase + kw] = if iw >= 0 && (iw as usize) < w {
                                id[irow + iw as usize]
                            } else {
                                0.0 // padding
                            };
                        }
                    }
                }
            }
        }
    };
    for_each_chunk(
        out.data_mut(),
        per_item,
        total >= PARALLEL_COPY_THRESHOLD,
        unfold_item,
    );
}

/// Convolution via im2col + GEMM; numerically identical to
/// [`crate::conv::conv2d_forward`] up to float summation order.
///
/// # Panics
///
/// Panics on the same layout violations as the direct kernel.
pub fn conv2d_forward_im2col(input: &Tensor, weight: &Tensor, bias: &Tensor, pad: usize) -> Tensor {
    conv2d_forward_im2col_ws(input, weight, bias, pad, &mut Workspace::new())
}

/// [`conv2d_forward_im2col`] staging its unfold and GEMM buffers in a
/// [`Workspace`], so repeated calls reuse them.
///
/// # Panics
///
/// Panics on the same layout violations as the direct kernel.
pub fn conv2d_forward_im2col_ws(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    pad: usize,
    ws: &mut Workspace,
) -> Tensor {
    let d = input.shape().dims();
    assert_eq!(d.len(), 4, "conv input must be [N, C, H, W]");
    let (n_batch, _, h, w) = (d[0], d[1], d[2], d[3]);
    let wd = weight.shape().dims();
    assert_eq!(wd.len(), 4, "conv weight must be [F, C, K, K]");
    let (f_out, c_w, k) = (wd[0], wd[1], wd[2]);
    assert_eq!(wd[3], k, "only square kernels supported");
    assert_eq!(d[1], c_w, "input channels mismatch");
    assert_eq!(bias.shape().dims(), &[f_out], "bias must be [filters]");
    let ho = conv_out_extent(h, k, pad);
    let wo = conv_out_extent(w, k, pad);
    let positions = n_batch * ho * wo;
    let row_len = c_w * k * k;

    // [NHW, CKK] x [F, CKK]ᵀ = [NHW, F]; the weight tensor's storage
    // already is the [F, CKK] matrix, so no reshape copy is needed.
    let mut cols = ws.acquire_uninit([positions, row_len]);
    im2col_into(input, k, pad, &mut cols);
    let mut prod = ws.acquire_uninit([positions, f_out]);
    ops::matmul_nt_into_ws(
        &cols,
        MatRef::reshaped(weight, f_out, row_len),
        &mut prod,
        ws,
    );
    ws.release(cols);

    // Rearrange [N·H'·W', F] -> [N, F, H', W'] and add the bias.
    let mut out = ws.acquire_uninit([n_batch, f_out, ho, wo]);
    let pd = prod.data();
    let bd = bias.data();
    let od = out.data_mut();
    for n in 0..n_batch {
        for oh in 0..ho {
            for ow in 0..wo {
                let prow = ((n * ho + oh) * wo + ow) * f_out;
                for f in 0..f_out {
                    od[((n * f_out + f) * ho + oh) * wo + ow] = pd[prow + f] + bd[f];
                }
            }
        }
    }
    ws.release(prod);
    out
}

/// Rearranges `grad_out: [N, F, H', W']` into the GEMM-ready matrix
/// `[N·H'·W', F]` (the transpose of the forward path's product layout),
/// staging the output in `ws`. The batch loop fans out across rayon
/// workers (disjoint output rows per item).
fn grad_out_to_mat_ws(grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
    let d = grad_out.shape().dims();
    assert_eq!(d.len(), 4, "conv grad_out must be [N, F, H', W']");
    let (n_batch, f_out, ho, wo) = (d[0], d[1], d[2], d[3]);
    let positions = ho * wo;
    let mut mat = ws.acquire_uninit([n_batch * positions, f_out]);
    let gd = grad_out.data();
    let per_item = positions * f_out;
    for_each_chunk(
        mat.data_mut(),
        per_item,
        n_batch * per_item >= PARALLEL_COPY_THRESHOLD,
        |n, mchunk| {
            let gbase = n * f_out * positions;
            for f in 0..f_out {
                let grow = gbase + f * positions;
                for p in 0..positions {
                    mchunk[p * f_out + f] = gd[grow + p];
                }
            }
        },
    );
    mat
}

/// Folds an im2col-layout gradient matrix `cols: [N·H'·W', C·K·K]` back
/// into an input-shaped gradient `out: [N, C, H, W]`, accumulating
/// overlapping receptive-field contributions (the col2im scatter). Every
/// element of `out` is overwritten (zeroed first), so the buffer may come
/// from [`Workspace::acquire_uninit`].
///
/// The batch loop fans out across rayon workers; within one item the
/// scatter runs in a fixed order, so results are bitwise identical across
/// thread counts.
///
/// # Panics
///
/// Panics on layout mismatches between `cols`, `k`, `pad` and `out`.
pub fn col2im_accumulate_into(cols: &Tensor, k: usize, pad: usize, out: &mut Tensor) {
    let d = *out.shape();
    let d = d.dims();
    assert_eq!(d.len(), 4, "col2im output must be [N, C, H, W]");
    let (n_batch, c_in, h, w) = (d[0], d[1], d[2], d[3]);
    let ho = conv_out_extent(h, k, pad);
    let wo = conv_out_extent(w, k, pad);
    let row_len = c_in * k * k;
    assert_eq!(
        cols.shape().dims(),
        &[n_batch * ho * wo, row_len],
        "col2im input must be [{}, {row_len}]",
        n_batch * ho * wo
    );
    let cd = cols.data();
    let ipad = pad as isize;
    let per_item = c_in * h * w;
    let total = n_batch * ho * wo * row_len;
    for_each_chunk(
        out.data_mut(),
        per_item,
        total >= PARALLEL_COPY_THRESHOLD,
        |n, gchunk| {
            gchunk.fill(0.0);
            for oh in 0..ho {
                for ow in 0..wo {
                    let row = ((n * ho + oh) * wo + ow) * row_len;
                    for c in 0..c_in {
                        let ibase = c * h * w;
                        for kh in 0..k {
                            let ih = oh as isize + kh as isize - ipad;
                            if ih < 0 || ih as usize >= h {
                                continue; // padding rows carry no gradient
                            }
                            let irow = ibase + ih as usize * w;
                            let cbase = row + (c * k + kh) * k;
                            for kw in 0..k {
                                let iw = ow as isize + kw as isize - ipad;
                                if iw >= 0 && (iw as usize) < w {
                                    gchunk[irow + iw as usize] += cd[cbase + kw];
                                }
                            }
                        }
                    }
                }
            }
        },
    );
}

/// Gradient of the loss w.r.t. the convolution input via the blocked GEMM
/// core: `[N·H'·W', F] × [F, C·K·K]` followed by a col2im fold. Matches
/// [`crate::conv::conv2d_backward_input`] up to float summation order
/// (pinned by the `gradient_equivalence` suite).
///
/// # Panics
///
/// Panics on the same layout violations as the direct kernel.
pub fn conv2d_backward_input_im2col(
    grad_out: &Tensor,
    weight: &Tensor,
    h: usize,
    w: usize,
    pad: usize,
) -> Tensor {
    conv2d_backward_input_im2col_ws(grad_out, weight, h, w, pad, &mut Workspace::new())
}

/// [`conv2d_backward_input_im2col`] staging every intermediate (the
/// rearranged gradient matrix, the GEMM product, and the returned input
/// gradient) in a [`Workspace`].
///
/// # Panics
///
/// Panics on the same layout violations as the direct kernel.
pub fn conv2d_backward_input_im2col_ws(
    grad_out: &Tensor,
    weight: &Tensor,
    h: usize,
    w: usize,
    pad: usize,
    ws: &mut Workspace,
) -> Tensor {
    let gd = grad_out.shape().dims();
    assert_eq!(gd.len(), 4, "conv grad_out must be [N, F, H', W']");
    let (n_batch, f_out, ho, wo) = (gd[0], gd[1], gd[2], gd[3]);
    let wd = weight.shape().dims();
    assert_eq!(wd.len(), 4, "conv weight must be [F, C, K, K]");
    let (f_w, c_in, k) = (wd[0], wd[1], wd[2]);
    assert_eq!(wd[3], k, "only square kernels supported");
    assert_eq!(
        f_out, f_w,
        "grad_out filters {f_out} != weight filters {f_w}"
    );
    assert_eq!(
        ho,
        conv_out_extent(h, k, pad),
        "grad_out height inconsistent"
    );
    assert_eq!(
        wo,
        conv_out_extent(w, k, pad),
        "grad_out width inconsistent"
    );

    let positions = n_batch * ho * wo;
    let row_len = c_in * k * k;
    // cols_grad[(n,oh,ow), (c,kh,kw)] = Σ_f g[n,f,oh,ow] · w[f,c,kh,kw]:
    // a [NHW, F] × [F, CKK] product straight onto the weight storage.
    let gmat = grad_out_to_mat_ws(grad_out, ws);
    let mut cols_grad = ws.acquire_uninit([positions, row_len]);
    ops::matmul_into_ws(
        &gmat,
        MatRef::reshaped(weight, f_out, row_len),
        &mut cols_grad,
        ws,
    );
    ws.release(gmat);
    let mut gin = ws.acquire_uninit([n_batch, c_in, h, w]);
    col2im_accumulate_into(&cols_grad, k, pad, &mut gin);
    ws.release(cols_grad);
    gin
}

/// Gradients of the loss w.r.t. the convolution weight and bias via the
/// blocked GEMM core: the weight gradient is the im2col-transposed
/// product `[N·H'·W', F]ᵀ × [N·H'·W', C·K·K]`. Matches
/// [`crate::conv::conv2d_backward_params`] up to float summation order.
///
/// # Panics
///
/// Panics on layout mismatches between `grad_out`, `input` and `k`.
pub fn conv2d_backward_params_im2col(
    grad_out: &Tensor,
    input: &Tensor,
    k: usize,
    pad: usize,
) -> (Tensor, Tensor) {
    conv2d_backward_params_im2col_ws(grad_out, input, k, pad, &mut Workspace::new())
}

/// [`conv2d_backward_params_im2col`] staging every intermediate (unfold
/// matrix, gradient matrix, and the returned gradients) in a
/// [`Workspace`].
///
/// # Panics
///
/// Panics on layout mismatches between `grad_out`, `input` and `k`.
pub fn conv2d_backward_params_im2col_ws(
    grad_out: &Tensor,
    input: &Tensor,
    k: usize,
    pad: usize,
    ws: &mut Workspace,
) -> (Tensor, Tensor) {
    let gd = grad_out.shape().dims();
    assert_eq!(gd.len(), 4, "conv grad_out must be [N, F, H', W']");
    let (n_batch, f_out, ho, wo) = (gd[0], gd[1], gd[2], gd[3]);
    let id = input.shape().dims();
    assert_eq!(id.len(), 4, "conv input must be [N, C, H, W]");
    let (n_in, c_in, h, w) = (id[0], id[1], id[2], id[3]);
    assert_eq!(n_batch, n_in, "batch mismatch");
    assert_eq!(
        ho,
        conv_out_extent(h, k, pad),
        "grad_out height inconsistent"
    );
    assert_eq!(
        wo,
        conv_out_extent(w, k, pad),
        "grad_out width inconsistent"
    );

    let positions = n_batch * ho * wo;
    let row_len = c_in * k * k;

    // Bias gradient: plain sum over batch and positions, in the same
    // order as the direct kernel (bitwise-equal results).
    let mut gb = ws.acquire([f_out]);
    {
        let gbd = gb.data_mut();
        let g = grad_out.data();
        for n in 0..n_batch {
            for (f, acc) in gbd.iter_mut().enumerate() {
                let gbase = (n * f_out + f) * ho * wo;
                *acc += g[gbase..gbase + ho * wo].iter().sum::<f32>();
            }
        }
    }

    // Weight gradient: gw = gmatᵀ · cols over the full batch of output
    // positions. The product is computed in the GEMM's [F, CKK] matrix
    // layout, then the owned output is relabeled to the weight's
    // [F, C, K, K] shape (same storage, no copy).
    let mut cols = ws.acquire_uninit([positions, row_len]);
    im2col_into(input, k, pad, &mut cols);
    let gmat = grad_out_to_mat_ws(grad_out, ws);
    let mut gw = ws.acquire_uninit([f_out, row_len]);
    ops::matmul_tn_into_ws(&gmat, &cols, &mut gw, ws);
    gw.reshape_in_place([f_out, c_in, k, k]);
    ws.release(gmat);
    ws.release(cols);
    (gw, gb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv2d_forward;
    use crate::{assert_close, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn im2col_known_layout() {
        // 1x1x2x2 input, k=1, pad=0: rows are single pixels in order.
        let input = Tensor::from_vec([1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let cols = im2col(&input, 1, 0);
        assert_eq!(cols.shape().dims(), &[4, 1]);
        assert_eq!(cols.data(), &[1., 2., 3., 4.]);
    }

    #[test]
    fn im2col_pads_with_zeros() {
        let input = Tensor::ones([1, 1, 1, 1]);
        let cols = im2col(&input, 3, 1);
        // One output position; its 3x3 window has the 1 at the center.
        assert_eq!(cols.shape().dims(), &[1, 9]);
        assert_eq!(cols.data()[4], 1.0);
        assert_eq!(cols.sum(), 1.0);
    }

    #[test]
    fn matches_direct_convolution() {
        let mut rng = StdRng::seed_from_u64(3);
        for (k, pad) in [(1usize, 0usize), (3, 1), (5, 2), (3, 0)] {
            let input = Tensor::randn([2, 3, 6, 6], 1.0, &mut rng);
            let weight = Tensor::randn([4, 3, k, k], 1.0, &mut rng);
            let bias = Tensor::randn([4], 1.0, &mut rng);
            let direct = conv2d_forward(&input, &weight, &bias, pad);
            let gemm = conv2d_forward_im2col(&input, &weight, &bias, pad);
            assert_close(gemm.data(), direct.data(), 1e-4);
        }
    }

    #[test]
    fn workspace_reuse_does_not_change_results() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut ws = Workspace::new();
        let weight = Tensor::randn([4, 3, 3, 3], 1.0, &mut rng);
        let bias = Tensor::randn([4], 1.0, &mut rng);
        for round in 0..3 {
            let input = Tensor::randn([2, 3, 6, 6], 1.0, &mut rng);
            let fresh = conv2d_forward_im2col(&input, &weight, &bias, 1);
            let reused = conv2d_forward_im2col_ws(&input, &weight, &bias, 1, &mut ws);
            assert_eq!(
                fresh.data(),
                reused.data(),
                "round {round} diverged under workspace reuse"
            );
            ws.release(reused);
        }
    }

    #[test]
    #[should_panic(expected = "channels mismatch")]
    fn validates_channels() {
        let input = Tensor::zeros([1, 2, 4, 4]);
        let weight = Tensor::zeros([1, 3, 3, 3]);
        conv2d_forward_im2col(&input, &weight, &Tensor::zeros([1]), 1);
    }
}

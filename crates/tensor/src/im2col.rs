//! im2col + GEMM convolution: the standard alternative formulation.
//!
//! Direct convolution ([`crate::conv`]) wins on the small spatial extents
//! this workspace trains at; the im2col path lowers convolution onto the
//! matrix-multiply kernel instead, which wins when `C·K·K` is large. Both
//! are exposed so the `tensor_kernels` bench can compare them, and the
//! property tests pin them to identical outputs.

use crate::conv::conv_out_extent;
use crate::{ops, Tensor};

/// Unfolds `input: [N, C, H, W]` into the im2col matrix
/// `[N·H'·W', C·K·K]`, where each row is the receptive field of one output
/// position (zero-padded out of bounds).
///
/// # Panics
///
/// Panics if the input is not 4-D or the kernel (less padding) exceeds the
/// input extent.
pub fn im2col(input: &Tensor, k: usize, pad: usize) -> Tensor {
    let d = input.shape().dims();
    assert_eq!(d.len(), 4, "im2col input must be [N, C, H, W]");
    let (n_batch, c_in, h, w) = (d[0], d[1], d[2], d[3]);
    let ho = conv_out_extent(h, k, pad);
    let wo = conv_out_extent(w, k, pad);
    let row_len = c_in * k * k;
    let mut out = Tensor::zeros([n_batch * ho * wo, row_len]);
    let id = input.data();
    let od = out.data_mut();
    let ipad = pad as isize;
    for n in 0..n_batch {
        for oh in 0..ho {
            for ow in 0..wo {
                let row = ((n * ho + oh) * wo + ow) * row_len;
                for c in 0..c_in {
                    let ibase = (n * c_in + c) * h * w;
                    for kh in 0..k {
                        let ih = oh as isize + kh as isize - ipad;
                        if ih < 0 || ih as usize >= h {
                            continue; // leave zero padding
                        }
                        let irow = ibase + ih as usize * w;
                        let obase = row + (c * k + kh) * k;
                        for kw in 0..k {
                            let iw = ow as isize + kw as isize - ipad;
                            if iw >= 0 && (iw as usize) < w {
                                od[obase + kw] = id[irow + iw as usize];
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Convolution via im2col + GEMM; numerically identical to
/// [`crate::conv::conv2d_forward`].
///
/// # Panics
///
/// Panics on the same layout violations as the direct kernel.
pub fn conv2d_forward_im2col(input: &Tensor, weight: &Tensor, bias: &Tensor, pad: usize) -> Tensor {
    let d = input.shape().dims();
    let (n_batch, _, h, w) = (d[0], d[1], d[2], d[3]);
    let wd = weight.shape().dims();
    assert_eq!(wd.len(), 4, "conv weight must be [F, C, K, K]");
    let (f_out, c_w, k) = (wd[0], wd[1], wd[2]);
    assert_eq!(wd[3], k, "only square kernels supported");
    assert_eq!(d[1], c_w, "input channels mismatch");
    assert_eq!(bias.shape().dims(), &[f_out], "bias must be [filters]");
    let ho = conv_out_extent(h, k, pad);
    let wo = conv_out_extent(w, k, pad);

    // [NHW, CKK] x [CKK, F] = [NHW, F]
    let cols = im2col(input, k, pad);
    let w_mat = weight.reshape([f_out, c_w * k * k]);
    let mut prod = ops::matmul_nt(&cols, &w_mat);
    ops::add_row_bias(&mut prod, bias);

    // Rearrange [N·H'·W', F] -> [N, F, H', W'].
    let mut out = Tensor::zeros([n_batch, f_out, ho, wo]);
    let pd = prod.data();
    let od = out.data_mut();
    for n in 0..n_batch {
        for oh in 0..ho {
            for ow in 0..wo {
                let prow = ((n * ho + oh) * wo + ow) * f_out;
                for f in 0..f_out {
                    od[((n * f_out + f) * ho + oh) * wo + ow] = pd[prow + f];
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv2d_forward;
    use crate::{assert_close, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn im2col_known_layout() {
        // 1x1x2x2 input, k=1, pad=0: rows are single pixels in order.
        let input = Tensor::from_vec([1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let cols = im2col(&input, 1, 0);
        assert_eq!(cols.shape().dims(), &[4, 1]);
        assert_eq!(cols.data(), &[1., 2., 3., 4.]);
    }

    #[test]
    fn im2col_pads_with_zeros() {
        let input = Tensor::ones([1, 1, 1, 1]);
        let cols = im2col(&input, 3, 1);
        // One output position; its 3x3 window has the 1 at the center.
        assert_eq!(cols.shape().dims(), &[1, 9]);
        assert_eq!(cols.data()[4], 1.0);
        assert_eq!(cols.sum(), 1.0);
    }

    #[test]
    fn matches_direct_convolution() {
        let mut rng = StdRng::seed_from_u64(3);
        for (k, pad) in [(1usize, 0usize), (3, 1), (5, 2), (3, 0)] {
            let input = Tensor::randn([2, 3, 6, 6], 1.0, &mut rng);
            let weight = Tensor::randn([4, 3, k, k], 1.0, &mut rng);
            let bias = Tensor::randn([4], 1.0, &mut rng);
            let direct = conv2d_forward(&input, &weight, &bias, pad);
            let gemm = conv2d_forward_im2col(&input, &weight, &bias, pad);
            assert_close(gemm.data(), direct.data(), 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "channels mismatch")]
    fn validates_channels() {
        let input = Tensor::zeros([1, 2, 4, 4]);
        let weight = Tensor::zeros([1, 3, 3, 3]);
        conv2d_forward_im2col(&input, &weight, &Tensor::zeros([1]), 1);
    }
}

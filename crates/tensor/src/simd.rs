//! Explicit-SIMD kernel backend with runtime dispatch.
//!
//! The blocked GEMM in [`crate::ops`] historically relied on the
//! autovectorizer turning its scalar micro-kernel into FMA vector streams
//! — which only happens when the whole workspace is compiled with
//! `target-cpu=native` (see `.cargo/config.toml`). That couples peak
//! throughput to a non-portable compiler flag: the same binary copied to
//! another machine either SIGILLs (native artifacts on a lesser CPU) or
//! runs scalar SSE2 code (portable builds).
//!
//! This module decouples them. The hot inner loops — the `MR × NR` GEMM
//! micro-kernel, the axpy used by bias broadcast, and the fused SGD
//! update — each have two implementations:
//!
//! * a **portable-scalar reference** (plain Rust, the original code),
//!   autovectorized as well as the build flags allow; and
//! * an **explicit AVX2 kernel** (`std::arch` intrinsics behind
//!   `#[target_feature(enable = "avx2", enable = "fma")]`), compiled into
//!   every x86-64 binary and selected at **runtime** when the CPU
//!   reports AVX2 + FMA — so a portable (no `target-cpu=native`) release
//!   binary still runs wide vector code on capable hardware.
//!
//! ## Dispatch
//!
//! The active backend is resolved once, on first use, from
//! [`is_x86_feature_detected!`] — overridable for testing and operations
//! via the `MN_SIMD` environment variable (`auto` | `scalar` | `avx2`)
//! or programmatically via [`set_backend`]. Misspelled values and
//! requesting `avx2` on a CPU without it fail loudly at first dispatch
//! rather than silently falling back: a CI run that *thinks* it forced a
//! backend must never measure the other one.
//!
//! ## Bitwise determinism across backends
//!
//! Every kernel here is pinned **bitwise identical** across backends (in
//! any single build), extending the workspace's thread-count determinism
//! guarantee to dispatch modes. Each output element accumulates its
//! products in the same order on both paths, and fused-multiply-add use
//! is decided **per build, not per backend** ([`COMPILED_FMA`]): when the
//! build enables the `fma` target feature (e.g. `target-cpu=native`) both
//! paths fuse, otherwise both round the multiply and add separately. A
//! portable binary therefore trades one rounding of precision for
//! bit-exact reproducibility across every CPU and dispatch mode it runs
//! on; rebuild with `-C target-feature=+fma` (or `target-cpu=native`) to
//! get fused arithmetic on both paths. The `kernel_equivalence` suite
//! locks this down with scalar-vs-AVX2 bitwise proptests.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::ops::{MR, NR};

/// Whether this build fuses multiply-adds (see module docs): both the
/// scalar and the AVX2 kernels follow this single compile-time switch, so
/// backends never differ in rounding.
pub const COMPILED_FMA: bool = cfg!(target_feature = "fma");

/// A selectable kernel backend.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backend {
    /// The portable-scalar reference kernels (autovectorized as well as
    /// the build flags allow).
    Scalar,
    /// Explicit AVX2 (+ FMA) `std::arch` kernels, runtime-detected.
    Avx2,
}

impl Backend {
    /// Human-readable backend name (`"scalar"` / `"avx2"`).
    pub fn label(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
        }
    }
}

const BACKEND_UNSET: u8 = 0;
const BACKEND_SCALAR: u8 = 1;
const BACKEND_AVX2: u8 = 2;

/// The resolved backend: 0 = not yet resolved, else `BACKEND_*`.
static ACTIVE: AtomicU8 = AtomicU8::new(BACKEND_UNSET);

/// Returns true when the running CPU can execute the explicit AVX2
/// kernels (AVX2 and FMA both present).
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The backend auto-detection would pick on this machine (ignoring any
/// `MN_SIMD` override or [`set_backend`] call).
///
/// When the **build** already enables AVX2 (e.g. `target-cpu=native`),
/// auto-detection keeps the scalar kernel: the autovectorizer compiled it
/// with the same or wider vectors (AVX-512 where the host has it), and
/// the explicit 256-bit path measures 0.7–1.0x against it. The runtime
/// AVX2 backend exists to recover vector code in *portable* builds, where
/// it measures 1.7–2.0x over the SSE2-autovectorized scalar path (see
/// `results/kernels.json`).
pub fn detected() -> Backend {
    if cfg!(target_feature = "avx2") {
        Backend::Scalar
    } else if avx2_available() {
        Backend::Avx2
    } else {
        Backend::Scalar
    }
}

/// Resolves the `MN_SIMD` environment override, or auto-detects.
///
/// # Panics
///
/// Panics on an unrecognized `MN_SIMD` value, or when `MN_SIMD=avx2` is
/// forced on a CPU without AVX2 + FMA — a run that silently measured the
/// wrong backend would be worse than a loud failure.
fn resolve_from_env() -> Backend {
    match std::env::var("MN_SIMD") {
        Ok(v) => match v.as_str() {
            "auto" | "" => detected(),
            "scalar" => Backend::Scalar,
            "avx2" => {
                assert!(
                    avx2_available(),
                    "MN_SIMD=avx2 requested but this CPU lacks avx2/fma"
                );
                Backend::Avx2
            }
            other => panic!("unrecognized MN_SIMD value {other:?} (expected auto|scalar|avx2)"),
        },
        Err(_) => detected(),
    }
}

/// The active kernel backend, resolving it on first call (environment
/// override first, then CPU detection — see module docs).
pub fn active() -> Backend {
    match ACTIVE.load(Ordering::Relaxed) {
        BACKEND_SCALAR => Backend::Scalar,
        BACKEND_AVX2 => Backend::Avx2,
        _ => {
            let resolved = resolve_from_env();
            set_backend(resolved);
            resolved
        }
    }
}

/// Forces the kernel backend, overriding detection and `MN_SIMD` — the
/// testing/bench hook that lets one process exercise both code paths.
///
/// # Panics
///
/// Panics when forcing [`Backend::Avx2`] on a CPU without AVX2 + FMA.
pub fn set_backend(backend: Backend) {
    let tag = match backend {
        Backend::Scalar => BACKEND_SCALAR,
        Backend::Avx2 => {
            assert!(
                avx2_available(),
                "cannot force the AVX2 backend: this CPU lacks avx2/fma"
            );
            BACKEND_AVX2
        }
    };
    ACTIVE.store(tag, Ordering::Relaxed);
}

/// Runs `f` with the backend forced to `backend`, restoring the previous
/// resolution afterwards (even on panic). Test/bench helper.
pub fn with_backend<T>(backend: Backend, f: impl FnOnce() -> T) -> T {
    struct Restore(u8);
    impl Drop for Restore {
        fn drop(&mut self) {
            ACTIVE.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore(ACTIVE.load(Ordering::Relaxed));
    set_backend(backend);
    f()
}

// ---------------------------------------------------------------------------
// AVX2 kernels (x86-64 only; every entry point is runtime-feature-gated by
// the dispatcher, so the `unsafe` here is exactly "the CPU has AVX2+FMA").
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{COMPILED_FMA, MR, NR};
    use std::arch::x86_64::*;

    /// One vector multiply-add step with the same rounding as the scalar
    /// path: fused iff the *build* enables `fma` (see [`COMPILED_FMA`]).
    // SAFETY: pure register arithmetic on owned __m256 values — no memory
    // access. Unsafe only because the AVX/FMA intrinsics require the CPU
    // features; callers are themselves `#[target_feature(enable =
    // "avx2", enable = "fma")]` kernels reached via the runtime-detected
    // dispatcher, so the features are guaranteed present.
    #[inline(always)]
    unsafe fn vfma(a: __m256, b: __m256, c: __m256) -> __m256 {
        if COMPILED_FMA {
            _mm256_fmadd_ps(a, b, c)
        } else {
            _mm256_add_ps(_mm256_mul_ps(a, b), c)
        }
    }

    /// AVX2 `MR × NR` GEMM micro-kernel over packed panels — the explicit
    /// twin of `ops::microkernel_scalar`.
    ///
    /// The `10 × 16` register tile needs 20 YMM accumulators, which does
    /// not fit the 16-register file; splitting it into two `5 × 16`
    /// half-tiles (10 accumulators + 2 B vectors + 1 broadcast each)
    /// keeps every accumulator in a register for the whole `k` loop. The
    /// B panel is re-streamed once per half, but it is L1-resident (≤ 16
    /// KB for the shapes the blocking produces). Each output element
    /// still accumulates its `k` products in ascending-`p` order, exactly
    /// like the scalar kernel — bitwise identical results.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX2 and FMA, and that
    /// `a_panel`/`b_panel` hold at least `k * MR` / `k * NR` elements.
    // SAFETY: callable only when the CPU has AVX2+FMA (checked once by
    // the dispatcher via is_x86_feature_detected!). All loads stay in
    // bounds: reads touch a_panel[p*MR + r] for p < k, r < MR and
    // b_panel[p*NR + {0..16}] for p < k, within the `k*MR` / `k*NR`
    // panel lengths the caller guarantees (debug_assert'd below); stores
    // touch acc[(r0+r)*NR + {0..16}] with r0+r < MR, inside the fixed
    // `[f32; MR*NR]` array. Unaligned load/store intrinsics are used
    // throughout, so no alignment precondition exists.
    // mn-lint: hot-path
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn microkernel(
        k: usize,
        a_panel: &[f32],
        b_panel: &[f32],
        acc: &mut [f32; MR * NR],
    ) {
        debug_assert!(a_panel.len() >= k * MR);
        debug_assert!(b_panel.len() >= k * NR);
        const HALF: usize = MR / 2;
        let a = a_panel.as_ptr();
        let b = b_panel.as_ptr();
        for half in 0..2 {
            let r0 = half * HALF;
            let mut acc_lo = [_mm256_setzero_ps(); HALF];
            let mut acc_hi = [_mm256_setzero_ps(); HALF];
            for p in 0..k {
                let b_lo = _mm256_loadu_ps(b.add(p * NR));
                let b_hi = _mm256_loadu_ps(b.add(p * NR + 8));
                for r in 0..HALF {
                    let arp = _mm256_broadcast_ss(&*a.add(p * MR + r0 + r));
                    acc_lo[r] = vfma(arp, b_lo, acc_lo[r]);
                    acc_hi[r] = vfma(arp, b_hi, acc_hi[r]);
                }
            }
            for r in 0..HALF {
                let dst = acc.as_mut_ptr().add((r0 + r) * NR);
                _mm256_storeu_ps(dst, acc_lo[r]);
                _mm256_storeu_ps(dst.add(8), acc_hi[r]);
            }
        }
    }

    /// AVX2 `y += alpha * x` — same separate mul-then-add rounding as the
    /// scalar loop (never fused: the scalar axpy is written `y + a * x`,
    /// which rustc does not contract).
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX2 and that the slices have
    /// equal length.
    // SAFETY: callable only when the CPU has AVX2 (dispatcher-checked).
    // Pointer arithmetic is bounded by `n = y.len()`: the vector loop
    // reads/writes offsets i..i+8 only while i + 8 <= n, the scalar tail
    // stays below n, and x.len() == y.len() is the caller's contract
    // (debug_assert'd). Unaligned intrinsics — no alignment requirement.
    // mn-lint: hot-path
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        debug_assert_eq!(x.len(), y.len());
        let n = y.len();
        let av = _mm256_set1_ps(alpha);
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= n {
            let xv = _mm256_loadu_ps(xp.add(i));
            let yv = _mm256_loadu_ps(yp.add(i));
            _mm256_storeu_ps(yp.add(i), _mm256_add_ps(yv, _mm256_mul_ps(av, xv)));
            i += 8;
        }
        while i < n {
            *yp.add(i) += alpha * *xp.add(i);
            i += 1;
        }
    }

    /// AVX2 fused SGD chunk update — the explicit twin of the scalar loop
    /// in [`super::sgd_update_chunk`]: `g' = g + wd·x; v = mom·v + g';
    /// x -= lr·v; g = 0`, all separate mul/add roundings to match the
    /// (uncontracted) scalar expression exactly.
    ///
    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX2 and that the slices have
    /// equal length.
    // SAFETY: callable only when the CPU has AVX2 (dispatcher-checked).
    // The three slices are distinct &mut/&mut/&mut borrows, so they
    // cannot alias; every access is bounded by `n = value.len()` (vector
    // loop guards i + 8 <= n, tail stays below n) and equal lengths are
    // the caller's contract (debug_assert'd). Unaligned intrinsics — no
    // alignment requirement.
    // mn-lint: hot-path
    #[target_feature(enable = "avx2")]
    pub unsafe fn sgd_update(
        value: &mut [f32],
        vel: &mut [f32],
        grad: &mut [f32],
        lr: f32,
        mom: f32,
        wd: f32,
    ) {
        debug_assert_eq!(value.len(), vel.len());
        debug_assert_eq!(value.len(), grad.len());
        let n = value.len();
        let lrv = _mm256_set1_ps(lr);
        let momv = _mm256_set1_ps(mom);
        let wdv = _mm256_set1_ps(wd);
        let zero = _mm256_setzero_ps();
        let xp = value.as_mut_ptr();
        let vp = vel.as_mut_ptr();
        let gp = grad.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= n {
            let x = _mm256_loadu_ps(xp.add(i));
            let g = _mm256_loadu_ps(gp.add(i));
            let v = _mm256_loadu_ps(vp.add(i));
            let gi = _mm256_add_ps(g, _mm256_mul_ps(wdv, x));
            let vnew = _mm256_add_ps(_mm256_mul_ps(momv, v), gi);
            let xnew = _mm256_sub_ps(x, _mm256_mul_ps(lrv, vnew));
            _mm256_storeu_ps(vp.add(i), vnew);
            _mm256_storeu_ps(xp.add(i), xnew);
            _mm256_storeu_ps(gp.add(i), zero);
            i += 8;
        }
        while i < n {
            let gi = *gp.add(i) + wd * *xp.add(i);
            let v = mom * *vp.add(i) + gi;
            *vp.add(i) = v;
            *xp.add(i) -= lr * v;
            *gp.add(i) = 0.0;
            i += 1;
        }
    }
}

/// The `MR × NR` micro-kernel, dispatched (see module docs). Panels are
/// packed unit-stride as described in [`crate::ops`]'s module docs.
#[inline]
pub(crate) fn microkernel(
    backend: Backend,
    k: usize,
    a_panel: &[f32],
    b_panel: &[f32],
    acc: &mut [f32; MR * NR],
) {
    match backend {
        Backend::Scalar => crate::ops::microkernel_scalar(k, a_panel, b_panel, acc),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Backend::Avx2 is only constructible after an
        // avx2_available() check (set_backend / resolve_from_env assert).
        Backend::Avx2 => unsafe { avx2::microkernel(k, a_panel, b_panel, acc) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => unreachable!("AVX2 backend cannot be selected off x86-64"),
    }
}

/// `y += alpha * x`, dispatched. Bitwise identical across backends.
///
/// # Panics
///
/// Panics if the slices differ in length.
// mn-lint: hot-path
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy operands differ in length");
    match active() {
        Backend::Scalar => {
            for (yi, &xi) in y.iter_mut().zip(x) {
                *yi += alpha * xi;
            }
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 is only selectable when the CPU reports avx2+fma.
        Backend::Avx2 => unsafe { avx2::axpy(alpha, x, y) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => unreachable!("AVX2 backend cannot be selected off x86-64"),
    }
}

/// One fused SGD chunk update: `g' = g + wd·x; v = mom·v + g';
/// x -= lr·v; g = 0` in a single pass, dispatched. Bitwise identical
/// across backends; `mn-nn`'s optimizer routes every parameter chunk
/// through here.
///
/// # Panics
///
/// Panics if the slices differ in length.
// mn-lint: hot-path
pub fn sgd_update_chunk(
    value: &mut [f32],
    vel: &mut [f32],
    grad: &mut [f32],
    lr: f32,
    mom: f32,
    wd: f32,
) {
    assert_eq!(
        value.len(),
        vel.len(),
        "sgd update operands differ in length"
    );
    assert_eq!(
        value.len(),
        grad.len(),
        "sgd update operands differ in length"
    );
    match active() {
        Backend::Scalar => {
            for ((x, v), g) in value.iter_mut().zip(vel.iter_mut()).zip(grad.iter_mut()) {
                let gi = *g + wd * *x;
                *v = mom * *v + gi;
                *x -= lr * *v;
                *g = 0.0;
            }
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 is only selectable when the CPU reports avx2+fma.
        Backend::Avx2 => unsafe { avx2::sgd_update(value, vel, grad, lr, mom, wd) },
        #[cfg(not(target_arch = "x86_64"))]
        Backend::Avx2 => unreachable!("AVX2 backend cannot be selected off x86-64"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn randv(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
    }

    #[test]
    fn backend_labels_and_detection_are_consistent() {
        assert_eq!(Backend::Scalar.label(), "scalar");
        assert_eq!(Backend::Avx2.label(), "avx2");
        if cfg!(target_feature = "avx2") || !avx2_available() {
            // Native-vectorized build (or incapable CPU): scalar wins.
            assert_eq!(detected(), Backend::Scalar);
        } else {
            // Portable build on a capable CPU: the explicit path carries.
            assert_eq!(detected(), Backend::Avx2);
        }
    }

    #[test]
    fn with_backend_restores_previous_selection() {
        let before = active();
        with_backend(Backend::Scalar, || {
            assert_eq!(active(), Backend::Scalar);
        });
        assert_eq!(active(), before);
    }

    #[test]
    fn axpy_backends_bitwise_identical() {
        if !avx2_available() {
            return;
        }
        // Lengths straddling the 8-lane vector width exercise the tail.
        for n in [0usize, 1, 7, 8, 9, 31, 64, 1000] {
            let x = randv(n, 7 + n as u64);
            let y0 = randv(n, 1000 + n as u64);
            let mut y_scalar = y0.clone();
            let mut y_avx = y0.clone();
            with_backend(Backend::Scalar, || axpy(0.37, &x, &mut y_scalar));
            with_backend(Backend::Avx2, || axpy(0.37, &x, &mut y_avx));
            assert_eq!(
                y_scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                y_avx.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "axpy diverged at n = {n}"
            );
        }
    }

    #[test]
    fn sgd_update_backends_bitwise_identical() {
        if !avx2_available() {
            return;
        }
        for n in [0usize, 1, 5, 8, 13, 256, 1001] {
            let run = |backend| {
                let mut value = randv(n, 1 + n as u64);
                let mut vel = randv(n, 2 + n as u64);
                let mut grad = randv(n, 3 + n as u64);
                with_backend(backend, || {
                    sgd_update_chunk(&mut value, &mut vel, &mut grad, 0.05, 0.9, 1e-4)
                });
                assert!(grad.iter().all(|&g| g == 0.0), "gradient not zeroed");
                (value, vel)
            };
            let (xs, vs) = run(Backend::Scalar);
            let (xa, va) = run(Backend::Avx2);
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&xs), bits(&xa), "values diverged at n = {n}");
            assert_eq!(bits(&vs), bits(&va), "velocities diverged at n = {n}");
        }
    }
}

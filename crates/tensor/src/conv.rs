//! Direct 2-D convolution kernels (stride 1) with forward and backward
//! passes.
//!
//! The paper's networks (VGG-style and ResNet-style) use stride-1
//! convolutions with "same" zero padding; spatial down-sampling happens in
//! pooling layers. These kernels therefore implement exactly that case.
//!
//! Layouts: input `[N, C, H, W]`, weight `[F, C, K, K]`, bias `[F]`,
//! output `[N, F, H', W']` with `H' = H + 2·pad − K + 1`.
//!
//! The loops are organized as *scalar × shifted-row* accumulations: for each
//! `(n, f, c, kh, kw)` the kernel weight multiplies a contiguous row of the
//! input, which keeps the inner loop vectorizable and branch-free.
//!
//! Batch loops fan out across rayon worker threads: the forward and
//! input-gradient kernels split the output over batch items, the
//! weight-gradient kernel over filters. Every split is a disjoint output
//! region computed in a fixed order, so results are bitwise identical
//! across thread counts.

use crate::chunking::for_each_chunk;
use crate::Tensor;

/// Below this many multiply-adds a kernel runs on the calling thread
/// rather than fanning out (spawn overhead would dominate).
const PARALLEL_MAC_THRESHOLD: usize = 128 * 1024;

/// Output spatial extent of a stride-1 convolution.
///
/// # Panics
///
/// Panics if the kernel (less padding) exceeds the input extent.
pub fn conv_out_extent(input: usize, kernel: usize, pad: usize) -> usize {
    let padded = input + 2 * pad;
    assert!(
        padded + 1 > kernel,
        "kernel {kernel} too large for input {input} with padding {pad}"
    );
    padded - kernel + 1
}

/// The padding that keeps spatial extent unchanged for an odd kernel size.
///
/// # Panics
///
/// Panics if `kernel` is even — "same" padding is only well-defined for odd
/// kernels, and the paper's architectures use odd kernels (1, 3, 5) only.
pub fn same_padding(kernel: usize) -> usize {
    assert!(
        kernel % 2 == 1,
        "same padding requires an odd kernel, got {kernel}"
    );
    kernel / 2
}

/// Forward convolution: returns `[N, F, H', W']`.
///
/// # Panics
///
/// Panics on any layout mismatch between `input` `[N, C, H, W]`,
/// `weight` `[F, C, K, K]` and `bias` `[F]`.
pub fn conv2d_forward(input: &Tensor, weight: &Tensor, bias: &Tensor, pad: usize) -> Tensor {
    let (n_batch, _, h, w) = dims4(input, "conv input");
    let (f_out, _, k, _) = dims4(weight, "conv weight");
    let ho = conv_out_extent(h, k, pad);
    let wo = conv_out_extent(w, k, pad);
    let mut out = Tensor::zeros([n_batch, f_out, ho, wo]);
    conv2d_forward_into(input, weight, bias, pad, &mut out);
    out
}

/// [`conv2d_forward`] writing into a caller-provided (e.g.
/// workspace-acquired) output tensor; every element is overwritten. The
/// batch loop runs in parallel (one batch item per work unit).
///
/// # Panics
///
/// Panics on layout mismatches, including a wrongly shaped `out`.
pub fn conv2d_forward_into(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    pad: usize,
    out: &mut Tensor,
) {
    let (n_batch, c_in, h, w) = dims4(input, "conv input");
    let (f_out, c_w, kh, kw) = dims4(weight, "conv weight");
    assert_eq!(c_in, c_w, "input channels {c_in} != weight channels {c_w}");
    assert_eq!(kh, kw, "only square kernels supported, got {kh}x{kw}");
    assert_eq!(bias.shape().dims(), &[f_out], "bias must be [{f_out}]");
    let k = kh;
    let ho = conv_out_extent(h, k, pad);
    let wo = conv_out_extent(w, k, pad);
    assert_eq!(
        out.shape().dims(),
        &[n_batch, f_out, ho, wo],
        "conv output must be [{n_batch}, {f_out}, {ho}, {wo}]"
    );

    let id = input.data();
    let wd = weight.data();
    let bd = bias.data();
    let ipad = pad as isize;
    let macs = n_batch * f_out * c_in * k * k * ho * wo;
    for_each_chunk(
        out.data_mut(),
        f_out * ho * wo,
        macs >= PARALLEL_MAC_THRESHOLD,
        |n, ochunk| {
            // Initialize this item's planes with the bias.
            for (f, &b) in bd.iter().enumerate() {
                ochunk[f * ho * wo..(f + 1) * ho * wo].fill(b);
            }
            for f in 0..f_out {
                let obase = f * ho * wo;
                for c in 0..c_in {
                    let ibase = (n * c_in + c) * h * w;
                    let wbase = (f * c_in + c) * k * k;
                    for dkh in 0..k {
                        for dkw in 0..k {
                            let wval = wd[wbase + dkh * k + dkw];
                            if wval == 0.0 {
                                continue;
                            }
                            // out[oh, ow] += wval * in[oh + dkh - pad, ow + dkw - pad]
                            let oh_lo = (ipad - dkh as isize).max(0) as usize;
                            let oh_hi = ((h as isize + ipad - dkh as isize).min(ho as isize)).max(0)
                                as usize;
                            let ow_lo = (ipad - dkw as isize).max(0) as usize;
                            let ow_hi = ((w as isize + ipad - dkw as isize).min(wo as isize)).max(0)
                                as usize;
                            for oh in oh_lo..oh_hi {
                                let ih = (oh as isize + dkh as isize - ipad) as usize;
                                let irow = ibase + ih * w;
                                let orow = obase + oh * wo;
                                for ow in ow_lo..ow_hi {
                                    let iw = (ow as isize + dkw as isize - ipad) as usize;
                                    ochunk[orow + ow] += wval * id[irow + iw];
                                }
                            }
                        }
                    }
                }
            }
        },
    );
}

/// Gradient of the loss w.r.t. the convolution input.
///
/// `grad_out` is `[N, F, H', W']`; returns `[N, C, H, W]` for the original
/// input extents `h` and `w`.
///
/// # Panics
///
/// Panics on layout mismatches.
pub fn conv2d_backward_input(
    grad_out: &Tensor,
    weight: &Tensor,
    h: usize,
    w: usize,
    pad: usize,
) -> Tensor {
    let (n_batch, _, _, _) = dims4(grad_out, "conv grad_out");
    let (_, c_in, _, _) = dims4(weight, "conv weight");
    let mut gin = Tensor::zeros([n_batch, c_in, h, w]);
    conv2d_backward_input_into(grad_out, weight, pad, &mut gin);
    gin
}

/// [`conv2d_backward_input`] writing into a caller-provided (e.g.
/// workspace-acquired) output tensor of shape `[N, C, H, W]`; every
/// element is overwritten (zeroed first, then accumulated).
///
/// # Panics
///
/// Panics on layout mismatches, including a wrongly shaped `gin`.
pub fn conv2d_backward_input_into(
    grad_out: &Tensor,
    weight: &Tensor,
    pad: usize,
    gin: &mut Tensor,
) {
    let (n_batch, f_out, ho, wo) = dims4(grad_out, "conv grad_out");
    let (f_w, c_in, k, k2) = dims4(weight, "conv weight");
    assert_eq!(
        f_out, f_w,
        "grad_out filters {f_out} != weight filters {f_w}"
    );
    assert_eq!(k, k2, "only square kernels supported");
    let gdims = gin.shape().dims();
    assert_eq!(gdims.len(), 4, "conv input grad must be 4-D");
    assert_eq!(gdims[0], n_batch, "input grad batch mismatch");
    assert_eq!(gdims[1], c_in, "input grad channel mismatch");
    let (h, w) = (gdims[2], gdims[3]);
    assert_eq!(
        ho,
        conv_out_extent(h, k, pad),
        "grad_out height inconsistent"
    );
    assert_eq!(
        wo,
        conv_out_extent(w, k, pad),
        "grad_out width inconsistent"
    );

    let gd = grad_out.data();
    let wd = weight.data();
    let ipad = pad as isize;
    let macs = n_batch * f_out * c_in * k * k * ho * wo;
    for_each_chunk(
        gin.data_mut(),
        c_in * h * w,
        macs >= PARALLEL_MAC_THRESHOLD,
        |n, gchunk| {
            gchunk.fill(0.0);
            for f in 0..f_out {
                let gbase = (n * f_out + f) * ho * wo;
                for c in 0..c_in {
                    let ibase = c * h * w;
                    let wbase = (f * c_in + c) * k * k;
                    for dkh in 0..k {
                        for dkw in 0..k {
                            let wval = wd[wbase + dkh * k + dkw];
                            if wval == 0.0 {
                                continue;
                            }
                            // gin[ih, iw] += wval * gout[ih - dkh + pad, iw - dkw + pad]
                            let oh_lo = (ipad - dkh as isize).max(0) as usize;
                            let oh_hi = ((h as isize + ipad - dkh as isize).min(ho as isize)).max(0)
                                as usize;
                            let ow_lo = (ipad - dkw as isize).max(0) as usize;
                            let ow_hi = ((w as isize + ipad - dkw as isize).min(wo as isize)).max(0)
                                as usize;
                            for oh in oh_lo..oh_hi {
                                let ih = (oh as isize + dkh as isize - ipad) as usize;
                                let irow = ibase + ih * w;
                                let grow = gbase + oh * wo;
                                for ow in ow_lo..ow_hi {
                                    let iw = (ow as isize + dkw as isize - ipad) as usize;
                                    gchunk[irow + iw] += wval * gd[grow + ow];
                                }
                            }
                        }
                    }
                }
            }
        },
    );
}

/// Gradients of the loss w.r.t. the convolution weight and bias.
///
/// Returns `(grad_weight: [F, C, K, K], grad_bias: [F])`.
///
/// # Panics
///
/// Panics on layout mismatches between `grad_out`, `input` and the implied
/// kernel size `k`.
pub fn conv2d_backward_params(
    grad_out: &Tensor,
    input: &Tensor,
    k: usize,
    pad: usize,
) -> (Tensor, Tensor) {
    let (_, f_out, _, _) = dims4(grad_out, "conv grad_out");
    let (_, c_in, _, _) = dims4(input, "conv input");
    let mut gw = Tensor::zeros([f_out, c_in, k, k]);
    let mut gb = Tensor::zeros([f_out]);
    conv2d_backward_params_into(grad_out, input, k, pad, &mut gw, &mut gb);
    (gw, gb)
}

/// [`conv2d_backward_params`] writing into caller-provided (e.g.
/// workspace-acquired) gradient tensors `gw: [F, C, K, K]` and `gb: [F]`;
/// every element of both is overwritten.
///
/// # Panics
///
/// Panics on layout mismatches, including wrongly shaped outputs.
pub fn conv2d_backward_params_into(
    grad_out: &Tensor,
    input: &Tensor,
    k: usize,
    pad: usize,
    gw: &mut Tensor,
    gb: &mut Tensor,
) {
    let (n_batch, f_out, ho, wo) = dims4(grad_out, "conv grad_out");
    let (n_in, c_in, h, w) = dims4(input, "conv input");
    assert_eq!(n_batch, n_in, "batch mismatch");
    assert_eq!(
        ho,
        conv_out_extent(h, k, pad),
        "grad_out height inconsistent"
    );
    assert_eq!(
        wo,
        conv_out_extent(w, k, pad),
        "grad_out width inconsistent"
    );
    assert_eq!(
        gw.shape().dims(),
        &[f_out, c_in, k, k],
        "weight grad must be [{f_out}, {c_in}, {k}, {k}]"
    );
    assert_eq!(gb.shape().dims(), &[f_out], "bias grad must be [{f_out}]");

    let gd = grad_out.data();
    let id = input.data();
    let ipad = pad as isize;
    {
        let gbd = gb.data_mut();
        gbd.fill(0.0);
        for n in 0..n_batch {
            for (f, g) in gbd.iter_mut().enumerate() {
                let gbase = (n * f_out + f) * ho * wo;
                *g += gd[gbase..gbase + ho * wo].iter().sum::<f32>();
            }
        }
    }
    // The weight gradient reduces over the batch, so the parallel split is
    // over filters instead: each worker owns one filter's `[C, K, K]`
    // slice and scans the batch in order (bitwise-deterministic).
    let macs = n_batch * f_out * c_in * k * k * ho * wo;
    for_each_chunk(
        gw.data_mut(),
        c_in * k * k,
        macs >= PARALLEL_MAC_THRESHOLD,
        |f, gwchunk| {
            gwchunk.fill(0.0);
            for n in 0..n_batch {
                let gbase = (n * f_out + f) * ho * wo;
                for c in 0..c_in {
                    let ibase = (n * c_in + c) * h * w;
                    let wbase = c * k * k;
                    for dkh in 0..k {
                        for dkw in 0..k {
                            let oh_lo = (ipad - dkh as isize).max(0) as usize;
                            let oh_hi = ((h as isize + ipad - dkh as isize).min(ho as isize)).max(0)
                                as usize;
                            let ow_lo = (ipad - dkw as isize).max(0) as usize;
                            let ow_hi = ((w as isize + ipad - dkw as isize).min(wo as isize)).max(0)
                                as usize;
                            let mut acc = 0.0;
                            for oh in oh_lo..oh_hi {
                                let ih = (oh as isize + dkh as isize - ipad) as usize;
                                let irow = ibase + ih * w;
                                let grow = gbase + oh * wo;
                                for ow in ow_lo..ow_hi {
                                    let iw = (ow as isize + dkw as isize - ipad) as usize;
                                    acc += gd[grow + ow] * id[irow + iw];
                                }
                            }
                            gwchunk[wbase + dkh * k + dkw] += acc;
                        }
                    }
                }
            }
        },
    );
}

/// Reference (naive, obviously-correct) forward convolution used by tests to
/// validate the optimized kernel.
pub fn conv2d_forward_reference(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    pad: usize,
) -> Tensor {
    let (n_batch, c_in, h, w) = dims4(input, "conv input");
    let (f_out, _, k, _) = dims4(weight, "conv weight");
    let ho = conv_out_extent(h, k, pad);
    let wo = conv_out_extent(w, k, pad);
    let mut out = Tensor::zeros([n_batch, f_out, ho, wo]);
    for n in 0..n_batch {
        for f in 0..f_out {
            for oh in 0..ho {
                for ow in 0..wo {
                    let mut acc = bias.data()[f];
                    for c in 0..c_in {
                        for dkh in 0..k {
                            for dkw in 0..k {
                                let ih = oh as isize + dkh as isize - pad as isize;
                                let iw = ow as isize + dkw as isize - pad as isize;
                                if ih >= 0 && iw >= 0 && (ih as usize) < h && (iw as usize) < w {
                                    acc += weight.at4(f, c, dkh, dkw)
                                        * input.at4(n, c, ih as usize, iw as usize);
                                }
                            }
                        }
                    }
                    *out.at4_mut(n, f, oh, ow) = acc;
                }
            }
        }
    }
    out
}

fn dims4(t: &Tensor, what: &str) -> (usize, usize, usize, usize) {
    assert_eq!(t.shape().ndim(), 4, "{what} must be 4-D, got {}", t.shape());
    let d = t.shape().dims();
    (d[0], d[1], d[2], d[3])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rand_t(shape: [usize; 4], seed: u64) -> Tensor {
        Tensor::randn(shape, 1.0, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn extents_and_padding() {
        assert_eq!(conv_out_extent(8, 3, 1), 8);
        assert_eq!(conv_out_extent(8, 5, 2), 8);
        assert_eq!(conv_out_extent(8, 3, 0), 6);
        assert_eq!(same_padding(1), 0);
        assert_eq!(same_padding(3), 1);
        assert_eq!(same_padding(5), 2);
    }

    #[test]
    #[should_panic(expected = "odd kernel")]
    fn same_padding_rejects_even() {
        same_padding(2);
    }

    #[test]
    fn forward_matches_reference() {
        for (k, pad) in [(1, 0), (3, 1), (5, 2), (3, 0)] {
            let input = rand_t([2, 3, 6, 6], 10 + k as u64);
            let weight = rand_t([4, 3, k, k], 20 + k as u64);
            let bias = Tensor::randn([4], 1.0, &mut StdRng::seed_from_u64(30));
            let fast = conv2d_forward(&input, &weight, &bias, pad);
            let slow = conv2d_forward_reference(&input, &weight, &bias, pad);
            assert_close(fast.data(), slow.data(), 1e-4);
        }
    }

    #[test]
    fn identity_kernel_preserves_input() {
        // A 3x3 kernel with a 1 in the center per matching channel is the
        // identity map under same padding — the building block of the
        // deepening morphism.
        let c = 3;
        let input = rand_t([2, c, 5, 5], 7);
        let mut weight = Tensor::zeros([c, c, 3, 3]);
        for f in 0..c {
            *weight.at4_mut(f, f, 1, 1) = 1.0;
        }
        let bias = Tensor::zeros([c]);
        let out = conv2d_forward(&input, &weight, &bias, 1);
        assert_close(out.data(), input.data(), 1e-6);
    }

    #[test]
    fn gradient_check_weights() {
        // Finite-difference check of conv2d_backward_params on a tiny case.
        let input = rand_t([1, 2, 4, 4], 1);
        let mut weight = rand_t([2, 2, 3, 3], 2);
        let bias = rand_t([1, 1, 1, 2], 3).reshape([2]);
        let pad = 1;
        let loss = |w: &Tensor| -> f32 {
            conv2d_forward(&input, w, &bias, pad)
                .data()
                .iter()
                .map(|x| x * x)
                .sum::<f32>()
                * 0.5
        };
        let out = conv2d_forward(&input, &weight, &bias, pad);
        // dL/dout = out for L = 0.5*||out||^2.
        let (gw, _gb) = conv2d_backward_params(&out, &input, 3, pad);
        let eps = 1e-2;
        for idx in [0usize, 5, 17, 35] {
            let orig = weight[idx];
            weight[idx] = orig + eps;
            let lp = loss(&weight);
            weight[idx] = orig - eps;
            let lm = loss(&weight);
            weight[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = gw[idx];
            assert!(
                (numeric - analytic).abs() / (1.0 + analytic.abs()) < 5e-2,
                "weight grad mismatch at {idx}: numeric {numeric}, analytic {analytic}"
            );
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut input = rand_t([1, 2, 4, 4], 4);
        let weight = rand_t([3, 2, 3, 3], 5);
        let bias = Tensor::zeros([3]);
        let pad = 1;
        let loss = |x: &Tensor| -> f32 {
            conv2d_forward(x, &weight, &bias, pad)
                .data()
                .iter()
                .map(|v| v * v)
                .sum::<f32>()
                * 0.5
        };
        let out = conv2d_forward(&input, &weight, &bias, pad);
        let gin = conv2d_backward_input(&out, &weight, 4, 4, pad);
        let eps = 1e-2;
        for idx in [0usize, 7, 15, 31] {
            let orig = input[idx];
            input[idx] = orig + eps;
            let lp = loss(&input);
            input[idx] = orig - eps;
            let lm = loss(&input);
            input[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = gin[idx];
            assert!(
                (numeric - analytic).abs() / (1.0 + analytic.abs()) < 5e-2,
                "input grad mismatch at {idx}: numeric {numeric}, analytic {analytic}"
            );
        }
    }

    #[test]
    fn bias_gradient_is_sum_over_positions() {
        let input = rand_t([2, 1, 3, 3], 6);
        let weight = rand_t([2, 1, 3, 3], 7);
        let gout = Tensor::ones([2, 2, 3, 3]);
        let (_, gb) = conv2d_backward_params(&gout, &input, 3, 1);
        // With all-ones upstream gradient, bias grad = N*H*W = 2*3*3 = 18.
        assert_close(gb.data(), &[18.0, 18.0], 1e-5);
        let _ = weight;
    }

    #[test]
    #[should_panic(expected = "channels")]
    fn forward_rejects_channel_mismatch() {
        let input = Tensor::zeros([1, 3, 4, 4]);
        let weight = Tensor::zeros([2, 4, 3, 3]);
        let bias = Tensor::zeros([2]);
        conv2d_forward(&input, &weight, &bias, 1);
    }
}

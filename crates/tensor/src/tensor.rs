//! The owned dense tensor type.

use std::fmt;
use std::ops::{Index, IndexMut};

use rand::Rng;

use crate::init;
use crate::shape::Shape;

/// An owned, row-major, dense `f32` tensor.
///
/// `Tensor` is the single value type flowing through every layer of the
/// networks in this workspace. It is intentionally simple: owned storage, no
/// views, no broadcasting — the kernels in [`crate::ops`], [`crate::conv`]
/// and [`crate::pool`] encode exactly the access patterns the paper's
/// networks need.
///
/// ```
/// use mn_tensor::Tensor;
/// let t = Tensor::zeros([2, 3]);
/// assert_eq!(t.len(), 6);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros<S: Into<Shape>>(shape: S) -> Self {
        let shape = shape.into();
        let len = shape.len();
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn filled<S: Into<Shape>>(shape: S, value: f32) -> Self {
        let shape = shape.into();
        let len = shape.len();
        Tensor {
            shape,
            data: vec![value; len],
        }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones<S: Into<Shape>>(shape: S) -> Self {
        Self::filled(shape, 1.0)
    }

    /// Creates a tensor from existing row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the number of elements implied
    /// by `shape`.
    pub fn from_vec<S: Into<Shape>>(shape: S, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.len(),
            data.len(),
            "data length {} does not match shape {shape}",
            data.len()
        );
        Tensor { shape, data }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros([n, n]);
        for i in 0..n {
            let idx = t.shape.index2(i, i);
            t.data[idx] = 1.0;
        }
        t
    }

    /// Creates a tensor with elements drawn i.i.d. from a Gaussian with
    /// mean 0 and standard deviation `std`.
    pub fn randn<S: Into<Shape>, R: Rng>(shape: S, std: f32, rng: &mut R) -> Self {
        let shape = shape.into();
        let len = shape.len();
        let mut data = vec![0.0; len];
        init::fill_gaussian(&mut data, 0.0, std, rng);
        Tensor { shape, data }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (some extent is zero, e.g. an
    /// empty request batch).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only access to the underlying row-major storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at 2-D coordinate `(r, c)`.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        self.data[self.shape.index2(r, c)]
    }

    /// Mutable element at 2-D coordinate `(r, c)`.
    #[inline]
    pub fn at2_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        let idx = self.shape.index2(r, c);
        &mut self.data[idx]
    }

    /// Element at 4-D (NCHW) coordinate.
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.shape.index4(n, c, h, w)]
    }

    /// Mutable element at 4-D (NCHW) coordinate.
    #[inline]
    pub fn at4_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        let idx = self.shape.index4(n, c, h, w);
        &mut self.data[idx]
    }

    /// Returns a tensor with the same data but a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different number of elements.
    pub fn reshape<S: Into<Shape>>(&self, shape: S) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.len(),
            self.len(),
            "cannot reshape {} elements into {shape}",
            self.len()
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// In-place reshape (no copy).
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different number of elements.
    pub fn reshape_in_place<S: Into<Shape>>(&mut self, shape: S) {
        let shape = shape.into();
        assert_eq!(
            shape.len(),
            self.len(),
            "cannot reshape {} elements into {shape}",
            self.len()
        );
        self.shape = shape;
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise `self += other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Element-wise `self -= other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "sub_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a -= b;
        }
    }

    /// Element-wise `self *= other` (Hadamard product).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "mul_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a *= b;
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// `self += alpha * other`, the BLAS `axpy` primitive.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.len() as f32
    }

    /// Maximum element (NaN-free inputs assumed).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }
}

impl Index<usize> for Tensor {
    type Output = f32;
    fn index(&self, i: usize) -> &f32 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Tensor {
    fn index_mut(&mut self, i: usize) -> &mut f32 {
        &mut self.data[i]
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.len() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(f, "[{:?}.., len={}]", &self.data[..8], self.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_ones() {
        let z = Tensor::zeros([2, 2]);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let o = Tensor::ones([2, 2]);
        assert!(o.data().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.at2(0, 0), 1.0);
        assert_eq!(i.at2(1, 1), 1.0);
        assert_eq!(i.at2(0, 1), 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_validates() {
        Tensor::from_vec([2, 2], vec![1.0; 3]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], (0..6).map(|x| x as f32).collect());
        let r = t.reshape([3, 2]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape().dims(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_validates() {
        Tensor::zeros([2, 3]).reshape([4, 2]);
    }

    #[test]
    fn arithmetic_ops() {
        let mut a = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec([3], vec![10.0, 20.0, 30.0]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[11.0, 22.0, 33.0]);
        a.sub_assign(&b);
        assert_eq!(a.data(), &[1.0, 2.0, 3.0]);
        a.scale(2.0);
        assert_eq!(a.data(), &[2.0, 4.0, 6.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[7.0, 14.0, 21.0]);
        a.mul_assign(&b);
        assert_eq!(a.data(), &[70.0, 280.0, 630.0]);
        a.fill_zero();
        assert_eq!(a.sum(), 0.0);
    }

    #[test]
    fn statistics() {
        let t = Tensor::from_vec([4], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.sq_norm(), 30.0);
    }

    #[test]
    fn randn_statistics_roughly_normal() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn([10_000], 2.0, &mut rng);
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean} too far from 0");
        assert!((var - 4.0).abs() < 0.3, "variance {var} too far from 4");
    }

    #[test]
    fn indexing() {
        let mut t = Tensor::zeros([2, 2]);
        t[3] = 5.0;
        assert_eq!(t[3], 5.0);
        *t.at2_mut(0, 1) = 2.0;
        assert_eq!(t.at2(0, 1), 2.0);
        let mut t4 = Tensor::zeros([1, 2, 2, 2]);
        *t4.at4_mut(0, 1, 1, 1) = 9.0;
        assert_eq!(t4.at4(0, 1, 1, 1), 9.0);
    }

    #[test]
    fn debug_is_nonempty() {
        let t = Tensor::zeros([2]);
        assert!(!format!("{t:?}").is_empty());
        let big = Tensor::zeros([100]);
        assert!(format!("{big:?}").contains("len=100"));
    }

    #[test]
    fn map_applies() {
        let t = Tensor::from_vec([2], vec![-1.0, 2.0]);
        let r = t.map(|x| x.max(0.0));
        assert_eq!(r.data(), &[0.0, 2.0]);
        let mut m = t.clone();
        m.map_in_place(|x| x * 10.0);
        assert_eq!(m.data(), &[-10.0, 20.0]);
    }
}

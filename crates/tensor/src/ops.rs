//! Dense linear-algebra kernels: matrix products, bias broadcast, softmax.
//!
//! All matrices are `[rows, cols]`, row-major. Every function panics on
//! shape mismatch (see crate-level documentation).
//!
//! ## Blocked-kernel layout
//!
//! The three matrix products ([`matmul`], [`matmul_tn`], [`matmul_nt`])
//! share one cache-blocked, register-tiled GEMM core:
//!
//! 1. **Pack B.** The right operand is repacked once per call into
//!    column panels of [`NR`] columns, each panel laid out `[k × NR]`
//!    contiguously (zero-padded past the matrix edge). The transposed
//!    variants differ *only* in their packing routine, so the hot loop is
//!    identical for all three products.
//! 2. **Pack A per row tile.** Each [`MR`]-row tile of the left operand is
//!    repacked into a `[k × MR]` panel so the micro-kernel reads both
//!    operands as unit-stride streams.
//! 3. **Micro-kernel.** An `MR × NR` accumulator tile lives entirely in
//!    registers across the whole `k` loop; each step performs
//!    `MR · NR` fused multiply-adds against one packed row of A and one
//!    packed row of B. Two implementations sit behind the runtime
//!    dispatch in [`crate::simd`]: the portable-scalar reference below
//!    ([`microkernel_scalar`], autovectorized as well as the build flags
//!    allow — dense FMA streams under `target-cpu=native`) and an
//!    explicit AVX2 `std::arch` kernel selected at runtime on capable
//!    CPUs, so a portable binary no longer depends on the compiler flag
//!    for vector code. Both are bitwise identical (see [`crate::simd`]'s
//!    module docs). `MR × NR = 10 × 16` was tuned empirically.
//! 4. **Parallel row bands.** Output rows are split into bands (a few per
//!    worker for load balance, capped at [`BAND_ROWS`] for packed-A
//!    locality) distributed across rayon worker threads. Bands are always
//!    multiples of [`MR`], so the register tiles stay globally aligned and
//!    every output element accumulates its `k` products in the same order
//!    under any banding or schedule — results are **bitwise identical
//!    across thread counts**.
//!
//! The pre-optimization triple-loop kernels survive as [`reference`]; the
//! `kernel_equivalence` property suite pins the blocked kernels to them
//! within `1e-5` across randomized (including degenerate) shapes.

use crate::Tensor;

/// Rows per register tile (see module docs).
pub const MR: usize = 10;
/// Columns per register tile (see module docs).
pub const NR: usize = 16;
/// Maximum output rows per band (packed-A locality cap); a multiple of
/// [`MR`].
pub const BAND_ROWS: usize = 10 * 16;

/// Below this many multiply-adds the whole product runs on the calling
/// thread: spawning workers would cost more than the arithmetic.
const PARALLEL_FLOP_THRESHOLD: usize = 128 * 1024;

pub mod reference {
    //! The original naive (obviously-correct) matrix kernels.
    //!
    //! These are the ground truth the blocked kernels in the parent module
    //! are property-tested against, and the baseline the `kernels` bench
    //! harness measures speedups from. They are not used on any hot path.

    use super::mat_dims;
    use crate::Tensor;

    /// `C = A · B` for `A: [m, k]`, `B: [k, n]`; ikj-ordered triple loop.
    ///
    /// # Panics
    ///
    /// Panics unless `A` and `B` are matrices with matching inner
    /// dimension.
    pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = mat_dims(a, "matmul lhs");
        let (k2, n) = mat_dims(b, "matmul rhs");
        assert_eq!(k, k2, "matmul inner dims differ: {k} vs {k2}");
        let mut c = Tensor::zeros([m, n]);
        let ad = a.data();
        let bd = b.data();
        let cd = c.data_mut();
        for i in 0..m {
            for p in 0..k {
                let aip = ad[i * k + p];
                if aip == 0.0 {
                    continue;
                }
                let brow = &bd[p * n..(p + 1) * n];
                let crow = &mut cd[i * n..(i + 1) * n];
                for j in 0..n {
                    crow[j] += aip * brow[j];
                }
            }
        }
        c
    }

    /// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]` (no explicit transpose).
    ///
    /// # Panics
    ///
    /// Panics unless both are matrices with matching leading dimension.
    pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
        let (k, m) = mat_dims(a, "matmul_tn lhs");
        let (k2, n) = mat_dims(b, "matmul_tn rhs");
        assert_eq!(k, k2, "matmul_tn leading dims differ: {k} vs {k2}");
        let mut c = Tensor::zeros([m, n]);
        let ad = a.data();
        let bd = b.data();
        let cd = c.data_mut();
        for p in 0..k {
            let arow = &ad[p * m..(p + 1) * m];
            let brow = &bd[p * n..(p + 1) * n];
            for i in 0..m {
                let aip = arow[i];
                if aip == 0.0 {
                    continue;
                }
                let crow = &mut cd[i * n..(i + 1) * n];
                for j in 0..n {
                    crow[j] += aip * brow[j];
                }
            }
        }
        c
    }

    /// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]` (no explicit transpose).
    ///
    /// # Panics
    ///
    /// Panics unless both are matrices with matching trailing dimension.
    pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = mat_dims(a, "matmul_nt lhs");
        let (n, k2) = mat_dims(b, "matmul_nt rhs");
        assert_eq!(k, k2, "matmul_nt trailing dims differ: {k} vs {k2}");
        let mut c = Tensor::zeros([m, n]);
        let ad = a.data();
        let bd = b.data();
        let cd = c.data_mut();
        for i in 0..m {
            let arow = &ad[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &bd[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for p in 0..k {
                    acc += arow[p] * brow[p];
                }
                cd[i * n + j] = acc;
            }
        }
        c
    }
}

/// How the GEMM core's packing routines read their operands.
#[derive(Clone, Copy, PartialEq, Eq)]
enum AShape {
    /// `A: [m, k]`, element `(i, p)` at `a[i * k + p]`.
    RowMajor,
    /// `A: [k, m]` interpreted transposed, element `(i, p)` at
    /// `a[p * m + i]`.
    Transposed,
}

/// One fused-multiply-add step, using the hardware FMA instruction when
/// the compilation target has one. Without the guard `f32::mul_add` lowers
/// to a libm call on non-FMA targets, which is far slower than separate
/// mul + add. The explicit AVX2 kernel in [`crate::simd`] follows the
/// same compile-time switch ([`crate::simd::COMPILED_FMA`]), so both
/// backends always round identically.
#[inline(always)]
fn fma(a: f32, b: f32, c: f32) -> f32 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        a * b + c
    }
}

/// The portable-scalar register-tile micro-kernel:
/// `acc[MR × NR] += Apanel · Bpanel` over the full depth `k`, both panels
/// packed unit-stride (see module docs). This is the reference path the
/// explicit-SIMD kernel in [`crate::simd`] is pinned bitwise against.
// mn-lint: hot-path
#[inline(always)]
pub(crate) fn microkernel_scalar(
    k: usize,
    a_panel: &[f32],
    b_panel: &[f32],
    acc: &mut [f32; MR * NR],
) {
    debug_assert!(a_panel.len() >= k * MR);
    debug_assert!(b_panel.len() >= k * NR);
    let mut tile = [[0.0f32; NR]; MR];
    for (a_row, b_row) in a_panel
        .chunks_exact(MR)
        .zip(b_panel.chunks_exact(NR))
        .take(k)
    {
        let b_vec: [f32; NR] = b_row.try_into().unwrap();
        for (r, row) in tile.iter_mut().enumerate() {
            let arp = a_row[r];
            for (c, cell) in row.iter_mut().enumerate() {
                *cell = fma(arp, b_vec[c], *cell);
            }
        }
    }
    for (r, row) in tile.iter().enumerate() {
        acc[r * NR..(r + 1) * NR].copy_from_slice(row);
    }
}

/// Packs the `MR`-row tile of A starting at output row `i0` into
/// `dst: [k × MR]`, zero-padding rows past `m`.
#[inline]
fn pack_a_tile(dst: &mut [f32], a: &[f32], shape: AShape, m: usize, k: usize, i0: usize) {
    let rows = MR.min(m - i0);
    match shape {
        AShape::RowMajor => {
            for p in 0..k {
                let d = &mut dst[p * MR..p * MR + MR];
                for (r, v) in d.iter_mut().enumerate() {
                    *v = if r < rows { a[(i0 + r) * k + p] } else { 0.0 };
                }
            }
        }
        AShape::Transposed => {
            for p in 0..k {
                let src = &a[p * m + i0..p * m + i0 + rows];
                let d = &mut dst[p * MR..p * MR + MR];
                d[..rows].copy_from_slice(src);
                d[rows..].fill(0.0);
            }
        }
    }
}

/// Number of `f32` elements a packed-B buffer needs for a `[k, n]` (or
/// transposed `[n, k]`) right operand.
fn packed_b_len(k: usize, n: usize) -> usize {
    n.div_ceil(NR) * k * NR
}

/// Packs `B: [k, n]` into `NR`-column panels, each `[k × NR]` contiguous,
/// zero-padded past `n`, writing into `buf` (every element is written).
fn pack_b_nn_into(b: &[f32], k: usize, n: usize, buf: &mut [f32]) {
    debug_assert_eq!(buf.len(), packed_b_len(k, n));
    buf.fill(0.0);
    let panels = n.div_ceil(NR);
    for jp in 0..panels {
        let j0 = jp * NR;
        let w = NR.min(n - j0);
        let panel = &mut buf[jp * k * NR..(jp + 1) * k * NR];
        for p in 0..k {
            panel[p * NR..p * NR + w].copy_from_slice(&b[p * n + j0..p * n + j0 + w]);
        }
    }
}

/// Packs `B: [n, k]` (used transposed) into the same panel layout as
/// [`pack_b_nn_into`], so `C = A · Bᵀ` shares the micro-kernel.
fn pack_b_nt_into(b: &[f32], k: usize, n: usize, buf: &mut [f32]) {
    debug_assert_eq!(buf.len(), packed_b_len(k, n));
    buf.fill(0.0);
    let panels = n.div_ceil(NR);
    for jp in 0..panels {
        let j0 = jp * NR;
        let w = NR.min(n - j0);
        let panel = &mut buf[jp * k * NR..(jp + 1) * k * NR];
        for c in 0..w {
            let row = &b[(j0 + c) * k..(j0 + c) * k + k];
            for (p, &v) in row.iter().enumerate() {
                panel[p * NR + c] = v;
            }
        }
    }
}

/// How a raw GEMM call's right operand is packed.
#[derive(Clone, Copy, PartialEq, Eq)]
enum BShape {
    /// `B: [k, n]`, row-major.
    RowMajor,
    /// `B: [n, k]`, used transposed.
    Transposed,
}

/// Stages the packed-B buffer in `ws` (when given) or a fresh `Vec`, then
/// runs the shared GEMM driver. All public products funnel through here.
#[allow(clippy::too_many_arguments)]
fn gemm_raw(
    a: &[f32],
    a_shape: AShape,
    b: &[f32],
    b_shape: BShape,
    c: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
    ws: Option<&mut crate::Workspace>,
) {
    let plen = packed_b_len(k, n);
    let pack = |buf: &mut [f32]| match b_shape {
        BShape::RowMajor => pack_b_nn_into(b, k, n, buf),
        BShape::Transposed => pack_b_nt_into(b, k, n, buf),
    };
    match ws {
        Some(ws) => {
            let mut bp = ws.acquire_uninit([plen]);
            pack(bp.data_mut());
            gemm_driver(a, a_shape, bp.data(), c, m, n, k);
            ws.release(bp);
        }
        None => {
            let mut bp = vec![0.0f32; plen];
            pack(&mut bp);
            gemm_driver(a, a_shape, &bp, c, m, n, k);
        }
    }
}

/// The shared GEMM driver: writes `C = op(A) · op(B)` into `c`, which must
/// hold `m * n` elements. Every element of `c` is overwritten.
fn gemm_driver(
    a: &[f32],
    a_shape: AShape,
    b_packed: &[f32],
    c: &mut [f32],
    m: usize,
    n: usize,
    k: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        return;
    }
    let panels = n.div_ceil(NR);
    // Band size adapts to the worker count (a few bands per worker for
    // load balance), capped at BAND_ROWS for packed-A locality. Banding
    // cannot affect numerics: bands are multiples of MR, so the register
    // tiles stay globally MR-aligned and every output element is computed
    // in the same order for ANY band size — results are bitwise identical
    // across thread counts.
    let threads = rayon::current_num_threads();
    let worthwhile = m * n * k >= PARALLEL_FLOP_THRESHOLD && threads > 1 && m > MR;
    let chunk_rows = if worthwhile {
        (m.div_ceil(4 * threads).div_ceil(MR) * MR).min(BAND_ROWS)
    } else {
        BAND_ROWS
    };
    // Resolve the kernel backend once per product; the per-tile dispatch
    // below is then a branch on a `Copy` enum. Backends are bitwise
    // identical (see `crate::simd`), so dispatch cannot affect results.
    let backend = crate::simd::active();
    let band = |cband: &mut [f32], band_idx: usize| {
        let i_base = band_idx * chunk_rows;
        let band_rows = cband.len() / n;
        let tiles = band_rows.div_ceil(MR);
        // Pack the band's A tiles once; the j-panel loop then runs outermost
        // so each 16-or-so-KB B panel stays L1-resident across every tile.
        let mut a_band = vec![0.0f32; tiles * k * MR];
        for (t, a_panel) in a_band.chunks_mut(k * MR).enumerate() {
            pack_a_tile(a_panel, a, a_shape, m, k, i_base + t * MR);
        }
        for jp in 0..panels {
            let j0 = jp * NR;
            let w = NR.min(n - j0);
            let b_panel = &b_packed[jp * k * NR..(jp + 1) * k * NR];
            for (t, a_panel) in a_band.chunks(k * MR).enumerate() {
                let it = t * MR;
                let rows = MR.min(band_rows - it);
                let mut acc = [0.0f32; MR * NR];
                crate::simd::microkernel(backend, k, a_panel, b_panel, &mut acc);
                for r in 0..rows {
                    cband[(it + r) * n + j0..(it + r) * n + j0 + w]
                        .copy_from_slice(&acc[r * NR..r * NR + w]);
                }
            }
        }
    };
    crate::chunking::for_each_chunk(c, chunk_rows * n, worthwhile, |band_idx, cband| {
        band(cband, band_idx)
    });
}

/// A borrowed row-major matrix view over contiguous `f32` storage.
///
/// Every GEMM entry point takes its operands as `impl Into<MatRef>`, so a
/// plain 2-D [`Tensor`] works directly — and callers whose storage is
/// already the right matrix under a different logical shape (the im2col
/// convolution path reads the `[F, C, K, K]` weight tensor as its
/// `[F, C·K·K]` matrix) route through the same public entry points via
/// [`MatRef::reshaped`], with no reshape copy and no raw side doors.
#[derive(Clone, Copy, Debug)]
pub struct MatRef<'a> {
    data: &'a [f32],
    rows: usize,
    cols: usize,
}

impl<'a> MatRef<'a> {
    /// Views `rows × cols` contiguous elements as a row-major matrix.
    ///
    /// # Panics
    ///
    /// Panics unless `data.len() == rows * cols`.
    pub fn new(data: &'a [f32], rows: usize, cols: usize) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix view [{rows}, {cols}] needs {} elements, got {}",
            rows * cols,
            data.len()
        );
        MatRef { data, rows, cols }
    }

    /// Views a tensor of any rank as a `[rows, cols]` matrix over its
    /// existing storage (row-major, no copy).
    ///
    /// # Panics
    ///
    /// Panics unless the tensor holds exactly `rows * cols` elements.
    pub fn reshaped(t: &'a Tensor, rows: usize, cols: usize) -> Self {
        MatRef::new(t.data(), rows, cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major storage.
    pub fn data(&self) -> &'a [f32] {
        self.data
    }
}

impl<'a> From<&'a Tensor> for MatRef<'a> {
    fn from(t: &'a Tensor) -> Self {
        let (rows, cols) = mat_dims(t, "matrix operand");
        MatRef {
            data: t.data(),
            rows,
            cols,
        }
    }
}

/// `C = A · B` for `A: [m, k]`, `B: [k, n]` — cache-blocked and
/// register-tiled (see module docs).
///
/// # Panics
///
/// Panics unless `A` and `B` are matrices with matching inner dimension.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, _) = mat_dims(a, "matmul lhs");
    let (_, n) = mat_dims(b, "matmul rhs");
    let mut c = Tensor::zeros([m, n]);
    matmul_into(a, b, &mut c);
    c
}

/// [`matmul`] writing into a caller-provided (e.g. workspace-acquired)
/// output tensor. Every element of `c` is overwritten. Operands are
/// anything viewable as a matrix (a 2-D [`Tensor`] or a [`MatRef`]).
///
/// # Panics
///
/// Panics on operand shape mismatch or if `c` is not `[m, n]`.
pub fn matmul_into<'a>(a: impl Into<MatRef<'a>>, b: impl Into<MatRef<'a>>, c: &mut Tensor) {
    matmul_into_dispatch(a.into(), b.into(), c, None);
}

/// [`matmul_into`] staging the GEMM's packed-B operand buffer in a
/// [`Workspace`], so repeated products reuse it instead of reallocating.
///
/// # Panics
///
/// Panics on operand shape mismatch or if `c` is not `[m, n]`.
pub fn matmul_into_ws<'a>(
    a: impl Into<MatRef<'a>>,
    b: impl Into<MatRef<'a>>,
    c: &mut Tensor,
    ws: &mut crate::Workspace,
) {
    matmul_into_dispatch(a.into(), b.into(), c, Some(ws));
}

fn matmul_into_dispatch(a: MatRef, b: MatRef, c: &mut Tensor, ws: Option<&mut crate::Workspace>) {
    let (m, k) = (a.rows(), a.cols());
    let (k2, n) = (b.rows(), b.cols());
    assert_eq!(k, k2, "matmul inner dims differ: {k} vs {k2}");
    assert_eq!(
        c.shape().dims(),
        &[m, n],
        "matmul output must be [{m}, {n}]"
    );
    gemm_raw(
        a.data(),
        AShape::RowMajor,
        b.data(),
        BShape::RowMajor,
        c.data_mut(),
        m,
        n,
        k,
        ws,
    );
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]` (no explicit transpose) —
/// cache-blocked and register-tiled (see module docs).
///
/// # Panics
///
/// Panics unless both are matrices with matching leading dimension.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (_, m) = mat_dims(a, "matmul_tn lhs");
    let (_, n) = mat_dims(b, "matmul_tn rhs");
    let mut c = Tensor::zeros([m, n]);
    matmul_tn_into(a, b, &mut c);
    c
}

/// [`matmul_tn`] writing into a caller-provided output tensor. Operands
/// are anything viewable as a matrix (a 2-D [`Tensor`] or a [`MatRef`]).
///
/// # Panics
///
/// Panics on operand shape mismatch or if `c` is not `[m, n]`.
pub fn matmul_tn_into<'a>(a: impl Into<MatRef<'a>>, b: impl Into<MatRef<'a>>, c: &mut Tensor) {
    matmul_tn_into_dispatch(a.into(), b.into(), c, None);
}

/// [`matmul_tn_into`] staging the GEMM's packed-B operand buffer in a
/// [`Workspace`].
///
/// # Panics
///
/// Panics on operand shape mismatch or if `c` is not `[m, n]`.
pub fn matmul_tn_into_ws<'a>(
    a: impl Into<MatRef<'a>>,
    b: impl Into<MatRef<'a>>,
    c: &mut Tensor,
    ws: &mut crate::Workspace,
) {
    matmul_tn_into_dispatch(a.into(), b.into(), c, Some(ws));
}

fn matmul_tn_into_dispatch(
    a: MatRef,
    b: MatRef,
    c: &mut Tensor,
    ws: Option<&mut crate::Workspace>,
) {
    let (k, m) = (a.rows(), a.cols());
    let (k2, n) = (b.rows(), b.cols());
    assert_eq!(k, k2, "matmul_tn leading dims differ: {k} vs {k2}");
    assert_eq!(
        c.shape().dims(),
        &[m, n],
        "matmul_tn output must be [{m}, {n}]"
    );
    gemm_raw(
        a.data(),
        AShape::Transposed,
        b.data(),
        BShape::RowMajor,
        c.data_mut(),
        m,
        n,
        k,
        ws,
    );
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]` (no explicit transpose) —
/// cache-blocked and register-tiled (see module docs).
///
/// # Panics
///
/// Panics unless both are matrices with matching trailing dimension.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, _) = mat_dims(a, "matmul_nt lhs");
    let (n, _) = mat_dims(b, "matmul_nt rhs");
    let mut c = Tensor::zeros([m, n]);
    matmul_nt_into(a, b, &mut c);
    c
}

/// [`matmul_nt`] writing into a caller-provided output tensor. Operands
/// are anything viewable as a matrix (a 2-D [`Tensor`] or a [`MatRef`]) —
/// the im2col convolution path passes the `[F, C, K, K]` weight tensor as
/// `MatRef::reshaped(weight, f, c*k*k)` to avoid a reshape copy.
///
/// # Panics
///
/// Panics on operand shape mismatch or if `c` is not `[m, n]`.
pub fn matmul_nt_into<'a>(a: impl Into<MatRef<'a>>, b: impl Into<MatRef<'a>>, c: &mut Tensor) {
    matmul_nt_into_dispatch(a.into(), b.into(), c, None);
}

/// [`matmul_nt_into`] staging the GEMM's packed-B operand buffer in a
/// [`Workspace`].
///
/// # Panics
///
/// Panics on operand shape mismatch or if `c` is not `[m, n]`.
pub fn matmul_nt_into_ws<'a>(
    a: impl Into<MatRef<'a>>,
    b: impl Into<MatRef<'a>>,
    c: &mut Tensor,
    ws: &mut crate::Workspace,
) {
    matmul_nt_into_dispatch(a.into(), b.into(), c, Some(ws));
}

fn matmul_nt_into_dispatch(
    a: MatRef,
    b: MatRef,
    c: &mut Tensor,
    ws: Option<&mut crate::Workspace>,
) {
    let (m, k) = (a.rows(), a.cols());
    let (n, k2) = (b.rows(), b.cols());
    assert_eq!(k, k2, "matmul_nt trailing dims differ: {k} vs {k2}");
    assert_eq!(
        c.shape().dims(),
        &[m, n],
        "matmul_nt output must be [{m}, {n}]"
    );
    gemm_raw(
        a.data(),
        AShape::RowMajor,
        b.data(),
        BShape::Transposed,
        c.data_mut(),
        m,
        n,
        k,
        ws,
    );
}

/// Transposes a matrix.
///
/// # Panics
///
/// Panics if `a` is not 2-D.
pub fn transpose(a: &Tensor) -> Tensor {
    let (m, n) = mat_dims(a, "transpose");
    let mut t = Tensor::zeros([n, m]);
    for i in 0..m {
        for j in 0..n {
            *t.at2_mut(j, i) = a.at2(i, j);
        }
    }
    t
}

/// Adds a bias row-vector `bias: [n]` to every row of `x: [m, n]`, in
/// place — each row is one dispatched axpy ([`crate::simd::axpy`] with
/// `alpha = 1`), so the broadcast rides the explicit-SIMD backend too.
///
/// # Panics
///
/// Panics unless `x` is a matrix and `bias` a vector of matching width.
pub fn add_row_bias(x: &mut Tensor, bias: &Tensor) {
    let (m, n) = mat_dims(x, "add_row_bias input");
    assert_eq!(
        bias.shape().dims(),
        &[n],
        "bias shape {} does not match row width {n}",
        bias.shape()
    );
    let bd: Vec<f32> = bias.data().to_vec();
    let xd = x.data_mut();
    for i in 0..m {
        crate::simd::axpy(1.0, &bd, &mut xd[i * n..(i + 1) * n]);
    }
}

/// Column sums of a matrix `x: [m, n]`, returned as `[n]`.
///
/// This is the bias gradient of a dense layer.
///
/// # Panics
///
/// Panics if `x` is not 2-D.
pub fn column_sums(x: &Tensor) -> Tensor {
    let (_, n) = mat_dims(x, "column_sums");
    let mut s = Tensor::zeros([n]);
    column_sums_into(x, &mut s);
    s
}

/// [`column_sums`] writing into a caller-provided (e.g.
/// workspace-acquired) `[n]` output; every element is overwritten. Wide
/// matrices split the column range across rayon workers (each worker owns
/// a disjoint column band and scans the rows in order, so the result is
/// bitwise identical across thread counts).
///
/// # Panics
///
/// Panics if `x` is not 2-D or `out` is not `[n]`.
pub fn column_sums_into(x: &Tensor, out: &mut Tensor) {
    let (m, n) = mat_dims(x, "column_sums");
    assert_eq!(out.shape().dims(), &[n], "column_sums output must be [{n}]");
    let xd = x.data();
    // One cache line of f32 per column band keeps bands false-sharing-free.
    const COL_BAND: usize = 16;
    let worthwhile = m * n >= PARALLEL_FLOP_THRESHOLD;
    crate::chunking::for_each_chunk(out.data_mut(), COL_BAND, worthwhile, |band, schunk| {
        let j0 = band * COL_BAND;
        schunk.fill(0.0);
        for i in 0..m {
            let row = &xd[i * n + j0..i * n + j0 + schunk.len()];
            for (s, &v) in schunk.iter_mut().zip(row) {
                *s += v;
            }
        }
    });
}

/// Row-wise numerically-stable softmax, in place, for `x: [m, n]`.
///
/// # Panics
///
/// Panics if `x` is not 2-D.
pub fn softmax_rows(x: &mut Tensor) {
    let (m, n) = mat_dims(x, "softmax_rows");
    let xd = x.data_mut();
    for i in 0..m {
        let row = &mut xd[i * n..(i + 1) * n];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Index of the maximum element of each row of `x: [m, n]`.
///
/// Ties resolve to the lowest index.
///
/// # Panics
///
/// Panics if `x` is not 2-D.
pub fn argmax_rows(x: &Tensor) -> Vec<usize> {
    let (m, n) = mat_dims(x, "argmax_rows");
    let xd = x.data();
    (0..m)
        .map(|i| {
            let row = &xd[i * n..(i + 1) * n];
            let mut best = 0;
            for j in 1..n {
                if row[j] > row[best] {
                    best = j;
                }
            }
            best
        })
        .collect()
}

fn mat_dims(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(t.shape().ndim(), 2, "{what} must be 2-D, got {}", t.shape());
    (t.shape().dim(0), t.shape().dim(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn([4, 4], 1.0, &mut rng);
        let c = matmul(&a, &Tensor::eye(4));
        assert_close(c.data(), a.data(), 1e-6);
    }

    #[test]
    fn matref_reshaped_view_matches_reshape_copy() {
        // A 4-D tensor viewed as its flattened matrix must multiply exactly
        // like an explicit reshape copy — this is the im2col weight path.
        let mut rng = StdRng::seed_from_u64(11);
        let w4 = Tensor::randn([4, 3, 3, 3], 1.0, &mut rng);
        let a = Tensor::randn([6, 27], 1.0, &mut rng);
        let wmat = w4.reshape([4, 27]);
        let mut via_view = Tensor::zeros([6, 4]);
        matmul_nt_into(&a, MatRef::reshaped(&w4, 4, 27), &mut via_view);
        let mut via_copy = Tensor::zeros([6, 4]);
        matmul_nt_into(&a, &wmat, &mut via_copy);
        assert_eq!(via_view.data(), via_copy.data());
        let view = MatRef::reshaped(&w4, 4, 27);
        assert_eq!((view.rows(), view.cols()), (4, 27));
        assert_eq!(view.data().len(), 108);
    }

    #[test]
    #[should_panic(expected = "must be 2-D")]
    fn matref_from_tensor_rejects_non_matrix() {
        let t = Tensor::zeros([2, 2, 2]);
        let _ = MatRef::from(&t);
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn matref_reshaped_rejects_wrong_element_count() {
        let t = Tensor::zeros([2, 3]);
        let _ = MatRef::reshaped(&t, 2, 4);
    }

    #[test]
    fn blocked_matmul_matches_reference_beyond_band_size() {
        // Spans multiple bands, register tiles, and ragged edges at once.
        let mut rng = StdRng::seed_from_u64(5);
        let a = Tensor::randn([2 * BAND_ROWS + 3, 37], 1.0, &mut rng);
        let b = Tensor::randn([37, 2 * NR + 5], 1.0, &mut rng);
        assert_close(
            matmul(&a, &b).data(),
            reference::matmul(&a, &b).data(),
            1e-5,
        );
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::randn([5, 3], 1.0, &mut rng);
        let b = Tensor::randn([5, 4], 1.0, &mut rng);
        let via_tn = matmul_tn(&a, &b);
        let via_t = matmul(&transpose(&a), &b);
        assert_close(via_tn.data(), via_t.data(), 1e-5);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::randn([5, 3], 1.0, &mut rng);
        let b = Tensor::randn([4, 3], 1.0, &mut rng);
        let via_nt = matmul_nt(&a, &b);
        let via_t = matmul(&a, &transpose(&b));
        assert_close(via_nt.data(), via_t.data(), 1e-5);
    }

    #[test]
    fn into_variants_overwrite_stale_output() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Tensor::randn([9, 7], 1.0, &mut rng);
        let b = Tensor::randn([7, 11], 1.0, &mut rng);
        let mut c = Tensor::filled([9, 11], f32::NAN);
        matmul_into(&a, &b, &mut c);
        assert_close(c.data(), reference::matmul(&a, &b).data(), 1e-5);
    }

    #[test]
    fn empty_operands_produce_empty_products() {
        let a = Tensor::zeros([0, 5]);
        let b = Tensor::zeros([5, 4]);
        assert_eq!(matmul(&a, &b).shape().dims(), &[0, 4]);
        let a = Tensor::zeros([3, 0]);
        let b = Tensor::zeros([0, 4]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape().dims(), &[3, 4]);
        assert!(c.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_rejects_mismatch() {
        matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Tensor::randn([3, 5], 1.0, &mut rng);
        assert_eq!(transpose(&transpose(&a)), a);
    }

    #[test]
    fn bias_broadcast() {
        let mut x = Tensor::zeros([2, 3]);
        let b = Tensor::from_vec([3], vec![1., 2., 3.]);
        add_row_bias(&mut x, &b);
        assert_eq!(x.data(), &[1., 2., 3., 1., 2., 3.]);
    }

    #[test]
    fn column_sums_are_bias_grad() {
        let x = Tensor::from_vec([2, 3], vec![1., 2., 3., 10., 20., 30.]);
        let s = column_sums(&x);
        assert_eq!(s.data(), &[11., 22., 33.]);
    }

    #[test]
    fn softmax_rows_normalizes() {
        let mut x = Tensor::from_vec([2, 3], vec![1., 2., 3., 1000., 1000., 1000.]);
        softmax_rows(&mut x);
        for i in 0..2 {
            let row_sum: f32 = (0..3).map(|j| x.at2(i, j)).sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
        // Large logits must not overflow (stability check).
        assert!((x.at2(1, 0) - 1.0 / 3.0).abs() < 1e-5);
        // Monotone in logits.
        assert!(x.at2(0, 2) > x.at2(0, 1) && x.at2(0, 1) > x.at2(0, 0));
    }

    #[test]
    fn argmax_ties_to_lowest() {
        let x = Tensor::from_vec([2, 3], vec![5., 5., 1., 0., 2., 2.]);
        assert_eq!(argmax_rows(&x), vec![0, 1]);
    }
}

//! Dense linear-algebra kernels: matrix products, bias broadcast, softmax.
//!
//! All matrices are `[rows, cols]`, row-major. Every function panics on
//! shape mismatch (see crate-level documentation).

use crate::Tensor;

/// `C = A · B` for `A: [m, k]`, `B: [k, n]`.
///
/// Straightforward ikj-ordered triple loop — cache-friendly for the sizes
/// the workspace uses (hundreds × hundreds at most).
///
/// # Panics
///
/// Panics unless `A` and `B` are matrices with matching inner dimension.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = mat_dims(a, "matmul lhs");
    let (k2, n) = mat_dims(b, "matmul rhs");
    assert_eq!(k, k2, "matmul inner dims differ: {k} vs {k2}");
    let mut c = Tensor::zeros([m, n]);
    let ad = a.data();
    let bd = b.data();
    let cd = c.data_mut();
    for i in 0..m {
        for p in 0..k {
            let aip = ad[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            let crow = &mut cd[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] += aip * brow[j];
            }
        }
    }
    c
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]` (no explicit transpose).
///
/// # Panics
///
/// Panics unless both are matrices with matching leading dimension.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = mat_dims(a, "matmul_tn lhs");
    let (k2, n) = mat_dims(b, "matmul_tn rhs");
    assert_eq!(k, k2, "matmul_tn leading dims differ: {k} vs {k2}");
    let mut c = Tensor::zeros([m, n]);
    let ad = a.data();
    let bd = b.data();
    let cd = c.data_mut();
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for i in 0..m {
            let aip = arow[i];
            if aip == 0.0 {
                continue;
            }
            let crow = &mut cd[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] += aip * brow[j];
            }
        }
    }
    c
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]` (no explicit transpose).
///
/// # Panics
///
/// Panics unless both are matrices with matching trailing dimension.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = mat_dims(a, "matmul_nt lhs");
    let (n, k2) = mat_dims(b, "matmul_nt rhs");
    assert_eq!(k, k2, "matmul_nt trailing dims differ: {k} vs {k2}");
    let mut c = Tensor::zeros([m, n]);
    let ad = a.data();
    let bd = b.data();
    let cd = c.data_mut();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for p in 0..k {
                acc += arow[p] * brow[p];
            }
            cd[i * n + j] = acc;
        }
    }
    c
}

/// Transposes a matrix.
///
/// # Panics
///
/// Panics if `a` is not 2-D.
pub fn transpose(a: &Tensor) -> Tensor {
    let (m, n) = mat_dims(a, "transpose");
    let mut t = Tensor::zeros([n, m]);
    for i in 0..m {
        for j in 0..n {
            *t.at2_mut(j, i) = a.at2(i, j);
        }
    }
    t
}

/// Adds a bias row-vector `bias: [n]` to every row of `x: [m, n]`, in place.
///
/// # Panics
///
/// Panics unless `x` is a matrix and `bias` a vector of matching width.
pub fn add_row_bias(x: &mut Tensor, bias: &Tensor) {
    let (m, n) = mat_dims(x, "add_row_bias input");
    assert_eq!(
        bias.shape().dims(),
        &[n],
        "bias shape {} does not match row width {n}",
        bias.shape()
    );
    let bd: Vec<f32> = bias.data().to_vec();
    let xd = x.data_mut();
    for i in 0..m {
        let row = &mut xd[i * n..(i + 1) * n];
        for j in 0..n {
            row[j] += bd[j];
        }
    }
}

/// Column sums of a matrix `x: [m, n]`, returned as `[n]`.
///
/// This is the bias gradient of a dense layer.
///
/// # Panics
///
/// Panics if `x` is not 2-D.
pub fn column_sums(x: &Tensor) -> Tensor {
    let (m, n) = mat_dims(x, "column_sums");
    let mut s = Tensor::zeros([n]);
    let xd = x.data();
    let sd = s.data_mut();
    for i in 0..m {
        let row = &xd[i * n..(i + 1) * n];
        for j in 0..n {
            sd[j] += row[j];
        }
    }
    s
}

/// Row-wise numerically-stable softmax, in place, for `x: [m, n]`.
///
/// # Panics
///
/// Panics if `x` is not 2-D.
pub fn softmax_rows(x: &mut Tensor) {
    let (m, n) = mat_dims(x, "softmax_rows");
    let xd = x.data_mut();
    for i in 0..m {
        let row = &mut xd[i * n..(i + 1) * n];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// Index of the maximum element of each row of `x: [m, n]`.
///
/// Ties resolve to the lowest index.
///
/// # Panics
///
/// Panics if `x` is not 2-D.
pub fn argmax_rows(x: &Tensor) -> Vec<usize> {
    let (m, n) = mat_dims(x, "argmax_rows");
    let xd = x.data();
    (0..m)
        .map(|i| {
            let row = &xd[i * n..(i + 1) * n];
            let mut best = 0;
            for j in 1..n {
                if row[j] > row[best] {
                    best = j;
                }
            }
            best
        })
        .collect()
}

fn mat_dims(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(t.shape().ndim(), 2, "{what} must be 2-D, got {}", t.shape());
    (t.shape().dim(0), t.shape().dim(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn([4, 4], 1.0, &mut rng);
        let c = matmul(&a, &Tensor::eye(4));
        assert_close(c.data(), a.data(), 1e-6);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::randn([5, 3], 1.0, &mut rng);
        let b = Tensor::randn([5, 4], 1.0, &mut rng);
        let via_tn = matmul_tn(&a, &b);
        let via_t = matmul(&transpose(&a), &b);
        assert_close(via_tn.data(), via_t.data(), 1e-5);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::randn([5, 3], 1.0, &mut rng);
        let b = Tensor::randn([4, 3], 1.0, &mut rng);
        let via_nt = matmul_nt(&a, &b);
        let via_t = matmul(&a, &transpose(&b));
        assert_close(via_nt.data(), via_t.data(), 1e-5);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_rejects_mismatch() {
        matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Tensor::randn([3, 5], 1.0, &mut rng);
        assert_eq!(transpose(&transpose(&a)), a);
    }

    #[test]
    fn bias_broadcast() {
        let mut x = Tensor::zeros([2, 3]);
        let b = Tensor::from_vec([3], vec![1., 2., 3.]);
        add_row_bias(&mut x, &b);
        assert_eq!(x.data(), &[1., 2., 3., 1., 2., 3.]);
    }

    #[test]
    fn column_sums_are_bias_grad() {
        let x = Tensor::from_vec([2, 3], vec![1., 2., 3., 10., 20., 30.]);
        let s = column_sums(&x);
        assert_eq!(s.data(), &[11., 22., 33.]);
    }

    #[test]
    fn softmax_rows_normalizes() {
        let mut x = Tensor::from_vec([2, 3], vec![1., 2., 3., 1000., 1000., 1000.]);
        softmax_rows(&mut x);
        for i in 0..2 {
            let row_sum: f32 = (0..3).map(|j| x.at2(i, j)).sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
        // Large logits must not overflow (stability check).
        assert!((x.at2(1, 0) - 1.0 / 3.0).abs() < 1e-5);
        // Monotone in logits.
        assert!(x.at2(0, 2) > x.at2(0, 1) && x.at2(0, 1) > x.at2(0, 0));
    }

    #[test]
    fn argmax_ties_to_lowest() {
        let x = Tensor::from_vec([2, 3], vec![5., 5., 1., 0., 2., 2.]);
        assert_eq!(argmax_rows(&x), vec![0, 1]);
    }
}

//! Pooling kernels: 2×2 max pooling (the VGG/ResNet block separator in the
//! paper) and global average pooling (ResNet-style heads).
//!
//! The max-pool batch loop fans out across rayon worker threads (one batch
//! item per work unit, disjoint output and argmax chunks, so results are
//! bitwise identical across thread counts). Eval-mode inference uses
//! [`maxpool2x2_forward_eval_into`], which skips the argmax bookkeeping
//! entirely and writes into a workspace-acquired output.

use crate::chunking::{for_each_chunk, for_each_chunk_zip};
use crate::Tensor;

/// Below this many pooled elements the kernel runs on the calling thread.
const PARALLEL_ELEMENT_THRESHOLD: usize = 16 * 1024;

fn pool_geometry(input: &Tensor) -> (usize, usize, usize, usize, usize, usize) {
    let d = input.shape().dims();
    assert_eq!(
        d.len(),
        4,
        "maxpool input must be 4-D, got {}",
        input.shape()
    );
    let (n_batch, c, h, w) = (d[0], d[1], d[2], d[3]);
    assert!(
        h >= 2 && w >= 2,
        "maxpool needs spatial extent >= 2, got {h}x{w}"
    );
    (n_batch, c, h, w, h / 2, w / 2)
}

/// Max-pools one batch item's `C` planes from `ichunk` into `ochunk`,
/// recording argmax indices (relative to `ibase_abs`) when given.
#[inline]
fn maxpool_item(
    ichunk: &[f32],
    ochunk: &mut [f32],
    mut argmax: Option<(&mut [usize], usize)>,
    c: usize,
    h: usize,
    w: usize,
) {
    let (ho, wo) = (h / 2, w / 2);
    for ch in 0..c {
        let ibase = ch * h * w;
        let obase = ch * ho * wo;
        for oh in 0..ho {
            for ow in 0..wo {
                let i00 = ibase + (2 * oh) * w + 2 * ow;
                let i01 = i00 + 1;
                let i10 = i00 + w;
                let i11 = i10 + 1;
                let mut best_idx = i00;
                let mut best = ichunk[i00];
                for idx in [i01, i10, i11] {
                    if ichunk[idx] > best {
                        best = ichunk[idx];
                        best_idx = idx;
                    }
                }
                ochunk[obase + oh * wo + ow] = best;
                if let Some((am, ibase_abs)) = argmax.as_mut() {
                    am[obase + oh * wo + ow] = *ibase_abs + best_idx;
                }
            }
        }
    }
}

/// Result of a max-pool forward pass: the pooled output plus the linear
/// index (into the input tensor) of each selected maximum, which the
/// backward pass routes gradients through.
#[derive(Debug, Clone)]
pub struct MaxPoolOutput {
    /// Pooled activations `[N, C, H/2, W/2]`.
    pub output: Tensor,
    /// For every output element, the flat input index of its argmax.
    pub argmax: Vec<usize>,
}

/// 2×2, stride-2 max pooling.
///
/// Odd trailing rows/columns are dropped (floor semantics), matching the
/// usual framework behaviour.
///
/// # Panics
///
/// Panics if the input is not 4-D or has spatial extent < 2.
pub fn maxpool2x2_forward(input: &Tensor) -> MaxPoolOutput {
    let (n_batch, c, _, _, ho, wo) = pool_geometry(input);
    let mut out = Tensor::zeros([n_batch, c, ho, wo]);
    let mut argmax = Vec::new();
    maxpool2x2_forward_into(input, &mut out, &mut argmax);
    MaxPoolOutput {
        output: out,
        argmax,
    }
}

/// [`maxpool2x2_forward`] writing into a caller-provided output tensor and
/// argmax buffer (resized in place, reusing its allocation). Every output
/// element is overwritten, so both buffers may be reused across steps —
/// this is the train-loop hot path.
///
/// # Panics
///
/// Panics on the same layout violations as [`maxpool2x2_forward`], or if
/// `out` is not `[N, C, H/2, W/2]`.
pub fn maxpool2x2_forward_into(input: &Tensor, out: &mut Tensor, argmax: &mut Vec<usize>) {
    let (n_batch, c, h, w, ho, wo) = pool_geometry(input);
    assert_eq!(
        out.shape().dims(),
        &[n_batch, c, ho, wo],
        "maxpool output must be [{n_batch}, {c}, {ho}, {wo}]"
    );
    let id = input.data();
    let in_item = c * h * w;
    let out_item = c * ho * wo;
    argmax.clear();
    argmax.resize(n_batch * out_item, 0);
    let pool_one = |n: usize, ochunk: &mut [f32], achunk: &mut [usize]| {
        let ibase_abs = n * in_item;
        maxpool_item(
            &id[ibase_abs..ibase_abs + in_item],
            ochunk,
            Some((achunk, ibase_abs)),
            c,
            h,
            w,
        );
    };
    for_each_chunk_zip(
        out.data_mut(),
        argmax,
        out_item,
        n_batch * out_item >= PARALLEL_ELEMENT_THRESHOLD,
        pool_one,
    );
}

/// Eval-mode 2×2 max pooling into a caller-provided (e.g.
/// workspace-acquired) output, skipping argmax bookkeeping entirely.
///
/// # Panics
///
/// Panics on the same layout violations as [`maxpool2x2_forward`], or if
/// `out` is not `[N, C, H/2, W/2]`.
pub fn maxpool2x2_forward_eval_into(input: &Tensor, out: &mut Tensor) {
    let (n_batch, c, h, w, ho, wo) = pool_geometry(input);
    assert_eq!(
        out.shape().dims(),
        &[n_batch, c, ho, wo],
        "maxpool output must be [{n_batch}, {c}, {ho}, {wo}]"
    );
    let id = input.data();
    let in_item = c * h * w;
    let out_item = c * ho * wo;
    let pool_one = |n: usize, ochunk: &mut [f32]| {
        let ibase_abs = n * in_item;
        maxpool_item(&id[ibase_abs..ibase_abs + in_item], ochunk, None, c, h, w);
    };
    for_each_chunk(
        out.data_mut(),
        out_item,
        n_batch * out_item >= PARALLEL_ELEMENT_THRESHOLD,
        pool_one,
    );
}

/// Backward pass of 2×2 max pooling: routes each upstream gradient to the
/// input position that produced the maximum.
///
/// # Panics
///
/// Panics if `grad_out` length does not match `argmax` length.
pub fn maxpool2x2_backward(grad_out: &Tensor, argmax: &[usize], input_shape: &[usize]) -> Tensor {
    let mut gin = Tensor::zeros(input_shape.to_vec());
    maxpool2x2_backward_into(grad_out, argmax, &mut gin);
    gin
}

/// [`maxpool2x2_backward`] writing into a caller-provided (e.g.
/// workspace-acquired) `[N, C, H, W]` gradient; every element is
/// overwritten (zeroed, then scattered into). The batch loop fans out
/// across rayon workers — each item's argmax indices stay inside that
/// item's slice, so the scatter regions are disjoint and results are
/// bitwise identical across thread counts.
///
/// # Panics
///
/// Panics if shapes or the argmax length are inconsistent.
pub fn maxpool2x2_backward_into(grad_out: &Tensor, argmax: &[usize], gin: &mut Tensor) {
    assert_eq!(
        grad_out.len(),
        argmax.len(),
        "grad_out/argmax length mismatch: {} vs {}",
        grad_out.len(),
        argmax.len()
    );
    let gdims = gin.shape().dims();
    assert_eq!(gdims.len(), 4, "maxpool input grad must be 4-D");
    let odims = grad_out.shape().dims();
    assert_eq!(odims.len(), 4, "maxpool grad_out must be 4-D");
    let n_batch = gdims[0];
    assert_eq!(odims[0], n_batch, "maxpool grad batch mismatch");
    let in_item = gdims[1] * gdims[2] * gdims[3];
    let out_item = odims[1] * odims[2] * odims[3];
    let gd = grad_out.data();
    for_each_chunk(
        gin.data_mut(),
        in_item,
        n_batch * out_item >= PARALLEL_ELEMENT_THRESHOLD,
        |n, gchunk| {
            gchunk.fill(0.0);
            let obase = n * out_item;
            let ibase = n * in_item;
            for (g, &idx) in gd[obase..obase + out_item]
                .iter()
                .zip(&argmax[obase..obase + out_item])
            {
                gchunk[idx - ibase] += g;
            }
        },
    );
}

/// Global average pooling: `[N, C, H, W] -> [N, C]`.
///
/// # Panics
///
/// Panics if the input is not 4-D.
pub fn global_avg_pool_forward(input: &Tensor) -> Tensor {
    let d = input.shape().dims();
    assert_eq!(d.len(), 4, "gap input must be 4-D, got {}", input.shape());
    let (n_batch, c) = (d[0], d[1]);
    let mut out = Tensor::zeros([n_batch, c]);
    global_avg_pool_forward_into(input, &mut out);
    out
}

/// [`global_avg_pool_forward`] writing into a caller-provided output.
///
/// # Panics
///
/// Panics if the input is not 4-D or `out` is not `[N, C]`.
pub fn global_avg_pool_forward_into(input: &Tensor, out: &mut Tensor) {
    let d = input.shape().dims();
    assert_eq!(d.len(), 4, "gap input must be 4-D, got {}", input.shape());
    let (n_batch, c, h, w) = (d[0], d[1], d[2], d[3]);
    assert_eq!(
        out.shape().dims(),
        &[n_batch, c],
        "gap output must be [{n_batch}, {c}]"
    );
    // Zero spatial extent is legal (zero-extent shapes are allowed for
    // degenerate serving inputs); the mean of an empty window is defined
    // as 0 rather than 0 * inf = NaN.
    let inv = if h * w == 0 {
        0.0
    } else {
        1.0 / (h * w) as f32
    };
    let id = input.data();
    let od = out.data_mut();
    for n in 0..n_batch {
        for ch in 0..c {
            let ibase = (n * c + ch) * h * w;
            od[n * c + ch] = id[ibase..ibase + h * w].iter().sum::<f32>() * inv;
        }
    }
}

/// Backward pass of global average pooling: spreads each upstream gradient
/// uniformly over the pooled window.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn global_avg_pool_backward(grad_out: &Tensor, input_shape: &[usize]) -> Tensor {
    let mut gin = Tensor::zeros(input_shape.to_vec());
    global_avg_pool_backward_into(grad_out, &mut gin);
    gin
}

/// [`global_avg_pool_backward`] writing into a caller-provided (e.g.
/// workspace-acquired) `[N, C, H, W]` gradient; every element is
/// overwritten. The batch loop fans out across rayon workers.
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn global_avg_pool_backward_into(grad_out: &Tensor, gin: &mut Tensor) {
    let gshape = *gin.shape();
    let gdims = gshape.dims();
    assert_eq!(gdims.len(), 4, "gap input grad must be 4-D");
    let (n_batch, c, h, w) = (gdims[0], gdims[1], gdims[2], gdims[3]);
    assert_eq!(
        grad_out.shape().dims(),
        &[n_batch, c],
        "gap grad_out shape mismatch"
    );
    let inv = 1.0 / (h * w) as f32;
    let gd = grad_out.data();
    let item = c * h * w;
    for_each_chunk(
        gin.data_mut(),
        item,
        n_batch * item >= PARALLEL_ELEMENT_THRESHOLD,
        |n, gchunk| {
            for ch in 0..c {
                let g = gd[n * c + ch] * inv;
                gchunk[ch * h * w..(ch + 1) * h * w]
                    .iter_mut()
                    .for_each(|x| *x = g);
            }
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    #[test]
    fn maxpool_picks_maximum() {
        let input = Tensor::from_vec(
            [1, 1, 4, 4],
            vec![
                1., 2., 5., 6., //
                3., 4., 7., 8., //
                9., 10., 13., 14., //
                11., 12., 15., 16.,
            ],
        );
        let MaxPoolOutput { output, argmax } = maxpool2x2_forward(&input);
        assert_eq!(output.data(), &[4., 8., 12., 16.]);
        assert_eq!(argmax, vec![5, 7, 13, 15]);
    }

    #[test]
    fn eval_into_matches_train_path() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let input = Tensor::randn([3, 2, 6, 8], 1.0, &mut StdRng::seed_from_u64(5));
        let full = maxpool2x2_forward(&input);
        let mut out = Tensor::zeros([3, 2, 3, 4]);
        maxpool2x2_forward_eval_into(&input, &mut out);
        assert_eq!(out.data(), full.output.data());
    }

    #[test]
    fn maxpool_floor_semantics_on_odd() {
        let input = Tensor::ones([1, 1, 5, 5]);
        let out = maxpool2x2_forward(&input);
        assert_eq!(out.output.shape().dims(), &[1, 1, 2, 2]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let input = Tensor::from_vec([1, 1, 2, 2], vec![1., 9., 3., 4.]);
        let fwd = maxpool2x2_forward(&input);
        let gout = Tensor::from_vec([1, 1, 1, 1], vec![5.0]);
        let gin = maxpool2x2_backward(&gout, &fwd.argmax, &[1, 1, 2, 2]);
        assert_eq!(gin.data(), &[0., 5., 0., 0.]);
    }

    #[test]
    fn gap_forward_and_backward() {
        let input = Tensor::from_vec([1, 2, 2, 2], vec![1., 2., 3., 4., 10., 10., 10., 10.]);
        let out = global_avg_pool_forward(&input);
        assert_close(out.data(), &[2.5, 10.0], 1e-6);
        let gout = Tensor::from_vec([1, 2], vec![4.0, 8.0]);
        let gin = global_avg_pool_backward(&gout, &[1, 2, 2, 2]);
        assert_close(gin.data(), &[1., 1., 1., 1., 2., 2., 2., 2.], 1e-6);
    }

    #[test]
    fn gap_gradient_check() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut input = Tensor::randn([1, 2, 3, 3], 1.0, &mut StdRng::seed_from_u64(1));
        let loss = |x: &Tensor| -> f32 {
            global_avg_pool_forward(x)
                .data()
                .iter()
                .map(|v| v * v)
                .sum::<f32>()
                * 0.5
        };
        let out = global_avg_pool_forward(&input);
        let gin = global_avg_pool_backward(&out, &[1, 2, 3, 3]);
        let eps = 1e-2;
        for idx in [0usize, 8, 17] {
            let orig = input[idx];
            input[idx] = orig + eps;
            let lp = loss(&input);
            input[idx] = orig - eps;
            let lm = loss(&input);
            input[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - gin[idx]).abs() < 1e-3);
        }
    }
}

//! Low-precision weight encodings: IEEE 754 half floats (`f16`) and
//! symmetric 8-bit integers (`i8`) with a per-tensor scale.
//!
//! These are **storage** encodings: the serving stack quantizes at save
//! time and dequantizes back into `f32` tensors at load time, so every
//! kernel, engine plan, and server downstream runs unchanged — what
//! shrinks is the artifact on disk, the cold-start byte copy, and the
//! format's cache/transfer footprint. `mn-nn`'s `MNQ1` weight blob is the
//! consumer (see `mn_nn::io`).
//!
//! ## Encodings
//!
//! * **`f16`** — IEEE 754 binary16, round-to-nearest-even, bit-level
//!   conversion (no nightly `f16` primitive). Finite values beyond the
//!   half range (|x| > 65504) **saturate** to ±`F16_MAX` rather than
//!   rounding to infinity: a finite network must never dequantize to
//!   non-finite weights. Relative round-trip error for normal-range
//!   values is ≤ 2⁻¹¹; subnormal-range values round within 2⁻²⁵
//!   absolute.
//! * **`i8`** — symmetric per-tensor linear quantization:
//!   `scale = max|x| / 127`, `q = round(x / scale)` clamped to
//!   `[-127, 127]` (−128 unused, keeping the grid symmetric), dequantized
//!   as `q · scale`. Absolute round-trip error is ≤ `scale / 2` (plus
//!   one f32 rounding).
//!
//! Both encoders **reject non-finite input** with a typed
//! [`QuantError::NonFinite`]: NaN/Inf cannot be represented faithfully at
//! lower precision (and a NaN weight is corrupt anyway), so the failure
//! surfaces at save time, not as garbage predictions after a load.

use std::fmt;

/// Largest finite `f16` value (what out-of-range finite floats saturate
/// to).
pub const F16_MAX: f32 = 65504.0;

/// A value that cannot be quantized.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum QuantError {
    /// The input contains NaN or ±Inf at flat index `index`.
    NonFinite {
        /// Flat index of the offending element.
        index: usize,
        /// The offending value (NaN or ±Inf).
        value: f32,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::NonFinite { index, value } => {
                write!(
                    f,
                    "non-finite value {value} at index {index} cannot be quantized"
                )
            }
        }
    }
}

impl std::error::Error for QuantError {}

/// Returns the flat index and value of the first non-finite element, if
/// any — the save-time gate both encoders share.
pub fn find_non_finite(src: &[f32]) -> Option<(usize, f32)> {
    src.iter()
        .enumerate()
        .find(|(_, v)| !v.is_finite())
        .map(|(i, &v)| (i, v))
}

/// Converts one `f32` to IEEE 754 binary16 bits, round-to-nearest-even.
///
/// Finite overflow saturates to ±[`F16_MAX`]; NaN and ±Inf map to the
/// corresponding half-precision specials (callers that must stay finite
/// reject them first — see [`quantize_f16`]).
pub fn f16_bits_from_f32(value: f32) -> u16 {
    let x = value.to_bits();
    let sign = ((x >> 16) & 0x8000) as u16;
    let exp = ((x >> 23) & 0xFF) as i32;
    let man = x & 0x007F_FFFF;
    if exp == 0xFF {
        // Inf / NaN: preserve the class (quiet any NaN payload).
        return if man == 0 {
            sign | 0x7C00
        } else {
            sign | 0x7E00
        };
    }
    let half_exp = exp - 127 + 15;
    if half_exp >= 0x1F {
        // Finite overflow: saturate, never round to infinity.
        return sign | 0x7BFF;
    }
    if half_exp <= 0 {
        // Result is half-subnormal (or zero). The significand (with its
        // implicit bit) shifts right by `14 - half_exp`; values below
        // half the smallest subnormal round to zero.
        let shift = (14 - half_exp) as u32;
        if shift > 24 {
            return sign;
        }
        let full_man = man | 0x0080_0000;
        let half_man = (full_man >> shift) as u16;
        let round_bit = 1u32 << (shift - 1);
        // Round to nearest even: round up when the round bit is set and
        // either a lower (sticky) bit or the result's LSB is set.
        if (full_man & round_bit) != 0 && (full_man & (3 * round_bit - 1)) != 0 {
            return sign | (half_man + 1); // may carry into the exponent: exact
        }
        return sign | half_man;
    }
    let half = sign | ((half_exp as u16) << 10) | ((man >> 13) as u16);
    let round_bit = 0x0000_1000u32; // bit 12: first dropped mantissa bit
    let rounded = if (man & round_bit) != 0 && (man & (3 * round_bit - 1)) != 0 {
        half + 1 // mantissa carry into the exponent is exact rounding
    } else {
        half
    };
    if (rounded & 0x7C00) == 0x7C00 {
        // Rounding carried past the largest finite half: saturate.
        return sign | 0x7BFF;
    }
    rounded
}

/// Converts IEEE 754 binary16 bits back to `f32` (exact — every half
/// value is representable in single precision).
pub fn f32_from_f16_bits(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let man = (h & 0x03FF) as u32;
    if exp == 0x1F {
        // Inf / NaN.
        let man32 = if man == 0 { 0 } else { 0x0040_0000 };
        return f32::from_bits(sign | 0x7F80_0000 | man32);
    }
    if exp == 0 {
        if man == 0 {
            return f32::from_bits(sign); // ±0
        }
        // Subnormal: value = man × 2⁻²⁴, exact in f32.
        let magnitude = man as f32 * f32::from_bits(0x3380_0000); // 2^-24
        return if sign != 0 { -magnitude } else { magnitude };
    }
    f32::from_bits(sign | ((exp + 112) << 23) | (man << 13))
}

/// Encodes a tensor's elements as `f16` bits.
///
/// # Errors
///
/// [`QuantError::NonFinite`] if any element is NaN or ±Inf.
pub fn quantize_f16(src: &[f32]) -> Result<Vec<u16>, QuantError> {
    if let Some((index, value)) = find_non_finite(src) {
        return Err(QuantError::NonFinite { index, value });
    }
    Ok(src.iter().map(|&v| f16_bits_from_f32(v)).collect())
}

/// Decodes `f16` bits back into `f32` values.
pub fn dequantize_f16(src: &[u16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "f16 decode length mismatch");
    for (d, &h) in dst.iter_mut().zip(src) {
        *d = f32_from_f16_bits(h);
    }
}

/// Encodes a tensor with symmetric per-tensor `i8` quantization,
/// returning `(scale, codes)`. An all-zero tensor encodes with
/// `scale = 1` (every code 0).
///
/// # Errors
///
/// [`QuantError::NonFinite`] if any element is NaN or ±Inf.
pub fn quantize_i8(src: &[f32]) -> Result<(f32, Vec<i8>), QuantError> {
    if let Some((index, value)) = find_non_finite(src) {
        return Err(QuantError::NonFinite { index, value });
    }
    let max_abs = src.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
    let codes = src
        .iter()
        .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
        .collect();
    Ok((scale, codes))
}

/// Decodes symmetric `i8` codes back into `f32` values (`q · scale`).
pub fn dequantize_i8(scale: f32, src: &[i8], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "i8 decode length mismatch");
    for (d, &q) in dst.iter_mut().zip(src) {
        *d = q as f32 * scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact pinned conversions: zero, one, the largest finite half, the
    /// smallest subnormal, and classic halfway cases.
    #[test]
    fn f16_pinned_values() {
        assert_eq!(f16_bits_from_f32(0.0), 0x0000);
        assert_eq!(f16_bits_from_f32(-0.0), 0x8000);
        assert_eq!(f16_bits_from_f32(1.0), 0x3C00);
        assert_eq!(f16_bits_from_f32(-2.0), 0xC000);
        assert_eq!(f16_bits_from_f32(65504.0), 0x7BFF);
        // Smallest half subnormal: 2^-24.
        assert_eq!(f16_bits_from_f32(5.960_464_5e-8), 0x0001);
        assert_eq!(f32_from_f16_bits(0x0001), 5.960_464_5e-8);
        // Below half of the smallest subnormal rounds to zero; the exact
        // midpoint 2^-25 ties to even (zero).
        assert_eq!(f16_bits_from_f32(2.0f32.powi(-26)), 0x0000);
        assert_eq!(f16_bits_from_f32(2.0f32.powi(-25)), 0x0000);
        // Just above the midpoint rounds up to the smallest subnormal.
        assert_eq!(f16_bits_from_f32(3.0e-8), 0x0001);
        // Round-to-nearest-even on a normal midpoint: 1 + 2^-11 is
        // exactly between 1.0 and the next half (1 + 2^-10); even wins.
        assert_eq!(f16_bits_from_f32(1.0 + 2.0f32.powi(-11)), 0x3C00);
        // 1 + 3·2^-11 is between 1+2^-10 and 1+2^-9: ties to even (0x3C02).
        assert_eq!(f16_bits_from_f32(1.0 + 3.0 * 2.0f32.powi(-11)), 0x3C02);
    }

    #[test]
    fn f16_saturates_finite_overflow() {
        for v in [65520.0f32, 1.0e6, 3.4e38, f32::MAX] {
            assert_eq!(f16_bits_from_f32(v), 0x7BFF, "overflow must saturate: {v}");
            assert_eq!(f16_bits_from_f32(-v), 0xFBFF);
        }
        assert_eq!(f32_from_f16_bits(0x7BFF), 65504.0);
    }

    #[test]
    fn f16_specials_map_to_half_specials() {
        assert_eq!(f16_bits_from_f32(f32::INFINITY), 0x7C00);
        assert_eq!(f16_bits_from_f32(f32::NEG_INFINITY), 0xFC00);
        let nan = f16_bits_from_f32(f32::NAN);
        assert_eq!(nan & 0x7C00, 0x7C00);
        assert_ne!(nan & 0x03FF, 0);
        assert!(f32_from_f16_bits(0x7E00).is_nan());
        assert_eq!(f32_from_f16_bits(0x7C00), f32::INFINITY);
    }

    /// Every one of the 63488 non-NaN half bit patterns survives a
    /// decode → encode round trip exactly (decode is exact, and encoding
    /// an exactly-representable value must not move it).
    #[test]
    fn f16_decode_encode_is_identity_on_all_finite_halves() {
        for bits in 0u16..=0xFFFF {
            if (bits & 0x7C00) == 0x7C00 {
                continue; // Inf/NaN: encode quiets payloads by design
            }
            let back = f16_bits_from_f32(f32_from_f16_bits(bits));
            assert_eq!(
                back, bits,
                "half bits {bits:#06x} moved through decode/encode"
            );
        }
    }

    #[test]
    fn quantize_rejects_non_finite_with_index() {
        let bad = [1.0, f32::NAN, 3.0];
        match quantize_f16(&bad) {
            Err(QuantError::NonFinite { index: 1, value }) => assert!(value.is_nan()),
            other => panic!("expected NonFinite at 1, got {other:?}"),
        }
        match quantize_i8(&[0.0, 1.0, f32::NEG_INFINITY]) {
            Err(QuantError::NonFinite { index: 2, value }) => {
                assert_eq!(value, f32::NEG_INFINITY)
            }
            other => panic!("expected NonFinite at 2, got {other:?}"),
        }
    }

    #[test]
    fn i8_round_trip_known_values() {
        // max_abs = 127 makes scale exactly 1.0, so every code is exact.
        let src = [0.0f32, 127.0, -127.0, 63.5, -0.4];
        let (scale, codes) = quantize_i8(&src).unwrap();
        assert_eq!(scale, 1.0);
        assert_eq!(codes, vec![0, 127, -127, 64, 0i8]); // 63.5 rounds away from zero
        let mut back = [0.0f32; 5];
        dequantize_i8(scale, &codes, &mut back);
        for (b, s) in back.iter().zip(&src) {
            assert!((b - s).abs() <= scale * 0.5001, "{b} vs {s}");
        }
    }

    #[test]
    fn i8_all_zero_tensor_uses_unit_scale() {
        let (scale, codes) = quantize_i8(&[0.0, -0.0, 0.0]).unwrap();
        assert_eq!(scale, 1.0);
        assert!(codes.iter().all(|&q| q == 0));
    }

    #[test]
    fn i8_extremes_hit_full_range_exactly() {
        let (scale, codes) = quantize_i8(&[3.5, -3.5, 0.0]).unwrap();
        assert_eq!(codes[0], 127);
        assert_eq!(codes[1], -127);
        let mut back = [0.0f32; 3];
        dequantize_i8(scale, &codes, &mut back);
        // ±max round-trip exactly: scale · 127 == max_abs up to one ulp.
        assert!((back[0] - 3.5).abs() <= 3.5 * 1e-6);
        assert!((back[1] + 3.5).abs() <= 3.5 * 1e-6);
    }
}

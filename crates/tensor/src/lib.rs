//! # mn-tensor
//!
//! Dense `f32` tensor substrate for the MotherNets reproduction.
//!
//! This crate provides the numerical kernels that every other crate in the
//! workspace builds on: an owned, row-major [`Tensor`] type plus the forward
//! and backward kernels needed to train the convolutional and fully-connected
//! networks of the paper — matrix multiplication ([`ops`]), direct 2-D
//! convolution ([`conv`]), max/average pooling ([`pool`]) and weight
//! initializers ([`init`]).
//!
//! The crate is deliberately small and dependency-light: it implements only
//! what the paper's networks need (stride-1 same-padding convolutions,
//! 2×2 max pooling, dense layers), rather than a general einsum engine.
//! The matrix products are cache-blocked and register-tiled (see
//! [`ops`]'s module docs for the layout), the batch loops of convolution,
//! im2col and pooling fan out across rayon worker threads (through the
//! shared [`chunking`] dispatcher, which higher layers reuse for their
//! own batch loops), and the [`Workspace`] arena lets callers run
//! repeated forward **and backward** passes without reallocating
//! activations, gradients, or im2col scratch — [`Shape`] stores its
//! extents inline so even tensor construction stays off the allocator.
//! Convolution's backward pass lowers onto the same GEMM core as its
//! forward pass (col2im input gradient, im2col-transposed weight
//! gradient — see [`im2col`]). All parallel kernels are
//! bitwise-deterministic across thread counts: work is only ever split
//! over disjoint output regions whose per-element accumulation order is
//! fixed. The hottest inner loops (the GEMM micro-kernel, axpy, the
//! fused SGD update) additionally have explicit AVX2 implementations
//! behind a runtime-dispatch table ([`simd`]) that are pinned bitwise
//! identical to the portable-scalar path, and [`quant`] provides the
//! `f16`/`i8` storage encodings backing the quantized weight artifacts.
//! The pre-optimization kernels survive as [`ops::reference`] (and
//! [`conv::conv2d_forward_reference`], plus the direct backward loops in
//! [`conv`]) as the property-test ground truth.
//!
//! ## Conventions
//!
//! * Image batches are stored `[N, C, H, W]` (NCHW).
//! * Matrices are stored `[rows, cols]`, row-major.
//! * Shape mismatches **panic** with a descriptive message; this crate sits
//!   below the public API surface and treats shape errors as programmer bugs
//!   (the higher-level crates validate user input and return `Result`s).
//!
//! ## Example
//!
//! ```
//! use mn_tensor::{Tensor, ops};
//!
//! let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
//! let b = Tensor::eye(3);
//! let c = ops::matmul(&a, &b);
//! assert_eq!(c.data(), a.data());
//! ```

pub mod chunking;
pub mod conv;
pub mod im2col;
pub mod init;
pub mod ops;
pub mod pool;
pub mod quant;
pub mod shape;
pub mod simd;
pub mod tensor;
pub mod workspace;

pub use shape::Shape;
pub use tensor::Tensor;
pub use workspace::Workspace;

/// Numeric tolerance used throughout the workspace when asserting that a
/// function-preserving transformation left network outputs unchanged.
pub const PRESERVATION_TOLERANCE: f32 = 1e-4;

/// Asserts that two slices are element-wise close within `tol`.
///
/// # Panics
///
/// Panics if lengths differ or any pair of elements differs by more than
/// `tol`, reporting the first offending index.
pub fn assert_close(a: &[f32], b: &[f32], tol: f32) {
    assert_eq!(
        a.len(),
        b.len(),
        "length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            (x - y).abs() <= tol,
            "elements differ at index {i}: {x} vs {y} (tol {tol})"
        );
    }
}

/// Returns the maximum absolute element-wise difference between two slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(
        a.len(),
        b.len(),
        "length mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assert_close_accepts_equal() {
        assert_close(&[1.0, 2.0], &[1.0, 2.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "elements differ")]
    fn assert_close_rejects_distant() {
        assert_close(&[1.0], &[2.0], 0.5);
    }

    #[test]
    fn max_abs_diff_computes() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[1.5, 4.0]), 1.0);
    }
}

//! Weight initializers.
//!
//! The paper initializes weights "by sampling from a gaussian distribution
//! with zero mean and unit standard deviation" (§3). A literal unit-variance
//! Gaussian saturates any non-trivially deep network, so — as recorded in
//! DESIGN.md — we keep the Gaussian family but use He/Kaiming fan-in scaling,
//! the standard choice for ReLU networks. The sampler is a hand-rolled
//! Box–Muller transform so the crate needs no distribution dependency.

use rand::Rng;

/// Fills `data` with i.i.d. Gaussian samples of the given `mean` and `std`
/// using the Box–Muller transform.
///
/// `std == 0.0` fills with `mean` exactly (useful for deterministic tests).
pub fn fill_gaussian<R: Rng>(data: &mut [f32], mean: f32, std: f32, rng: &mut R) {
    if std == 0.0 {
        data.iter_mut().for_each(|x| *x = mean);
        return;
    }
    let mut i = 0;
    while i < data.len() {
        // Box–Muller: two uniforms -> two independent standard normals.
        let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data[i] = mean + std * r * theta.cos();
        i += 1;
        if i < data.len() {
            data[i] = mean + std * r * theta.sin();
            i += 1;
        }
    }
}

/// He/Kaiming standard deviation for a layer with the given fan-in:
/// `sqrt(2 / fan_in)`. Appropriate for ReLU activations.
///
/// # Panics
///
/// Panics if `fan_in` is zero.
pub fn he_std(fan_in: usize) -> f32 {
    assert!(fan_in > 0, "fan_in must be positive");
    (2.0 / fan_in as f32).sqrt()
}

/// Fan-in of a convolutional kernel: `in_channels * k_h * k_w`.
pub fn conv_fan_in(in_channels: usize, kernel: usize) -> usize {
    in_channels * kernel * kernel
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut data = vec![0.0f32; 20_000];
        fill_gaussian(&mut data, 1.0, 0.5, &mut rng);
        let mean = data.iter().sum::<f32>() / data.len() as f32;
        let var = data.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / data.len() as f32;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn zero_std_is_constant() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut data = vec![0.0f32; 5];
        fill_gaussian(&mut data, 3.0, 0.0, &mut rng);
        assert!(data.iter().all(|&x| x == 3.0));
    }

    #[test]
    fn odd_length_filled() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut data = vec![0.0f32; 7];
        fill_gaussian(&mut data, 0.0, 1.0, &mut rng);
        // All elements written (probability of an exact 0.0 sample is ~0).
        assert!(data.iter().all(|&x| x != 0.0));
    }

    #[test]
    fn he_scaling() {
        assert!((he_std(2) - 1.0).abs() < 1e-6);
        assert!((he_std(8) - 0.5).abs() < 1e-6);
        assert_eq!(conv_fan_in(3, 3), 27);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn he_rejects_zero_fan_in() {
        he_std(0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = vec![0.0f32; 16];
        let mut b = vec![0.0f32; 16];
        fill_gaussian(&mut a, 0.0, 1.0, &mut StdRng::seed_from_u64(9));
        fill_gaussian(&mut b, 0.0, 1.0, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}

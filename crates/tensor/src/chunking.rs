//! Shared sequential-vs-parallel dispatch for kernels that split their
//! output into fixed-size disjoint chunks (one batch item, plane, or
//! filter per chunk).
//!
//! Centralizing the dispatch keeps every kernel's policy identical:
//! degenerate work (empty output or zero-sized chunks, legal now that
//! shapes may have zero extents) is a no-op, single-chunk or
//! not-worthwhile work runs inline, and everything else fans out across
//! rayon workers. Chunk boundaries never depend on the thread count, so
//! either path produces bitwise-identical results.

use rayon::prelude::*;

/// Runs `f(chunk_index, chunk)` over fixed-size chunks of `data`.
///
/// `parallel_worthwhile` is the caller's cost estimate (e.g. "enough
/// multiply-adds to amortize a worker spawn"); the helper additionally
/// requires more than one chunk and more than one available thread.
pub(crate) fn for_each_chunk(
    data: &mut [f32],
    chunk: usize,
    parallel_worthwhile: bool,
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    if data.is_empty() || chunk == 0 {
        return;
    }
    let items = data.len().div_ceil(chunk);
    if items <= 1 || !parallel_worthwhile || rayon::current_num_threads() <= 1 {
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            f(i, c);
        }
    } else {
        data.par_chunks_mut(chunk)
            .enumerate()
            .for_each(|(i, c)| f(i, c));
    }
}

/// [`for_each_chunk`] over two equally-chunked buffers (an output and its
/// argmax companion).
pub(crate) fn for_each_chunk_zip(
    data: &mut [f32],
    aux: &mut [usize],
    chunk: usize,
    parallel_worthwhile: bool,
    f: impl Fn(usize, &mut [f32], &mut [usize]) + Sync,
) {
    if data.is_empty() || chunk == 0 {
        return;
    }
    let items = data.len().div_ceil(chunk);
    if items <= 1 || !parallel_worthwhile || rayon::current_num_threads() <= 1 {
        for (i, (c, a)) in data
            .chunks_mut(chunk)
            .zip(aux.chunks_mut(chunk))
            .enumerate()
        {
            f(i, c, a);
        }
    } else {
        data.par_chunks_mut(chunk)
            .zip(aux.par_chunks_mut(chunk))
            .enumerate()
            .for_each(|(i, (c, a))| f(i, c, a));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_data_and_zero_chunk_are_no_ops() {
        for_each_chunk(&mut [], 4, true, |_, _| panic!("must not run"));
        let mut data = [1.0f32; 4];
        for_each_chunk(&mut data, 0, true, |_, _| panic!("must not run"));
        for_each_chunk_zip(&mut [], &mut [], 4, true, |_, _, _| panic!("must not run"));
    }

    #[test]
    fn covers_all_chunks_in_order() {
        let mut data = [0.0f32; 10];
        for_each_chunk(&mut data, 4, true, |i, c| {
            c.iter_mut().for_each(|v| *v = i as f32)
        });
        assert_eq!(data, [0., 0., 0., 0., 1., 1., 1., 1., 2., 2.]);
    }

    #[test]
    fn zip_pairs_aux_chunks() {
        let mut data = [0.0f32; 6];
        let mut aux = [0usize; 6];
        for_each_chunk_zip(&mut data, &mut aux, 3, false, |i, c, a| {
            c.iter_mut().for_each(|v| *v = i as f32);
            a.iter_mut().for_each(|v| *v = 10 * i);
        });
        assert_eq!(data, [0., 0., 0., 1., 1., 1.]);
        assert_eq!(aux, [0, 0, 0, 10, 10, 10]);
    }
}

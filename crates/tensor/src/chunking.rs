//! Shared sequential-vs-parallel dispatch for kernels that split their
//! output into fixed-size disjoint chunks (one batch item, plane, or
//! filter per chunk).
//!
//! Centralizing the dispatch keeps every kernel's policy identical:
//! degenerate work (empty output or zero-sized chunks, legal now that
//! shapes may have zero extents) is a no-op, single-chunk or
//! not-worthwhile work runs inline, and everything else fans out across
//! rayon workers. Chunk boundaries never depend on the thread count, so
//! either path produces bitwise-identical results.
//!
//! The module is public: the `mn-nn` training layer drives its own batch
//! loops (batch-norm backward, the fused SGD step) through the same
//! dispatcher, so every parallel loop in the workspace shares one policy.

use rayon::prelude::*;

/// Runs `f(chunk_index, chunk)` over fixed-size chunks of `data`.
///
/// `parallel_worthwhile` is the caller's cost estimate (e.g. "enough
/// multiply-adds to amortize a worker spawn"); the helper additionally
/// requires more than one chunk and more than one available thread.
pub fn for_each_chunk(
    data: &mut [f32],
    chunk: usize,
    parallel_worthwhile: bool,
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    if data.is_empty() || chunk == 0 {
        return;
    }
    let items = data.len().div_ceil(chunk);
    if items <= 1 || !parallel_worthwhile || rayon::current_num_threads() <= 1 {
        for (i, c) in data.chunks_mut(chunk).enumerate() {
            f(i, c);
        }
    } else {
        data.par_chunks_mut(chunk)
            .enumerate()
            .for_each(|(i, c)| f(i, c));
    }
}

/// [`for_each_chunk`] over two equally-chunked buffers (an output and its
/// argmax companion).
pub fn for_each_chunk_zip(
    data: &mut [f32],
    aux: &mut [usize],
    chunk: usize,
    parallel_worthwhile: bool,
    f: impl Fn(usize, &mut [f32], &mut [usize]) + Sync,
) {
    if data.is_empty() || chunk == 0 {
        return;
    }
    let items = data.len().div_ceil(chunk);
    if items <= 1 || !parallel_worthwhile || rayon::current_num_threads() <= 1 {
        for (i, (c, a)) in data
            .chunks_mut(chunk)
            .zip(aux.chunks_mut(chunk))
            .enumerate()
        {
            f(i, c, a);
        }
    } else {
        data.par_chunks_mut(chunk)
            .zip(aux.par_chunks_mut(chunk))
            .enumerate()
            .for_each(|(i, (c, a))| f(i, c, a));
    }
}

/// [`for_each_chunk`] over three equally-chunked `f32` buffers — the fused
/// SGD step's split (parameter values, velocity, gradients). All three
/// must have equal lengths so the chunk triples stay aligned.
///
/// # Panics
///
/// Panics if the buffer lengths differ.
pub fn for_each_chunk3(
    a: &mut [f32],
    b: &mut [f32],
    c: &mut [f32],
    chunk: usize,
    parallel_worthwhile: bool,
    f: impl Fn(usize, &mut [f32], &mut [f32], &mut [f32]) + Sync,
) {
    assert_eq!(a.len(), b.len(), "chunk3 length mismatch");
    assert_eq!(a.len(), c.len(), "chunk3 length mismatch");
    if a.is_empty() || chunk == 0 {
        return;
    }
    let items = a.len().div_ceil(chunk);
    if items <= 1 || !parallel_worthwhile || rayon::current_num_threads() <= 1 {
        for (i, ((ca, cb), cc)) in a
            .chunks_mut(chunk)
            .zip(b.chunks_mut(chunk))
            .zip(c.chunks_mut(chunk))
            .enumerate()
        {
            f(i, ca, cb, cc);
        }
    } else {
        a.par_chunks_mut(chunk)
            .zip(b.par_chunks_mut(chunk))
            .zip(c.par_chunks_mut(chunk))
            .enumerate()
            .for_each(|(i, ((ca, cb), cc))| f(i, ca, cb, cc));
    }
}

/// Splits `0..total` into at most `shards` contiguous, non-empty,
/// near-equal ranges (the first `total % shards` ranges are one longer).
///
/// This is the batch-sharding rule of the ensemble engine's data-parallel
/// execution plan. Boundaries depend only on `(total, shards)` — never on
/// the thread count or schedule — and concatenating the ranges in order
/// reproduces `0..total` exactly, so any per-item-deterministic kernel
/// produces bitwise-identical results under any sharding.
///
/// Degenerate inputs shrink gracefully: more shards than items yields one
/// range per item, and `total == 0` or `shards == 0` yields no ranges.
pub fn shard_ranges(total: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    if total == 0 || shards == 0 {
        return Vec::new();
    }
    let shards = shards.min(total);
    let base = total / shards;
    let extra = total % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_data_and_zero_chunk_are_no_ops() {
        for_each_chunk(&mut [], 4, true, |_, _| panic!("must not run"));
        let mut data = [1.0f32; 4];
        for_each_chunk(&mut data, 0, true, |_, _| panic!("must not run"));
        for_each_chunk_zip(&mut [], &mut [], 4, true, |_, _, _| panic!("must not run"));
        for_each_chunk3(&mut [], &mut [], &mut [], 4, true, |_, _, _, _| {
            panic!("must not run")
        });
    }

    #[test]
    fn covers_all_chunks_in_order() {
        let mut data = [0.0f32; 10];
        for_each_chunk(&mut data, 4, true, |i, c| {
            c.iter_mut().for_each(|v| *v = i as f32)
        });
        assert_eq!(data, [0., 0., 0., 0., 1., 1., 1., 1., 2., 2.]);
    }

    #[test]
    fn zip_pairs_aux_chunks() {
        let mut data = [0.0f32; 6];
        let mut aux = [0usize; 6];
        for_each_chunk_zip(&mut data, &mut aux, 3, false, |i, c, a| {
            c.iter_mut().for_each(|v| *v = i as f32);
            a.iter_mut().for_each(|v| *v = 10 * i);
        });
        assert_eq!(data, [0., 0., 0., 1., 1., 1.]);
        assert_eq!(aux, [0, 0, 0, 10, 10, 10]);
    }

    #[test]
    fn chunk3_aligns_all_three_buffers() {
        let mut a = [0.0f32; 7];
        let mut b = [0.0f32; 7];
        let mut c = [0.0f32; 7];
        for_each_chunk3(&mut a, &mut b, &mut c, 3, true, |i, ca, cb, cc| {
            ca.iter_mut().for_each(|v| *v = i as f32);
            cb.iter_mut().for_each(|v| *v = 10.0 * i as f32);
            cc.iter_mut().for_each(|v| *v = 100.0 * i as f32);
        });
        assert_eq!(a, [0., 0., 0., 1., 1., 1., 2.]);
        assert_eq!(b, [0., 0., 0., 10., 10., 10., 20.]);
        assert_eq!(c, [0., 0., 0., 100., 100., 100., 200.]);
    }

    #[test]
    fn shard_ranges_partition_exactly() {
        for total in [0usize, 1, 2, 7, 64, 1000] {
            for shards in [0usize, 1, 2, 3, 8, 2000] {
                let ranges = shard_ranges(total, shards);
                if total == 0 || shards == 0 {
                    assert!(ranges.is_empty());
                    continue;
                }
                assert_eq!(ranges.len(), shards.min(total));
                // Contiguous, non-empty, and covering 0..total in order.
                let mut cursor = 0;
                for r in &ranges {
                    assert_eq!(r.start, cursor);
                    assert!(!r.is_empty());
                    cursor = r.end;
                }
                assert_eq!(cursor, total);
                // Balanced: lengths differ by at most one.
                let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(max - min <= 1, "unbalanced shards {lens:?}");
            }
        }
    }

    #[test]
    fn shard_ranges_known_split() {
        assert_eq!(shard_ranges(10, 3), vec![0..4, 4..7, 7..10]);
        assert_eq!(shard_ranges(2, 5), vec![0..1, 1..2]);
    }

    #[test]
    #[should_panic(expected = "chunk3 length mismatch")]
    fn chunk3_rejects_mismatched_lengths() {
        for_each_chunk3(
            &mut [0.0; 2],
            &mut [0.0; 3],
            &mut [0.0; 2],
            1,
            false,
            |_, _, _, _| {},
        );
    }
}

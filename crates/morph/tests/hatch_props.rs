//! Property tests of whole-network hatching beyond `preservation.rs`:
//! across randomized widths and depths, a hatched network's logits must
//! match its MotherNet parent to within 1e-5 on random inputs — an order
//! of magnitude tighter than the workspace-wide
//! [`mn_tensor::PRESERVATION_TOLERANCE`], which exists for deep
//! compositions; fresh single hatches should be nearly exact.

use mn_morph::morph::morph_to;
use mn_nn::arch::{Architecture, ConvBlockSpec, InputSpec};
use mn_nn::{Mode, Network};
use mn_tensor::{max_abs_diff, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Logit agreement required between a MotherNet and a fresh hatch.
const HATCH_TOLERANCE: f32 = 1e-5;

fn input() -> InputSpec {
    InputSpec::new(3, 8, 8)
}

fn probe(seed: u64, n: usize) -> Tensor {
    Tensor::randn([n, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(seed))
}

fn assert_logits_match(src: &mut Network, hatched: &mut Network, seed: u64) {
    let x = probe(seed, 4);
    let ya = src.forward(&x, Mode::Eval);
    let yb = hatched.forward(&x, Mode::Eval);
    let diff = max_abs_diff(ya.data(), yb.data());
    assert!(
        diff <= HATCH_TOLERANCE,
        "hatched logits differ from MotherNet by {diff} (tolerance {HATCH_TOLERANCE})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// MLP hatching: arbitrary per-layer widening plus appended layers, at
    /// arbitrary class counts, leaves the logits unchanged to 1e-5.
    #[test]
    fn mlp_hatched_logits_match_mother(
        base_widths in proptest::collection::vec(2usize..12, 1..4),
        growth in proptest::collection::vec(0usize..10, 4),
        extra_layers in 0usize..3,
        classes in 2usize..11,
        seed in 0u64..10_000,
    ) {
        let small = Architecture::mlp("mother", input(), classes, base_widths.clone());
        let mut target_widths: Vec<usize> = base_widths
            .iter()
            .enumerate()
            .map(|(i, &w)| w + growth[i.min(growth.len() - 1)])
            .collect();
        let last = *target_widths.last().expect("non-empty widths");
        for _ in 0..extra_layers {
            target_widths.push(last);
        }
        let big = Architecture::mlp("member", input(), classes, target_widths);

        let mut src = Network::seeded(&small, seed);
        let mut hatched = morph_to(&src, &big).expect("grown MLP is hatchable");
        assert_logits_match(&mut src, &mut hatched, seed.wrapping_add(1));
    }

    /// Plain convolutional hatching: simultaneous filter widening, block
    /// deepening, and dense-head growth at random geometries preserves the
    /// logits to 1e-5.
    #[test]
    fn plain_hatched_logits_match_mother(
        depth1 in 1usize..3,
        depth2 in 1usize..3,
        f1 in 2usize..6,
        f2_extra in 0usize..6,
        widen1 in 0usize..5,
        widen2 in 0usize..5,
        deepen1 in 0usize..2,
        deepen2 in 0usize..2,
        dense_grow in 0usize..17,
        seed in 0u64..10_000,
    ) {
        let f2 = f1 + f2_extra;
        let small = Architecture::plain(
            "mother",
            input(),
            10,
            vec![
                ConvBlockSpec::repeated(3, f1, depth1),
                ConvBlockSpec::repeated(3, f2, depth2),
            ],
            vec![16],
        );
        let big = Architecture::plain(
            "member",
            input(),
            10,
            vec![
                ConvBlockSpec::repeated(3, f1 + widen1, depth1 + deepen1),
                ConvBlockSpec::repeated(3, f2 + widen2, depth2 + deepen2),
            ],
            vec![16 + dense_grow],
        );

        let mut src = Network::seeded(&small, seed);
        let mut hatched = morph_to(&src, &big).expect("grown plain net is hatchable");
        assert_logits_match(&mut src, &mut hatched, seed.wrapping_add(2));
    }

    /// Hatching accounts for every parameter: the hatched network has
    /// exactly the target architecture's parameter count.
    #[test]
    fn hatched_param_count_matches_target(
        base_widths in proptest::collection::vec(2usize..10, 1..3),
        growth in proptest::collection::vec(0usize..8, 3),
        seed in 0u64..10_000,
    ) {
        let small = Architecture::mlp("mother", input(), 5, base_widths.clone());
        let target_widths: Vec<usize> = base_widths
            .iter()
            .enumerate()
            .map(|(i, &w)| w + growth[i.min(growth.len() - 1)])
            .collect();
        let big = Architecture::mlp("member", input(), 5, target_widths);
        let src = Network::seeded(&small, seed);
        let mut hatched = morph_to(&src, &big).expect("grown MLP is hatchable");
        prop_assert_eq!(hatched.param_count() as u64, big.param_count());
    }
}

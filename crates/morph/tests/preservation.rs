//! Function-preservation tests: the load-bearing guarantee of hatching.
//!
//! Every transformation the paper uses (Figure 3) — and every composition
//! of them that `morph_to` performs — must leave the network's eval-mode
//! outputs unchanged to within [`mn_tensor::PRESERVATION_TOLERANCE`].

use mn_morph::morph::{morph_to, morph_to_with, MorphOptions};
use mn_morph::{ops, MorphError, MorphPlan};
use mn_nn::arch::{Architecture, ConvBlockSpec, ConvLayerSpec, InputSpec, ResBlockSpec};
use mn_nn::{Mode, Network};
use mn_tensor::{max_abs_diff, Tensor, PRESERVATION_TOLERANCE};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn input() -> InputSpec {
    InputSpec::new(3, 8, 8)
}

fn probe(seed: u64, n: usize) -> Tensor {
    Tensor::randn([n, 3, 8, 8], 1.0, &mut StdRng::seed_from_u64(seed))
}

/// Train-mode passes perturb batch-norm running statistics; run a couple to
/// make the source's running stats non-trivial before testing preservation.
fn warm_up(net: &mut Network, seed: u64) {
    let x = probe(seed, 8);
    for _ in 0..3 {
        let y = net.forward(&x, Mode::Train);
        net.backward(&y);
        net.zero_grad();
    }
    net.clear_caches();
}

fn assert_preserved(a: &mut Network, b: &mut Network, seed: u64) {
    let x = probe(seed, 5);
    let ya = a.forward(&x, Mode::Eval);
    let yb = b.forward(&x, Mode::Eval);
    let diff = max_abs_diff(ya.data(), yb.data());
    assert!(
        diff <= PRESERVATION_TOLERANCE,
        "outputs differ by {diff} (tolerance {PRESERVATION_TOLERANCE})"
    );
}

#[test]
fn mlp_widen_and_deepen_preserves() {
    let small = Architecture::mlp("s", input(), 10, vec![8, 8]);
    let big = Architecture::mlp("t", input(), 10, vec![16, 8, 8, 12]);
    let mut src = Network::seeded(&small, 1);
    let mut hatched = morph_to(&src, &big).unwrap();
    assert_preserved(&mut src, &mut hatched, 100);
    assert_eq!(hatched.param_count() as u64, big.param_count());
}

#[test]
fn plain_widen_preserves_after_warmup() {
    let small = Architecture::plain(
        "s",
        input(),
        10,
        vec![
            ConvBlockSpec::repeated(3, 4, 2),
            ConvBlockSpec::repeated(3, 8, 1),
        ],
        vec![16],
    );
    let big = Architecture::plain(
        "t",
        input(),
        10,
        vec![
            ConvBlockSpec::repeated(3, 9, 2),
            ConvBlockSpec::repeated(3, 13, 1),
        ],
        vec![31],
    );
    let mut src = Network::seeded(&small, 2);
    warm_up(&mut src, 3);
    let mut hatched = morph_to(&src, &big).unwrap();
    assert_preserved(&mut src, &mut hatched, 101);
}

#[test]
fn plain_deepen_preserves() {
    let small = Architecture::plain(
        "s",
        input(),
        10,
        vec![
            ConvBlockSpec::repeated(3, 4, 1),
            ConvBlockSpec::repeated(3, 8, 1),
        ],
        vec![16],
    );
    let big = Architecture::plain(
        "t",
        input(),
        10,
        vec![
            ConvBlockSpec::repeated(3, 4, 3),
            ConvBlockSpec::repeated(3, 8, 2),
        ],
        vec![16, 16],
    );
    let mut src = Network::seeded(&small, 4);
    warm_up(&mut src, 5);
    let mut hatched = morph_to(&src, &big).unwrap();
    assert_preserved(&mut src, &mut hatched, 102);
}

#[test]
fn plain_kernel_growth_preserves() {
    let small = Architecture::plain(
        "s",
        input(),
        10,
        vec![ConvBlockSpec::new(vec![
            ConvLayerSpec::new(3, 4),
            ConvLayerSpec::new(1, 4),
        ])],
        vec![8],
    );
    let big = Architecture::plain(
        "t",
        input(),
        10,
        vec![ConvBlockSpec::new(vec![
            ConvLayerSpec::new(5, 4),
            ConvLayerSpec::new(3, 4),
        ])],
        vec![8],
    );
    let mut src = Network::seeded(&small, 6);
    warm_up(&mut src, 7);
    let mut hatched = morph_to(&src, &big).unwrap();
    assert_preserved(&mut src, &mut hatched, 103);
}

#[test]
fn plain_all_transformations_composed_preserve() {
    // Widen + deepen + kernel growth + dense widen + dense deepen at once.
    let small = Architecture::plain(
        "s",
        input(),
        10,
        vec![
            ConvBlockSpec::repeated(3, 4, 1),
            ConvBlockSpec::repeated(3, 6, 2),
        ],
        vec![12],
    );
    let big = Architecture::plain(
        "t",
        input(),
        10,
        vec![
            ConvBlockSpec::new(vec![ConvLayerSpec::new(5, 7), ConvLayerSpec::new(3, 7)]),
            ConvBlockSpec::new(vec![
                ConvLayerSpec::new(3, 6),
                ConvLayerSpec::new(5, 11),
                ConvLayerSpec::new(3, 11),
            ]),
        ],
        vec![20, 24],
    );
    let mut src = Network::seeded(&small, 8);
    warm_up(&mut src, 9);
    let mut hatched = morph_to(&src, &big).unwrap();
    assert_preserved(&mut src, &mut hatched, 104);
    assert_eq!(hatched.param_count() as u64, big.param_count());
}

#[test]
fn residual_widen_deepen_preserves() {
    let small = Architecture::residual(
        "s",
        input(),
        10,
        vec![ResBlockSpec::new(1, 4, 3), ResBlockSpec::new(2, 8, 3)],
    );
    let big = Architecture::residual(
        "t",
        input(),
        10,
        vec![ResBlockSpec::new(3, 6, 3), ResBlockSpec::new(3, 11, 3)],
    );
    let mut src = Network::seeded(&small, 10);
    warm_up(&mut src, 11);
    let mut hatched = morph_to(&src, &big).unwrap();
    assert_preserved(&mut src, &mut hatched, 105);
    assert_eq!(hatched.param_count() as u64, big.param_count());
}

#[test]
fn residual_kernel_growth_preserves() {
    let small = Architecture::residual("s", input(), 10, vec![ResBlockSpec::new(2, 4, 3)]);
    let big = Architecture::residual("t", input(), 10, vec![ResBlockSpec::new(2, 4, 5)]);
    let mut src = Network::seeded(&small, 12);
    warm_up(&mut src, 13);
    let mut hatched = morph_to(&src, &big).unwrap();
    assert_preserved(&mut src, &mut hatched, 106);
}

#[test]
fn single_op_helpers_preserve() {
    let arch = Architecture::plain(
        "s",
        input(),
        10,
        vec![
            ConvBlockSpec::repeated(3, 4, 2),
            ConvBlockSpec::repeated(3, 8, 1),
        ],
        vec![16],
    );
    let mut src = Network::seeded(&arch, 14);
    warm_up(&mut src, 15);
    let opts = MorphOptions::exact();

    let mut widened = ops::widen_conv_layer(&src, 0, 1, 9, &opts).unwrap();
    assert_preserved(&mut src, &mut widened, 107);

    let mut grown = ops::expand_conv_kernel(&src, 1, 0, 5, &opts).unwrap();
    assert_preserved(&mut src, &mut grown, 108);

    let mut deepened = ops::deepen_block(&src, 0, 2, &opts).unwrap();
    assert_preserved(&mut src, &mut deepened, 109);

    let mut dense_wide = ops::widen_dense_layer(&src, 0, 24, &opts).unwrap();
    assert_preserved(&mut src, &mut dense_wide, 110);

    let mut dense_deep = ops::add_dense_layer(&src, 16, &opts).unwrap();
    assert_preserved(&mut src, &mut dense_deep, 111);
}

#[test]
fn residual_op_helpers_preserve() {
    let arch = Architecture::residual(
        "s",
        input(),
        10,
        vec![ResBlockSpec::new(1, 4, 3), ResBlockSpec::new(1, 8, 3)],
    );
    let mut src = Network::seeded(&arch, 16);
    warm_up(&mut src, 17);
    let opts = MorphOptions::exact();

    let mut wide = ops::widen_stage(&src, 1, 12, &opts).unwrap();
    assert_preserved(&mut src, &mut wide, 112);

    let mut deep = ops::add_residual_units(&src, 0, 2, &opts).unwrap();
    assert_preserved(&mut src, &mut deep, 113);
}

#[test]
fn noise_breaks_exactness_but_stays_close() {
    let small = Architecture::mlp("s", input(), 10, vec![8]);
    let big = Architecture::mlp("t", input(), 10, vec![16]);
    let mut src = Network::seeded(&small, 18);
    let mut hatched = morph_to_with(&src, &big, &MorphOptions::with_noise(1e-3, 99)).unwrap();
    let x = probe(200, 4);
    let ya = src.forward(&x, Mode::Eval);
    let yb = hatched.forward(&x, Mode::Eval);
    let diff = max_abs_diff(ya.data(), yb.data());
    assert!(diff > 0.0, "noise should perturb outputs");
    assert!(diff < 0.5, "noise perturbation too large: {diff}");
}

#[test]
fn incompatible_targets_are_rejected() {
    let plain = Architecture::plain(
        "p",
        input(),
        10,
        vec![ConvBlockSpec::repeated(3, 4, 1)],
        vec![8],
    );
    let mlp = Architecture::mlp("m", input(), 10, vec![8]);
    let res = Architecture::residual("r", input(), 10, vec![ResBlockSpec::new(1, 4, 3)]);
    let src = Network::seeded(&plain, 19);
    assert!(matches!(
        morph_to(&src, &mlp),
        Err(MorphError::NotExpandable { .. })
    ));
    assert!(matches!(
        morph_to(&src, &res),
        Err(MorphError::NotExpandable { .. })
    ));

    // Shrinking targets rejected.
    let smaller = Architecture::plain(
        "p2",
        input(),
        10,
        vec![ConvBlockSpec::repeated(3, 2, 1)],
        vec![8],
    );
    assert!(morph_to(&src, &smaller).is_err());

    // Different class count rejected.
    let other_classes = Architecture::plain(
        "p3",
        input(),
        5,
        vec![ConvBlockSpec::repeated(3, 4, 1)],
        vec![8],
    );
    assert!(morph_to(&src, &other_classes).is_err());
}

#[test]
fn plan_matches_hatch_param_growth() {
    let small = Architecture::plain(
        "s",
        input(),
        10,
        vec![ConvBlockSpec::repeated(3, 4, 1)],
        vec![8],
    );
    let big = Architecture::plain(
        "t",
        input(),
        10,
        vec![ConvBlockSpec::repeated(3, 8, 2)],
        vec![16],
    );
    let plan = MorphPlan::between(&small, &big).unwrap();
    let src = Network::seeded(&small, 20);
    let mut hatched = morph_to(&src, &big).unwrap();
    let src_params = small.param_count();
    assert_eq!(hatched.param_count() as u64, src_params + plan.new_params);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: for arbitrary compatible MLP pairs, morphing preserves the
    /// function exactly.
    #[test]
    fn prop_mlp_morph_preserves(
        base_widths in proptest::collection::vec(2usize..10, 1..3),
        growth in proptest::collection::vec(0usize..8, 3),
        extra_layers in 0usize..2,
        seed in 0u64..1000,
    ) {
        let small = Architecture::mlp("s", input(), 5, base_widths.clone());
        let mut t_widths: Vec<usize> = base_widths
            .iter()
            .enumerate()
            .map(|(i, &w)| w + growth[i.min(growth.len() - 1)])
            .collect();
        let last = *t_widths.last().unwrap();
        for _ in 0..extra_layers {
            t_widths.push(last);
        }
        let big = Architecture::mlp("t", input(), 5, t_widths);
        let mut src = Network::seeded(&small, seed);
        let mut hatched = morph_to(&src, &big).unwrap();
        let x = probe(seed.wrapping_add(1), 3);
        let ya = src.forward(&x, Mode::Eval);
        let yb = hatched.forward(&x, Mode::Eval);
        prop_assert!(max_abs_diff(ya.data(), yb.data()) <= PRESERVATION_TOLERANCE);
    }

    /// Property: widening any single conv layer of a two-block plain net
    /// preserves the function.
    #[test]
    fn prop_plain_single_widen_preserves(
        block in 0usize..2,
        layer in 0usize..2,
        extra in 1usize..6,
        seed in 0u64..1000,
    ) {
        let arch = Architecture::plain(
            "s",
            input(),
            5,
            vec![ConvBlockSpec::repeated(3, 4, 2), ConvBlockSpec::repeated(3, 6, 2)],
            vec![8],
        );
        let mut src = Network::seeded(&arch, seed);
        warm_up(&mut src, seed.wrapping_add(7));
        let base = if block == 0 { 4 } else { 6 };
        let hatched = ops::widen_conv_layer(&src, block, layer, base + extra, &MorphOptions::exact());
        let mut hatched = hatched.unwrap();
        let x = probe(seed.wrapping_add(2), 3);
        let ya = src.forward(&x, Mode::Eval);
        let yb = hatched.forward(&x, Mode::Eval);
        prop_assert!(max_abs_diff(ya.data(), yb.data()) <= PRESERVATION_TOLERANCE);
    }
}

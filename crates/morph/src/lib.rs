//! # mn-morph
//!
//! Function-preserving network transformations (network morphism) for the
//! MotherNets reproduction — the *hatching* mechanism of the paper.
//!
//! The paper (§2, Figure 3) uses three classes of transformations to grow a
//! trained MotherNet into each ensemble member while preserving the learned
//! function:
//!
//! 1. **Deepening** — inserting identity layers ([`ops::deepen_block`],
//!    [`ops::add_dense_layer`], [`ops::add_residual_units`]);
//! 2. **Widening** — replicating units/filters and rescaling consumers
//!    ([`ops::widen_conv_layer`], [`ops::widen_dense_layer`],
//!    [`ops::widen_stage`]);
//! 3. **Filter growth** — zero-padding convolution kernels
//!    ([`ops::expand_conv_kernel`]).
//!
//! The workhorse is [`morph::morph_to`], which hatches an entire target
//! architecture from a source network in a single lockstep pass — the
//! paper's "hatching … requires a single pass on the MotherNet" (§2.2). The
//! transformation arithmetic lives in [`transfer`]; the channel-replication
//! bookkeeping that makes widening exact lives in [`chanmap`].
//!
//! ## Example: hatch a wider, deeper network
//!
//! ```
//! use mn_morph::morph::morph_to;
//! use mn_nn::arch::{Architecture, ConvBlockSpec, InputSpec};
//! use mn_nn::{Mode, Network};
//! use mn_tensor::{assert_close, Tensor, PRESERVATION_TOLERANCE};
//!
//! let small = Architecture::plain(
//!     "mothernet",
//!     InputSpec::new(3, 8, 8),
//!     10,
//!     vec![ConvBlockSpec::repeated(3, 4, 1)],
//!     vec![16],
//! );
//! let big = Architecture::plain(
//!     "member",
//!     InputSpec::new(3, 8, 8),
//!     10,
//!     vec![ConvBlockSpec::repeated(3, 8, 2)],
//!     vec![32],
//! );
//! let mut mother = Network::seeded(&small, 7);
//! let mut hatched = morph_to(&mother, &big).unwrap();
//!
//! // The hatched network computes the same function (eval mode).
//! let x = Tensor::randn([4, 3, 8, 8], 1.0, &mut rand::thread_rng());
//! let before = mother.forward(&x, Mode::Eval);
//! let after = hatched.forward(&x, Mode::Eval);
//! assert_close(before.data(), after.data(), PRESERVATION_TOLERANCE);
//! ```

pub mod chanmap;
pub mod error;
pub mod morph;
pub mod ops;
pub mod plan;
pub mod transfer;

pub use chanmap::ChannelMap;
pub use error::MorphError;
pub use morph::{check_compatible, morph_to, morph_to_with, MorphOptions};
pub use plan::MorphPlan;

//! Error type of the morphism engine.

use std::fmt;

use mn_nn::arch::ArchError;

/// Why a morphism could not be performed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MorphError {
    /// Source and target cannot be related by function-preserving
    /// transformations (e.g. the target is *smaller* somewhere, or the
    /// families differ).
    NotExpandable {
        /// Human-readable reason.
        reason: String,
    },
    /// The target architecture is itself malformed.
    InvalidTarget(ArchError),
    /// The source network's node sequence did not have the expected shape
    /// (it was not produced by the standard builder).
    StructureMismatch {
        /// What the walker expected next.
        expected: String,
        /// What it found.
        found: String,
    },
    /// An index passed to a single-transformation helper was out of range.
    BadIndex {
        /// Which index space.
        what: String,
        /// The offending index.
        index: usize,
        /// The number of valid entries.
        len: usize,
    },
}

impl fmt::Display for MorphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MorphError::NotExpandable { reason } => {
                write!(
                    f,
                    "target not reachable by function-preserving transformations: {reason}"
                )
            }
            MorphError::InvalidTarget(e) => write!(f, "invalid target architecture: {e}"),
            MorphError::StructureMismatch { expected, found } => {
                write!(
                    f,
                    "source structure mismatch: expected {expected}, found {found}"
                )
            }
            MorphError::BadIndex { what, index, len } => {
                write!(f, "{what} index {index} out of range (len {len})")
            }
        }
    }
}

impl std::error::Error for MorphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MorphError::InvalidTarget(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArchError> for MorphError {
    fn from(e: ArchError) -> Self {
        MorphError::InvalidTarget(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MorphError::NotExpandable {
            reason: "shrinks block 2".into(),
        };
        assert!(e.to_string().contains("shrinks block 2"));
        let e = MorphError::BadIndex {
            what: "block".into(),
            index: 5,
            len: 3,
        };
        assert!(e.to_string().contains("5"));
    }
}

//! Morph plans: a structural diff between two architectures.
//!
//! A [`MorphPlan`] summarizes which function-preserving transformations a
//! hatch will perform (how many layers are widened, deepened, or get larger
//! kernels) and how many parameters the target inherits from the source —
//! the quantity the paper's clustering parameter τ controls (§2.3).

use std::fmt;

use mn_nn::arch::{Architecture, Body};

use crate::error::MorphError;
use crate::morph::check_compatible;

/// Summary of the transformations needed to reach `target` from `source`.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct MorphPlan {
    /// Matched convolutional layers whose filter count grows (Fig. 3b).
    pub widened_conv_layers: usize,
    /// Matched convolutional layers whose kernel grows (Fig. 3c).
    pub expanded_kernels: usize,
    /// Convolutional layers inserted as identities (Fig. 3a).
    pub added_conv_layers: usize,
    /// Matched dense layers that widen.
    pub widened_dense_layers: usize,
    /// Dense layers inserted as identities.
    pub added_dense_layers: usize,
    /// Residual stages whose width grows.
    pub widened_stages: usize,
    /// Residual units inserted as identities.
    pub added_units: usize,
    /// Parameters added by the hatch (`|target| − |source|`).
    pub new_params: u64,
    /// Fraction of the target's parameters inherited from the source,
    /// `|source| / |target|` — the clustering condition requires this to
    /// exceed `1 − τ`.
    pub inherited_fraction: f64,
    /// Leading parameterized layer specs (conv layers, residual units,
    /// dense layers — in forward order) the hatch copies **unchanged**:
    /// everything before the first widened/expanded/inserted spec. A
    /// member hatched without noise carries the source's weights
    /// bit-for-bit through this prefix, so two members hatched from one
    /// MotherNet share at least this much trunk — the topology-level
    /// upper bound the ensemble engine's value-level trunk detection
    /// confirms at serving time (the measured count is
    /// `HatchReport::shared_prefix_nodes` in `mothernets::hatch`).
    pub shared_prefix_specs: usize,
}

impl MorphPlan {
    /// Computes the plan from `source` to `target`.
    ///
    /// # Errors
    ///
    /// Returns [`MorphError`] if the pair is not morphable (see
    /// [`check_compatible`]).
    pub fn between(source: &Architecture, target: &Architecture) -> Result<Self, MorphError> {
        check_compatible(source, target)?;
        let mut plan = MorphPlan::default();
        match (&source.body, &target.body) {
            (Body::Mlp { hidden: sh }, Body::Mlp { hidden: th }) => {
                diff_dense(sh, th, &mut plan);
            }
            (
                Body::Plain {
                    blocks: sb,
                    dense: sd,
                },
                Body::Plain {
                    blocks: tb,
                    dense: td,
                },
            ) => {
                for (s, t) in sb.iter().zip(tb.iter()) {
                    for (sl, tl) in s.layers.iter().zip(t.layers.iter()) {
                        if tl.filters > sl.filters {
                            plan.widened_conv_layers += 1;
                        }
                        if tl.filter_size > sl.filter_size {
                            plan.expanded_kernels += 1;
                        }
                    }
                    plan.added_conv_layers += t.layers.len() - s.layers.len();
                }
                diff_dense(sd, td, &mut plan);
            }
            (Body::Residual { blocks: sb }, Body::Residual { blocks: tb }) => {
                for (s, t) in sb.iter().zip(tb.iter()) {
                    if t.filters > s.filters {
                        plan.widened_stages += 1;
                    }
                    if t.filter_size > s.filter_size {
                        plan.expanded_kernels += 1;
                    }
                    plan.added_units += t.units - s.units;
                }
            }
            _ => unreachable!("family mismatch caught by check_compatible"),
        }
        let sp = source.param_count();
        let tp = target.param_count();
        plan.new_params = tp.saturating_sub(sp);
        plan.inherited_fraction = sp as f64 / tp as f64;
        plan.shared_prefix_specs = shared_prefix_specs(source, target);
        Ok(plan)
    }

    /// Total number of individual transformations.
    pub fn total_ops(&self) -> usize {
        self.widened_conv_layers
            + self.expanded_kernels
            + self.added_conv_layers
            + self.widened_dense_layers
            + self.added_dense_layers
            + self.widened_stages
            + self.added_units
    }

    /// Whether the plan is a no-op (identical architectures up to naming).
    pub fn is_noop(&self) -> bool {
        self.total_ops() == 0 && self.new_params == 0
    }
}

/// Counts the leading parameterized layer specs a hatch leaves untouched —
/// the hatched-topology prefix. Walks the two bodies in forward (node)
/// order and stops at the first spec that widens, grows its kernel, or is
/// freshly inserted; every spec before that point transfers its weights
/// verbatim (identity channel maps), so members hatched from one source
/// stay bit-identical through it. Spec granularity: one conv layer, one
/// residual unit, or one dense layer each count 1; the classifier head
/// counts only when every body spec matched (its fan-in is then unchanged
/// too). Callers should treat this as the *topological* trunk bound — the
/// serving engine re-verifies value-level equality before sharing compute.
fn shared_prefix_specs(source: &Architecture, target: &Architecture) -> usize {
    /// Leading equal widths, plus whether the two lists matched fully
    /// (only then is the classifier head's fan-in unchanged).
    fn dense_prefix(s: &[usize], t: &[usize]) -> (usize, bool) {
        let matched = s.iter().zip(t.iter()).take_while(|(a, b)| a == b).count();
        (matched, matched == s.len() && matched == t.len())
    }
    match (&source.body, &target.body) {
        (Body::Mlp { hidden: sh }, Body::Mlp { hidden: th }) => {
            let (n, all) = dense_prefix(sh, th);
            n + usize::from(all)
        }
        (
            Body::Plain {
                blocks: sb,
                dense: sd,
            },
            Body::Plain {
                blocks: tb,
                dense: td,
            },
        ) => {
            let mut n = 0;
            for (s, t) in sb.iter().zip(tb.iter()) {
                for (sl, tl) in s.layers.iter().zip(t.layers.iter()) {
                    if sl.filters != tl.filters || sl.filter_size != tl.filter_size {
                        return n;
                    }
                    n += 1;
                }
                if s.layers.len() != t.layers.len() {
                    return n;
                }
            }
            if sb.len() != tb.len() {
                return n;
            }
            let (d, all) = dense_prefix(sd, td);
            n + d + usize::from(all)
        }
        (Body::Residual { blocks: sb }, Body::Residual { blocks: tb }) => {
            let mut n = 0;
            for (s, t) in sb.iter().zip(tb.iter()) {
                if s.filters != t.filters || s.filter_size != t.filter_size {
                    return n;
                }
                // Stage topology (stem/transition) unchanged; leading
                // units transfer verbatim, inserted identity units end
                // the shared prefix.
                n += s.units.min(t.units);
                if s.units != t.units {
                    return n;
                }
            }
            n + usize::from(sb.len() == tb.len())
        }
        _ => 0,
    }
}

fn diff_dense(s: &[usize], t: &[usize], plan: &mut MorphPlan) {
    for (&su, &tu) in s.iter().zip(t.iter()) {
        if tu > su {
            plan.widened_dense_layers += 1;
        }
    }
    plan.added_dense_layers += t.len() - s.len();
}

impl fmt::Display for MorphPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MorphPlan: {} ops (+{} conv widen, +{} kernel, +{} conv deepen, \
             +{} dense widen, +{} dense deepen, +{} stage widen, +{} units), \
             +{} params, {:.1}% inherited, {} shared-prefix specs",
            self.total_ops(),
            self.widened_conv_layers,
            self.expanded_kernels,
            self.added_conv_layers,
            self.widened_dense_layers,
            self.added_dense_layers,
            self.widened_stages,
            self.added_units,
            self.new_params,
            self.inherited_fraction * 100.0,
            self.shared_prefix_specs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_nn::arch::{ConvBlockSpec, ConvLayerSpec, InputSpec, ResBlockSpec};

    fn input() -> InputSpec {
        InputSpec::new(3, 8, 8)
    }

    #[test]
    fn noop_plan() {
        let a = Architecture::mlp("a", input(), 10, vec![8]);
        let plan = MorphPlan::between(&a, &a).unwrap();
        assert!(plan.is_noop());
        assert_eq!(plan.inherited_fraction, 1.0);
    }

    #[test]
    fn plain_diff_counts() {
        let s = Architecture::plain(
            "s",
            input(),
            10,
            vec![ConvBlockSpec::repeated(3, 4, 2)],
            vec![8],
        );
        let t = Architecture::plain(
            "t",
            input(),
            10,
            vec![ConvBlockSpec::new(vec![
                ConvLayerSpec::new(3, 8), // widened
                ConvLayerSpec::new(5, 4), // kernel expanded
                ConvLayerSpec::new(3, 8), // added
            ])],
            vec![8, 16], // one added dense
        );
        let plan = MorphPlan::between(&s, &t).unwrap();
        assert_eq!(plan.widened_conv_layers, 1);
        assert_eq!(plan.expanded_kernels, 1);
        assert_eq!(plan.added_conv_layers, 1);
        assert_eq!(plan.added_dense_layers, 1);
        assert_eq!(plan.widened_dense_layers, 0);
        assert!(plan.new_params > 0);
        assert!(plan.inherited_fraction < 1.0 && plan.inherited_fraction > 0.0);
        assert_eq!(plan.total_ops(), 4);
    }

    #[test]
    fn shared_prefix_counts_leading_untouched_specs() {
        // No-op hatch: every spec (incl. the head) is shared.
        let a = Architecture::mlp("a", input(), 10, vec![8, 16]);
        assert_eq!(MorphPlan::between(&a, &a).unwrap().shared_prefix_specs, 3);
        // Widening the second hidden layer keeps only the first shared;
        // the head's fan-in changes, so it is not counted.
        let b = Architecture::mlp("b", input(), 10, vec![8, 32]);
        assert_eq!(MorphPlan::between(&a, &b).unwrap().shared_prefix_specs, 1);
        // Appending a hidden layer keeps both originals but not the head.
        let c = Architecture::mlp("c", input(), 10, vec![8, 16, 16]);
        assert_eq!(MorphPlan::between(&a, &c).unwrap().shared_prefix_specs, 2);

        // Plain: widening the second block's layer preserves all of block
        // one (2 conv specs), nothing after.
        let s = Architecture::plain(
            "s",
            input(),
            10,
            vec![
                ConvBlockSpec::repeated(3, 4, 2),
                ConvBlockSpec::repeated(3, 8, 1),
            ],
            vec![8],
        );
        let t = Architecture::plain(
            "t",
            input(),
            10,
            vec![
                ConvBlockSpec::repeated(3, 4, 2),
                ConvBlockSpec::repeated(3, 16, 1),
            ],
            vec![8],
        );
        assert_eq!(MorphPlan::between(&s, &t).unwrap().shared_prefix_specs, 2);
        // Widening the very first conv layer shares nothing.
        let u = Architecture::plain(
            "u",
            input(),
            10,
            vec![
                ConvBlockSpec::repeated(3, 8, 2),
                ConvBlockSpec::repeated(3, 8, 1),
            ],
            vec![8],
        );
        assert_eq!(MorphPlan::between(&s, &u).unwrap().shared_prefix_specs, 0);

        // Residual: adding units to a stage keeps the originals.
        let rs = Architecture::residual("rs", input(), 10, vec![ResBlockSpec::new(2, 4, 3)]);
        let rt = Architecture::residual("rt", input(), 10, vec![ResBlockSpec::new(4, 4, 3)]);
        assert_eq!(MorphPlan::between(&rs, &rt).unwrap().shared_prefix_specs, 2);
    }

    #[test]
    fn residual_diff_counts() {
        let s = Architecture::residual("s", input(), 10, vec![ResBlockSpec::new(2, 4, 3)]);
        let t = Architecture::residual("t", input(), 10, vec![ResBlockSpec::new(4, 8, 5)]);
        let plan = MorphPlan::between(&s, &t).unwrap();
        assert_eq!(plan.widened_stages, 1);
        assert_eq!(plan.expanded_kernels, 1);
        assert_eq!(plan.added_units, 2);
    }

    #[test]
    fn incompatible_pair_errors() {
        let s = Architecture::mlp("s", input(), 10, vec![8]);
        let t = Architecture::mlp("t", input(), 10, vec![4]);
        assert!(MorphPlan::between(&s, &t).is_err());
    }

    #[test]
    fn display_mentions_inheritance() {
        let s = Architecture::mlp("s", input(), 10, vec![8]);
        let t = Architecture::mlp("t", input(), 10, vec![16]);
        let plan = MorphPlan::between(&s, &t).unwrap();
        assert!(format!("{plan}").contains("inherited"));
    }
}

//! Morph plans: a structural diff between two architectures.
//!
//! A [`MorphPlan`] summarizes which function-preserving transformations a
//! hatch will perform (how many layers are widened, deepened, or get larger
//! kernels) and how many parameters the target inherits from the source —
//! the quantity the paper's clustering parameter τ controls (§2.3).

use std::fmt;

use mn_nn::arch::{Architecture, Body};

use crate::error::MorphError;
use crate::morph::check_compatible;

/// Summary of the transformations needed to reach `target` from `source`.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct MorphPlan {
    /// Matched convolutional layers whose filter count grows (Fig. 3b).
    pub widened_conv_layers: usize,
    /// Matched convolutional layers whose kernel grows (Fig. 3c).
    pub expanded_kernels: usize,
    /// Convolutional layers inserted as identities (Fig. 3a).
    pub added_conv_layers: usize,
    /// Matched dense layers that widen.
    pub widened_dense_layers: usize,
    /// Dense layers inserted as identities.
    pub added_dense_layers: usize,
    /// Residual stages whose width grows.
    pub widened_stages: usize,
    /// Residual units inserted as identities.
    pub added_units: usize,
    /// Parameters added by the hatch (`|target| − |source|`).
    pub new_params: u64,
    /// Fraction of the target's parameters inherited from the source,
    /// `|source| / |target|` — the clustering condition requires this to
    /// exceed `1 − τ`.
    pub inherited_fraction: f64,
}

impl MorphPlan {
    /// Computes the plan from `source` to `target`.
    ///
    /// # Errors
    ///
    /// Returns [`MorphError`] if the pair is not morphable (see
    /// [`check_compatible`]).
    pub fn between(source: &Architecture, target: &Architecture) -> Result<Self, MorphError> {
        check_compatible(source, target)?;
        let mut plan = MorphPlan::default();
        match (&source.body, &target.body) {
            (Body::Mlp { hidden: sh }, Body::Mlp { hidden: th }) => {
                diff_dense(sh, th, &mut plan);
            }
            (
                Body::Plain {
                    blocks: sb,
                    dense: sd,
                },
                Body::Plain {
                    blocks: tb,
                    dense: td,
                },
            ) => {
                for (s, t) in sb.iter().zip(tb.iter()) {
                    for (sl, tl) in s.layers.iter().zip(t.layers.iter()) {
                        if tl.filters > sl.filters {
                            plan.widened_conv_layers += 1;
                        }
                        if tl.filter_size > sl.filter_size {
                            plan.expanded_kernels += 1;
                        }
                    }
                    plan.added_conv_layers += t.layers.len() - s.layers.len();
                }
                diff_dense(sd, td, &mut plan);
            }
            (Body::Residual { blocks: sb }, Body::Residual { blocks: tb }) => {
                for (s, t) in sb.iter().zip(tb.iter()) {
                    if t.filters > s.filters {
                        plan.widened_stages += 1;
                    }
                    if t.filter_size > s.filter_size {
                        plan.expanded_kernels += 1;
                    }
                    plan.added_units += t.units - s.units;
                }
            }
            _ => unreachable!("family mismatch caught by check_compatible"),
        }
        let sp = source.param_count();
        let tp = target.param_count();
        plan.new_params = tp.saturating_sub(sp);
        plan.inherited_fraction = sp as f64 / tp as f64;
        Ok(plan)
    }

    /// Total number of individual transformations.
    pub fn total_ops(&self) -> usize {
        self.widened_conv_layers
            + self.expanded_kernels
            + self.added_conv_layers
            + self.widened_dense_layers
            + self.added_dense_layers
            + self.widened_stages
            + self.added_units
    }

    /// Whether the plan is a no-op (identical architectures up to naming).
    pub fn is_noop(&self) -> bool {
        self.total_ops() == 0 && self.new_params == 0
    }
}

fn diff_dense(s: &[usize], t: &[usize], plan: &mut MorphPlan) {
    for (&su, &tu) in s.iter().zip(t.iter()) {
        if tu > su {
            plan.widened_dense_layers += 1;
        }
    }
    plan.added_dense_layers += t.len() - s.len();
}

impl fmt::Display for MorphPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MorphPlan: {} ops (+{} conv widen, +{} kernel, +{} conv deepen, \
             +{} dense widen, +{} dense deepen, +{} stage widen, +{} units), \
             +{} params, {:.1}% inherited",
            self.total_ops(),
            self.widened_conv_layers,
            self.expanded_kernels,
            self.added_conv_layers,
            self.widened_dense_layers,
            self.added_dense_layers,
            self.widened_stages,
            self.added_units,
            self.new_params,
            self.inherited_fraction * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_nn::arch::{ConvBlockSpec, ConvLayerSpec, InputSpec, ResBlockSpec};

    fn input() -> InputSpec {
        InputSpec::new(3, 8, 8)
    }

    #[test]
    fn noop_plan() {
        let a = Architecture::mlp("a", input(), 10, vec![8]);
        let plan = MorphPlan::between(&a, &a).unwrap();
        assert!(plan.is_noop());
        assert_eq!(plan.inherited_fraction, 1.0);
    }

    #[test]
    fn plain_diff_counts() {
        let s = Architecture::plain(
            "s",
            input(),
            10,
            vec![ConvBlockSpec::repeated(3, 4, 2)],
            vec![8],
        );
        let t = Architecture::plain(
            "t",
            input(),
            10,
            vec![ConvBlockSpec::new(vec![
                ConvLayerSpec::new(3, 8), // widened
                ConvLayerSpec::new(5, 4), // kernel expanded
                ConvLayerSpec::new(3, 8), // added
            ])],
            vec![8, 16], // one added dense
        );
        let plan = MorphPlan::between(&s, &t).unwrap();
        assert_eq!(plan.widened_conv_layers, 1);
        assert_eq!(plan.expanded_kernels, 1);
        assert_eq!(plan.added_conv_layers, 1);
        assert_eq!(plan.added_dense_layers, 1);
        assert_eq!(plan.widened_dense_layers, 0);
        assert!(plan.new_params > 0);
        assert!(plan.inherited_fraction < 1.0 && plan.inherited_fraction > 0.0);
        assert_eq!(plan.total_ops(), 4);
    }

    #[test]
    fn residual_diff_counts() {
        let s = Architecture::residual("s", input(), 10, vec![ResBlockSpec::new(2, 4, 3)]);
        let t = Architecture::residual("t", input(), 10, vec![ResBlockSpec::new(4, 8, 5)]);
        let plan = MorphPlan::between(&s, &t).unwrap();
        assert_eq!(plan.widened_stages, 1);
        assert_eq!(plan.expanded_kernels, 1);
        assert_eq!(plan.added_units, 2);
    }

    #[test]
    fn incompatible_pair_errors() {
        let s = Architecture::mlp("s", input(), 10, vec![8]);
        let t = Architecture::mlp("t", input(), 10, vec![4]);
        assert!(MorphPlan::between(&s, &t).is_err());
    }

    #[test]
    fn display_mentions_inheritance() {
        let s = Architecture::mlp("s", input(), 10, vec![8]);
        let t = Architecture::mlp("t", input(), 10, vec![16]);
        let plan = MorphPlan::between(&s, &t).unwrap();
        assert!(format!("{plan}").contains("inherited"));
    }
}

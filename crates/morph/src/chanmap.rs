//! Channel mappings: the bookkeeping that makes widening exact.
//!
//! When a layer is widened by replication (Net2Net/Network-Morphism style),
//! every channel of the widened network carries the value of *some* channel
//! of the source network. A [`ChannelMap`] records that correspondence
//! (`target channel → source channel`) together with the replica count of
//! every source channel, which is exactly the information the next consumer
//! layer needs to rescale its incoming weights so that the overall function
//! is unchanged:
//!
//! ```text
//! W'[j, c] = W[m_out(j), m_in(c)] / replicas(m_in(c))
//! ```

use std::fmt;

/// A mapping from the channels (or flat features) of a widened tensor to
/// the channels of its source tensor.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChannelMap {
    map: Vec<usize>,
    replicas: Vec<usize>,
}

impl ChannelMap {
    /// Builds a map from an explicit `target → source` table.
    ///
    /// # Panics
    ///
    /// Panics if any entry is `>= source_len`, if `map` is empty, or if some
    /// source channel has no replica (every source channel must survive —
    /// widening never drops channels).
    pub fn from_map(map: Vec<usize>, source_len: usize) -> Self {
        assert!(!map.is_empty(), "channel map cannot be empty");
        let mut replicas = vec![0usize; source_len];
        for &s in &map {
            assert!(
                s < source_len,
                "map entry {s} out of range for source {source_len}"
            );
            replicas[s] += 1;
        }
        assert!(
            replicas.iter().all(|&r| r > 0),
            "every source channel must be mapped at least once"
        );
        ChannelMap { map, replicas }
    }

    /// The identity map over `n` channels (no widening).
    pub fn identity(n: usize) -> Self {
        ChannelMap::from_map((0..n).collect(), n)
    }

    /// The canonical widening map: `target_len >= source_len`, new channels
    /// replicate sources round-robin (`m(j) = j mod source_len`).
    ///
    /// # Panics
    ///
    /// Panics if `target_len < source_len` or `source_len == 0`.
    pub fn round_robin(source_len: usize, target_len: usize) -> Self {
        assert!(source_len > 0, "source must be non-empty");
        assert!(
            target_len >= source_len,
            "round_robin cannot shrink: {source_len} -> {target_len}"
        );
        ChannelMap::from_map(
            (0..target_len).map(|j| j % source_len).collect(),
            source_len,
        )
    }

    /// Number of target channels.
    pub fn target_len(&self) -> usize {
        self.map.len()
    }

    /// Number of source channels.
    pub fn source_len(&self) -> usize {
        self.replicas.len()
    }

    /// Source channel carried by target channel `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn source_of(&self, t: usize) -> usize {
        self.map[t]
    }

    /// Number of target replicas of source channel `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn replicas_of(&self, s: usize) -> usize {
        self.replicas[s]
    }

    /// The incoming-weight scale for target channel `t`:
    /// `1 / replicas(source_of(t))`.
    pub fn scale_of(&self, t: usize) -> f32 {
        1.0 / self.replicas[self.map[t]] as f32
    }

    /// Whether this map is the identity (no widening happened).
    pub fn is_identity(&self) -> bool {
        self.source_len() == self.target_len() && self.map.iter().enumerate().all(|(i, &s)| i == s)
    }

    /// Expands a per-channel map into a per-feature map after flattening
    /// `[C, H, W] → [C·H·W]`: feature `(c, p)` maps to `(source(c), p)`.
    pub fn expand_per_position(&self, positions: usize) -> ChannelMap {
        assert!(positions > 0, "positions must be positive");
        let mut map = Vec::with_capacity(self.target_len() * positions);
        for &s in &self.map {
            for p in 0..positions {
                map.push(s * positions + p);
            }
        }
        ChannelMap::from_map(map, self.source_len() * positions)
    }

    /// The map produced by a *duplication layer* that copies target channel
    /// `pick[j]` of this map's target side to its own output `j`: the new
    /// map sends `j` to `self.source_of(pick[j])`.
    ///
    /// # Panics
    ///
    /// Panics if any pick index is out of range or if the picks do not
    /// cover every source channel.
    pub fn select(&self, pick: &[usize]) -> ChannelMap {
        let map = pick
            .iter()
            .map(|&t| {
                assert!(t < self.target_len(), "pick {t} out of range");
                self.map[t]
            })
            .collect();
        ChannelMap::from_map(map, self.source_len())
    }
}

impl fmt::Display for ChannelMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ChannelMap({} -> {})",
            self.source_len(),
            self.target_len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_properties() {
        let m = ChannelMap::identity(4);
        assert!(m.is_identity());
        assert_eq!(m.target_len(), 4);
        assert_eq!(m.source_len(), 4);
        assert_eq!(m.scale_of(2), 1.0);
    }

    #[test]
    fn round_robin_replication() {
        let m = ChannelMap::round_robin(3, 7);
        assert_eq!(m.source_of(0), 0);
        assert_eq!(m.source_of(3), 0);
        assert_eq!(m.source_of(6), 0);
        assert_eq!(m.source_of(4), 1);
        assert_eq!(m.replicas_of(0), 3);
        assert_eq!(m.replicas_of(1), 2);
        assert_eq!(m.replicas_of(2), 2);
        assert!((m.scale_of(0) - 1.0 / 3.0).abs() < 1e-6);
        assert!(!m.is_identity());
    }

    #[test]
    fn scales_sum_to_one_per_source() {
        // Key invariant: the total contribution of each source channel's
        // replicas, each scaled by 1/replicas, is exactly 1.
        let m = ChannelMap::round_robin(4, 11);
        for s in 0..4 {
            let sum: f32 = (0..11)
                .filter(|&t| m.source_of(t) == s)
                .map(|t| m.scale_of(t))
                .sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn round_robin_rejects_shrink() {
        ChannelMap::round_robin(4, 3);
    }

    #[test]
    fn expand_per_position_layout() {
        let m = ChannelMap::round_robin(2, 3); // [0, 1, 0]
        let f = m.expand_per_position(2);
        // target features: c0(p0,p1), c1(p0,p1), c2(p0,p1)
        // sources:         0,1,        2,3,       0,1
        assert_eq!(f.target_len(), 6);
        assert_eq!(f.source_len(), 4);
        assert_eq!(f.source_of(0), 0);
        assert_eq!(f.source_of(1), 1);
        assert_eq!(f.source_of(2), 2);
        assert_eq!(f.source_of(4), 0);
        assert_eq!(f.replicas_of(0), 2);
        assert_eq!(f.replicas_of(2), 1);
    }

    #[test]
    fn select_composes_duplication() {
        let m = ChannelMap::round_robin(2, 3); // sources [0, 1, 0]
                                               // A duplication layer with 4 outputs picking inputs [0, 1, 2, 0].
        let d = m.select(&[0, 1, 2, 0]);
        assert_eq!(d.target_len(), 4);
        assert_eq!(d.source_len(), 2);
        assert_eq!(d.source_of(0), 0);
        assert_eq!(d.source_of(1), 1);
        assert_eq!(d.source_of(2), 0);
        assert_eq!(d.source_of(3), 0);
        assert_eq!(d.replicas_of(0), 3);
    }

    #[test]
    #[should_panic(expected = "mapped at least once")]
    fn from_map_requires_coverage() {
        ChannelMap::from_map(vec![0, 0], 2);
    }
}

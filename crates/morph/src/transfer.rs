//! Weight-transfer rules: the arithmetic core of every function-preserving
//! transformation (paper Figure 3).
//!
//! Each rule takes source parameters plus the input/output
//! [`ChannelMap`]s and produces target parameters such that the layer's
//! output under the *widened, duplicated* representation equals the source
//! layer's output under the original representation:
//!
//! * [`transfer_conv`] — widening (more filters), consumer rescaling, and
//!   filter-size growth by centered zero-padding, in one rule;
//! * [`transfer_dense`] — the same rule for dense layers (flattened maps);
//! * [`duplication_conv`] / [`duplication_dense`] — the *deepening*
//!   primitives: freshly inserted layers that copy one representative input
//!   channel per output, i.e. identity layers up to channel duplication;
//! * [`transfer_batchnorm`] — per-channel replication of the normalization
//!   statistics and affine parameters.

use mn_nn::layers::{BatchNorm, BnLayout};
use mn_tensor::Tensor;

use crate::chanmap::ChannelMap;

/// Transfers a convolution's parameters onto a (possibly wider, possibly
/// larger-kernel) target layer.
///
/// `src_w` is `[Fs, Cs, ks, ks]`, `src_b` is `[Fs]`. The target has
/// `m_in.target_len()` input channels, `m_out.target_len()` filters, and
/// kernel `k_t ≥ ks` (both odd). New kernel positions are zero so the
/// receptive field's effective weights are unchanged.
///
/// # Panics
///
/// Panics if the maps do not match the source tensor dimensions or
/// `k_t < ks` / parities differ.
pub fn transfer_conv(
    src_w: &Tensor,
    src_b: &Tensor,
    m_in: &ChannelMap,
    m_out: &ChannelMap,
    k_t: usize,
) -> (Tensor, Tensor) {
    let d = src_w.shape().dims();
    assert_eq!(d.len(), 4, "conv weight must be 4-D");
    let (fs, cs, ks) = (d[0], d[1], d[2]);
    assert_eq!(
        m_in.source_len(),
        cs,
        "input map does not match source channels"
    );
    assert_eq!(
        m_out.source_len(),
        fs,
        "output map does not match source filters"
    );
    assert!(k_t >= ks, "kernel cannot shrink: {ks} -> {k_t}");
    assert_eq!(k_t % 2, 1, "target kernel must be odd");
    assert_eq!(ks % 2, 1, "source kernel must be odd");
    let off = (k_t - ks) / 2;

    let ft = m_out.target_len();
    let ct = m_in.target_len();
    let mut w = Tensor::zeros([ft, ct, k_t, k_t]);
    let mut b = Tensor::zeros([ft]);
    for j in 0..ft {
        let sj = m_out.source_of(j);
        for c in 0..ct {
            let sc = m_in.source_of(c);
            let scale = m_in.scale_of(c);
            for kh in 0..ks {
                for kw in 0..ks {
                    *w.at4_mut(j, c, kh + off, kw + off) = src_w.at4(sj, sc, kh, kw) * scale;
                }
            }
        }
        b[j] = src_b[sj];
    }
    (w, b)
}

/// Transfers a dense layer's parameters (`src_w: [Ins, Outs]`,
/// `src_b: [Outs]`) onto a wider target.
///
/// # Panics
///
/// Panics if the maps do not match the source dimensions.
pub fn transfer_dense(
    src_w: &Tensor,
    src_b: &Tensor,
    m_in: &ChannelMap,
    m_out: &ChannelMap,
) -> (Tensor, Tensor) {
    let d = src_w.shape().dims();
    assert_eq!(d.len(), 2, "dense weight must be 2-D");
    let (ins, outs) = (d[0], d[1]);
    assert_eq!(
        m_in.source_len(),
        ins,
        "input map does not match source fan-in"
    );
    assert_eq!(
        m_out.source_len(),
        outs,
        "output map does not match source fan-out"
    );

    let it = m_in.target_len();
    let ot = m_out.target_len();
    let mut w = Tensor::zeros([it, ot]);
    let mut b = Tensor::zeros([ot]);
    for i in 0..it {
        let si = m_in.source_of(i);
        let scale = m_in.scale_of(i);
        for j in 0..ot {
            *w.at2_mut(i, j) = src_w.at2(si, m_out.source_of(j)) * scale;
        }
    }
    for j in 0..ot {
        b[j] = src_b[m_out.source_of(j)];
    }
    (w, b)
}

/// Builds a freshly *inserted* convolution (deepening, Figure 3a): output
/// `j` copies input channel `j mod C_in` through a centered-1 kernel. Also
/// returns the resulting channel map relative to the source network.
///
/// Returns `(weight, bias, m_out)`.
///
/// # Panics
///
/// Panics if `k` is even or `f_t < m_in.target_len()` would drop channels.
pub fn duplication_conv(m_in: &ChannelMap, f_t: usize, k: usize) -> (Tensor, Tensor, ChannelMap) {
    assert_eq!(k % 2, 1, "kernel must be odd");
    let ct = m_in.target_len();
    assert!(f_t >= ct, "inserted layer cannot shrink: {ct} -> {f_t}");
    let pick: Vec<usize> = (0..f_t).map(|j| j % ct).collect();
    let mut w = Tensor::zeros([f_t, ct, k, k]);
    let mid = k / 2;
    for (j, &p) in pick.iter().enumerate() {
        *w.at4_mut(j, p, mid, mid) = 1.0;
    }
    let b = Tensor::zeros([f_t]);
    let m_out = m_in.select(&pick);
    (w, b, m_out)
}

/// Builds a freshly *inserted* dense layer: output `j` copies input
/// feature `j mod I`. Returns `(weight, bias, m_out)`.
///
/// # Panics
///
/// Panics if `out_t` would drop features.
pub fn duplication_dense(m_in: &ChannelMap, out_t: usize) -> (Tensor, Tensor, ChannelMap) {
    let it = m_in.target_len();
    assert!(out_t >= it, "inserted layer cannot shrink: {it} -> {out_t}");
    let pick: Vec<usize> = (0..out_t).map(|j| j % it).collect();
    let mut w = Tensor::zeros([it, out_t]);
    for (j, &p) in pick.iter().enumerate() {
        *w.at2_mut(p, j) = 1.0;
    }
    let b = Tensor::zeros([out_t]);
    let m_out = m_in.select(&pick);
    (w, b, m_out)
}

/// Replicates a batch-norm layer's affine parameters and running statistics
/// according to the output map of the convolution it follows.
///
/// # Panics
///
/// Panics if the map does not match the source channel count.
pub fn transfer_batchnorm(src: &BatchNorm, m_out: &ChannelMap, layout: BnLayout) -> BatchNorm {
    let cs = src.channels();
    assert_eq!(
        m_out.source_len(),
        cs,
        "bn map does not match source channels"
    );
    let ct = m_out.target_len();
    let mut bn = BatchNorm::new(ct, layout);
    bn.momentum = src.momentum;
    bn.eps = src.eps;
    for j in 0..ct {
        let s = m_out.source_of(j);
        bn.gamma.value[j] = src.gamma.value[s];
        bn.beta.value[j] = src.beta.value[s];
        bn.running_mean[j] = src.running_mean[s];
        bn.running_var[j] = src.running_var[s];
    }
    bn
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_tensor::{assert_close, conv, ops};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Reference check: widened conv output channels carry duplicated
    /// source outputs, exactly.
    #[test]
    fn conv_widening_duplicates_outputs_exactly() {
        let mut rng = StdRng::seed_from_u64(1);
        let src_w = Tensor::randn([3, 2, 3, 3], 1.0, &mut rng);
        let src_b = Tensor::randn([3], 1.0, &mut rng);
        let x = Tensor::randn([2, 2, 5, 5], 1.0, &mut rng);

        let m_in = ChannelMap::identity(2);
        let m_out = ChannelMap::round_robin(3, 7);
        let (w, b) = transfer_conv(&src_w, &src_b, &m_in, &m_out, 3);

        let y_src = conv::conv2d_forward(&x, &src_w, &src_b, 1);
        let y_tgt = conv::conv2d_forward(&x, &w, &b, 1);
        let hw = 25;
        for n in 0..2 {
            for j in 0..7 {
                let s = m_out.source_of(j);
                let tgt = &y_tgt.data()[(n * 7 + j) * hw..(n * 7 + j + 1) * hw];
                let src = &y_src.data()[(n * 3 + s) * hw..(n * 3 + s + 1) * hw];
                assert_close(tgt, src, 1e-4);
            }
        }
    }

    /// Reference check: a consumer conv fed a duplicated representation
    /// (scaled by the input map) reproduces the source output exactly.
    #[test]
    fn conv_consumer_rescaling_is_exact() {
        let mut rng = StdRng::seed_from_u64(2);
        // Source: 3 channels in, 2 out. Input map duplicates 3 -> 8.
        let src_w = Tensor::randn([2, 3, 3, 3], 1.0, &mut rng);
        let src_b = Tensor::randn([2], 1.0, &mut rng);
        let m_in = ChannelMap::round_robin(3, 8);
        let m_out = ChannelMap::identity(2);
        let (w, b) = transfer_conv(&src_w, &src_b, &m_in, &m_out, 3);

        // Build the duplicated input from a source input.
        let x_src = Tensor::randn([1, 3, 4, 4], 1.0, &mut rng);
        let mut x_dup = Tensor::zeros([1, 8, 4, 4]);
        for c in 0..8 {
            let s = m_in.source_of(c);
            for h in 0..4 {
                for wi in 0..4 {
                    *x_dup.at4_mut(0, c, h, wi) = x_src.at4(0, s, h, wi);
                }
            }
        }
        let y_src = conv::conv2d_forward(&x_src, &src_w, &src_b, 1);
        let y_tgt = conv::conv2d_forward(&x_dup, &w, &b, 1);
        assert_close(y_tgt.data(), y_src.data(), 1e-4);
    }

    #[test]
    fn kernel_growth_preserves_function() {
        let mut rng = StdRng::seed_from_u64(3);
        let src_w = Tensor::randn([2, 2, 3, 3], 1.0, &mut rng);
        let src_b = Tensor::zeros([2]);
        let m = ChannelMap::identity(2);
        let (w5, b5) = transfer_conv(&src_w, &src_b, &m, &m, 5);
        let x = Tensor::randn([1, 2, 6, 6], 1.0, &mut rng);
        let y3 = conv::conv2d_forward(&x, &src_w, &src_b, 1);
        let y5 = conv::conv2d_forward(&x, &w5, &b5, 2);
        assert_close(y5.data(), y3.data(), 1e-4);
    }

    #[test]
    fn dense_transfer_round_trip() {
        let mut rng = StdRng::seed_from_u64(4);
        let src_w = Tensor::randn([3, 4], 1.0, &mut rng);
        let src_b = Tensor::randn([4], 1.0, &mut rng);
        let m_in = ChannelMap::round_robin(3, 5);
        let m_out = ChannelMap::round_robin(4, 6);
        let (w, b) = transfer_dense(&src_w, &src_b, &m_in, &m_out);

        let x_src = Tensor::randn([2, 3], 1.0, &mut rng);
        let mut x_dup = Tensor::zeros([2, 5]);
        for n in 0..2 {
            for c in 0..5 {
                *x_dup.at2_mut(n, c) = x_src.at2(n, m_in.source_of(c));
            }
        }
        let mut y_src = ops::matmul(&x_src, &src_w);
        ops::add_row_bias(&mut y_src, &src_b);
        let mut y_tgt = ops::matmul(&x_dup, &w);
        ops::add_row_bias(&mut y_tgt, &b);
        for n in 0..2 {
            for j in 0..6 {
                let expect = y_src.at2(n, m_out.source_of(j));
                assert!((y_tgt.at2(n, j) - expect).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn duplication_conv_is_identity_up_to_duplication() {
        let mut rng = StdRng::seed_from_u64(5);
        let m_in = ChannelMap::round_robin(2, 3);
        let (w, b, m_out) = duplication_conv(&m_in, 5, 3);
        let x = Tensor::randn([1, 3, 4, 4], 1.0, &mut rng);
        let y = conv::conv2d_forward(&x, &w, &b, 1);
        assert_eq!(y.shape().dims(), &[1, 5, 4, 4]);
        for j in 0..5 {
            let p = j % 3;
            for h in 0..4 {
                for wi in 0..4 {
                    assert!((y.at4(0, j, h, wi) - x.at4(0, p, h, wi)).abs() < 1e-6);
                }
            }
        }
        // New map composes through the duplication.
        assert_eq!(m_out.source_len(), 2);
        assert_eq!(m_out.source_of(3), m_in.source_of(0));
    }

    #[test]
    fn duplication_dense_copies_features() {
        let m_in = ChannelMap::identity(3);
        let (w, b, m_out) = duplication_dense(&m_in, 4);
        let x = Tensor::from_vec([1, 3], vec![1.0, 2.0, 3.0]);
        let mut y = ops::matmul(&x, &w);
        ops::add_row_bias(&mut y, &b);
        assert_close(y.data(), &[1.0, 2.0, 3.0, 1.0], 1e-6);
        assert_eq!(m_out.replicas_of(0), 2);
    }

    #[test]
    fn batchnorm_transfer_replicates_statistics() {
        let mut src = BatchNorm::new(2, BnLayout::Spatial);
        src.gamma.value = Tensor::from_vec([2], vec![1.5, 0.5]);
        src.beta.value = Tensor::from_vec([2], vec![0.1, 0.2]);
        src.running_mean = Tensor::from_vec([2], vec![-1.0, 1.0]);
        src.running_var = Tensor::from_vec([2], vec![2.0, 3.0]);
        let m = ChannelMap::round_robin(2, 5);
        let bn = transfer_batchnorm(&src, &m, BnLayout::Spatial);
        assert_eq!(bn.channels(), 5);
        for j in 0..5 {
            let s = m.source_of(j);
            assert_eq!(bn.gamma.value[j], src.gamma.value[s]);
            assert_eq!(bn.running_var[j], src.running_var[s]);
        }
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn conv_transfer_rejects_kernel_shrink() {
        let src_w = Tensor::zeros([1, 1, 5, 5]);
        let src_b = Tensor::zeros([1]);
        let m = ChannelMap::identity(1);
        transfer_conv(&src_w, &src_b, &m, &m, 3);
    }
}

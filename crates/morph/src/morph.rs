//! `morph_to`: hatch a target architecture from a trained source network in
//! one pass.
//!
//! The paper hatches every ensemble member from the trained MotherNet by a
//! sequence of function-preserving transformations (§2.2, "Hatching
//! ensemble networks … requires a single pass on the MotherNet"). This
//! module implements hatching as exactly that: a single lockstep walk over
//! the source network and the target architecture, emitting each target
//! layer with weights produced by the transfer rules of [`crate::transfer`].
//!
//! Function preservation is **exact in eval mode** (batch statistics frozen)
//! and exact in train mode for all transformations except inserted
//! batch-norm layers, which normalize by live batch statistics. The
//! integration tests assert eval-mode preservation to
//! [`mn_tensor::PRESERVATION_TOLERANCE`].

use mn_nn::arch::{Architecture, Body};
use mn_nn::layers::{BatchNorm, BnLayout, ConvLayer, DenseLayer, ResidualUnit};
use mn_nn::layers::{FlattenLayer, GlobalAvgPoolLayer, MaxPoolLayer, ReluLayer};
use mn_nn::{LayerNode, Network};
use mn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::chanmap::ChannelMap;
use crate::error::MorphError;
use crate::transfer::{
    duplication_conv, duplication_dense, transfer_batchnorm, transfer_conv, transfer_dense,
};

/// Options controlling a hatch.
#[derive(Clone, Copy, Debug)]
pub struct MorphOptions {
    /// Standard deviation of Gaussian noise added to transferred weights.
    ///
    /// Zero (the default) gives exact function preservation; a small
    /// positive value breaks the symmetry between replicated channels so
    /// that the widened capacity can be used during further training
    /// (Net2Net practice). Applied to convolution and dense weights only.
    pub noise_std: f32,
    /// RNG seed for noise and for the randomly initialized halves of
    /// inserted residual units.
    pub seed: u64,
}

impl Default for MorphOptions {
    fn default() -> Self {
        MorphOptions {
            noise_std: 0.0,
            seed: 0x5eed,
        }
    }
}

impl MorphOptions {
    /// Exact preservation (no noise) — the default.
    pub fn exact() -> Self {
        MorphOptions::default()
    }

    /// Symmetry-breaking noise with the given standard deviation.
    pub fn with_noise(noise_std: f32, seed: u64) -> Self {
        MorphOptions { noise_std, seed }
    }
}

/// Hatches a network with `target` architecture from `source`, preserving
/// the source's function exactly (eval mode).
///
/// # Errors
///
/// Returns [`MorphError`] if the target is invalid, belongs to a different
/// family, or is not reachable by function-preserving *expansion* (it
/// shrinks the source somewhere).
pub fn morph_to(source: &Network, target: &Architecture) -> Result<Network, MorphError> {
    morph_to_with(source, target, &MorphOptions::exact())
}

/// [`morph_to`] with explicit [`MorphOptions`].
///
/// # Errors
///
/// As [`morph_to`].
pub fn morph_to_with(
    source: &Network,
    target: &Architecture,
    opts: &MorphOptions,
) -> Result<Network, MorphError> {
    check_compatible(source.arch(), target)?;
    let mut rng = StdRng::seed_from_u64(opts.seed);
    fn jitter(w: &mut Tensor, noise_std: f32, rng: &mut StdRng) {
        if noise_std > 0.0 {
            let noise = Tensor::randn(w.shape().dims().to_vec(), noise_std, rng);
            w.add_assign(&noise);
        }
    }

    let mut cursor = Cursor::new(source.nodes());
    let mut nodes: Vec<LayerNode> = Vec::new();
    let s_arch = source.arch();

    match (&s_arch.body, &target.body) {
        (Body::Mlp { hidden: sh }, Body::Mlp { hidden: th }) => {
            cursor.flatten()?;
            nodes.push(LayerNode::Flatten(FlattenLayer::new()));
            let in_features = target.input.channels * target.input.height * target.input.width;
            let mut m = ChannelMap::identity(in_features);
            for (di, &t_units) in th.iter().enumerate() {
                if di < sh.len() {
                    let src = cursor.dense()?;
                    cursor.relu()?;
                    let m_out = ChannelMap::round_robin(sh[di], t_units);
                    let (mut w, b) = transfer_dense(&src.weight.value, &src.bias.value, &m, &m_out);
                    jitter(&mut w, opts.noise_std, &mut rng);
                    nodes.push(LayerNode::Dense(DenseLayer::from_params(w, b)));
                    nodes.push(LayerNode::Relu(ReluLayer::new()));
                    m = m_out;
                } else {
                    let (mut w, b, m_out) = duplication_dense(&m, t_units);
                    jitter(&mut w, opts.noise_std, &mut rng);
                    nodes.push(LayerNode::Dense(DenseLayer::from_params(w, b)));
                    nodes.push(LayerNode::Relu(ReluLayer::new()));
                    m = m_out;
                }
            }
            let src = cursor.dense()?;
            let m_out = ChannelMap::identity(target.num_classes);
            let (mut w, b) = transfer_dense(&src.weight.value, &src.bias.value, &m, &m_out);
            jitter(&mut w, opts.noise_std, &mut rng);
            nodes.push(LayerNode::Dense(DenseLayer::from_params(w, b)));
        }
        (
            Body::Plain {
                blocks: sb,
                dense: sd,
            },
            Body::Plain {
                blocks: tb,
                dense: td,
            },
        ) => {
            let mut m = ChannelMap::identity(target.input.channels);
            for (sblock, tblock) in sb.iter().zip(tb.iter()) {
                for (li, tl) in tblock.layers.iter().enumerate() {
                    if li < sblock.layers.len() {
                        let src_conv = cursor.conv()?;
                        let src_bn = cursor.bn()?;
                        cursor.relu()?;
                        let m_out = ChannelMap::round_robin(sblock.layers[li].filters, tl.filters);
                        let (mut w, b) = transfer_conv(
                            &src_conv.weight.value,
                            &src_conv.bias.value,
                            &m,
                            &m_out,
                            tl.filter_size,
                        );
                        jitter(&mut w, opts.noise_std, &mut rng);
                        nodes.push(LayerNode::Conv(ConvLayer::from_params(w, b)));
                        nodes.push(LayerNode::BatchNorm(transfer_batchnorm(
                            src_bn,
                            &m_out,
                            BnLayout::Spatial,
                        )));
                        nodes.push(LayerNode::Relu(ReluLayer::new()));
                        m = m_out;
                    } else {
                        let (mut w, b, m_out) = duplication_conv(&m, tl.filters, tl.filter_size);
                        jitter(&mut w, opts.noise_std, &mut rng);
                        nodes.push(LayerNode::Conv(ConvLayer::from_params(w, b)));
                        nodes.push(LayerNode::BatchNorm(BatchNorm::identity(
                            tl.filters,
                            BnLayout::Spatial,
                        )));
                        nodes.push(LayerNode::Relu(ReluLayer::new()));
                        m = m_out;
                    }
                }
                cursor.maxpool()?;
                nodes.push(LayerNode::MaxPool(MaxPoolLayer::new()));
            }
            cursor.flatten()?;
            nodes.push(LayerNode::Flatten(FlattenLayer::new()));
            let (h, w_sp) = target.spatial_after_body();
            let mut m = m.expand_per_position(h * w_sp);
            for (di, &t_units) in td.iter().enumerate() {
                if di < sd.len() {
                    let src = cursor.dense()?;
                    cursor.relu()?;
                    let m_out = ChannelMap::round_robin(sd[di], t_units);
                    let (mut w, b) = transfer_dense(&src.weight.value, &src.bias.value, &m, &m_out);
                    jitter(&mut w, opts.noise_std, &mut rng);
                    nodes.push(LayerNode::Dense(DenseLayer::from_params(w, b)));
                    nodes.push(LayerNode::Relu(ReluLayer::new()));
                    m = m_out;
                } else {
                    let (mut w, b, m_out) = duplication_dense(&m, t_units);
                    jitter(&mut w, opts.noise_std, &mut rng);
                    nodes.push(LayerNode::Dense(DenseLayer::from_params(w, b)));
                    nodes.push(LayerNode::Relu(ReluLayer::new()));
                    m = m_out;
                }
            }
            let src = cursor.dense()?;
            let m_out = ChannelMap::identity(target.num_classes);
            let (mut w, b) = transfer_dense(&src.weight.value, &src.bias.value, &m, &m_out);
            jitter(&mut w, opts.noise_std, &mut rng);
            nodes.push(LayerNode::Dense(DenseLayer::from_params(w, b)));
        }
        (Body::Residual { blocks: sb }, Body::Residual { blocks: tb }) => {
            // Stem.
            let src_conv = cursor.conv()?;
            let src_bn = cursor.bn()?;
            cursor.relu()?;
            let mut m_prev = ChannelMap::identity(target.input.channels);
            let m_stem = ChannelMap::round_robin(sb[0].filters, tb[0].filters);
            let (mut w, b) = transfer_conv(
                &src_conv.weight.value,
                &src_conv.bias.value,
                &m_prev,
                &m_stem,
                3,
            );
            jitter(&mut w, opts.noise_std, &mut rng);
            nodes.push(LayerNode::Conv(ConvLayer::from_params(w, b)));
            nodes.push(LayerNode::BatchNorm(transfer_batchnorm(
                src_bn,
                &m_stem,
                BnLayout::Spatial,
            )));
            nodes.push(LayerNode::Relu(ReluLayer::new()));
            m_prev = m_stem;

            for (bi, (sblock, tblock)) in sb.iter().zip(tb.iter()).enumerate() {
                if bi > 0 {
                    cursor.maxpool()?;
                    nodes.push(LayerNode::MaxPool(MaxPoolLayer::new()));
                }
                // Transition (1x1) — present in every stage by construction.
                let src_conv = cursor.conv()?;
                let src_bn = cursor.bn()?;
                cursor.relu()?;
                let m_stage = ChannelMap::round_robin(sblock.filters, tblock.filters);
                let (mut w, b) = transfer_conv(
                    &src_conv.weight.value,
                    &src_conv.bias.value,
                    &m_prev,
                    &m_stage,
                    1,
                );
                jitter(&mut w, opts.noise_std, &mut rng);
                nodes.push(LayerNode::Conv(ConvLayer::from_params(w, b)));
                nodes.push(LayerNode::BatchNorm(transfer_batchnorm(
                    src_bn,
                    &m_stage,
                    BnLayout::Spatial,
                )));
                nodes.push(LayerNode::Relu(ReluLayer::new()));

                for u in 0..tblock.units {
                    if u < sblock.units {
                        let src_unit = cursor.residual()?;
                        let (mut w1, b1) = transfer_conv(
                            &src_unit.conv1.weight.value,
                            &src_unit.conv1.bias.value,
                            &m_stage,
                            &m_stage,
                            tblock.filter_size,
                        );
                        jitter(&mut w1, opts.noise_std, &mut rng);
                        let bn1 = transfer_batchnorm(&src_unit.bn1, &m_stage, BnLayout::Spatial);
                        let (w2, b2) = transfer_conv(
                            &src_unit.conv2.weight.value,
                            &src_unit.conv2.bias.value,
                            &m_stage,
                            &m_stage,
                            tblock.filter_size,
                        );
                        // conv2 is deliberately not jittered: noise there
                        // would leak through the skip connection unscaled.
                        let bn2 = transfer_batchnorm(&src_unit.bn2, &m_stage, BnLayout::Spatial);
                        nodes.push(LayerNode::Residual(Box::new(ResidualUnit::from_parts(
                            ConvLayer::from_params(w1, b1),
                            bn1,
                            ConvLayer::from_params(w2, b2),
                            bn2,
                        ))));
                    } else {
                        nodes.push(LayerNode::Residual(Box::new(ResidualUnit::identity(
                            tblock.filters,
                            tblock.filter_size,
                            &mut rng,
                        ))));
                    }
                }
                m_prev = m_stage;
            }
            cursor.gap()?;
            nodes.push(LayerNode::GlobalAvgPool(GlobalAvgPoolLayer::new()));
            let src = cursor.dense()?;
            let m_out = ChannelMap::identity(target.num_classes);
            let (mut w, b) = transfer_dense(&src.weight.value, &src.bias.value, &m_prev, &m_out);
            jitter(&mut w, opts.noise_std, &mut rng);
            nodes.push(LayerNode::Dense(DenseLayer::from_params(w, b)));
        }
        _ => unreachable!("family mismatch is caught by check_compatible"),
    }
    cursor.finished()?;

    Ok(Network::from_parts(target.clone(), nodes))
}

/// Checks that `target` is reachable from `source` by function-preserving
/// expansion.
///
/// # Errors
///
/// Returns [`MorphError::NotExpandable`] with a human-readable reason, or
/// [`MorphError::InvalidTarget`] if the target itself is malformed.
pub fn check_compatible(source: &Architecture, target: &Architecture) -> Result<(), MorphError> {
    target.validate()?;
    let fail = |reason: String| Err(MorphError::NotExpandable { reason });
    if source.input != target.input {
        return fail(format!(
            "input geometry differs ({:?} vs {:?})",
            source.input, target.input
        ));
    }
    if source.num_classes != target.num_classes {
        return fail(format!(
            "class count differs ({} vs {})",
            source.num_classes, target.num_classes
        ));
    }
    match (&source.body, &target.body) {
        (Body::Mlp { hidden: sh }, Body::Mlp { hidden: th }) => {
            if th.len() < sh.len() {
                return fail(format!(
                    "target has fewer hidden layers ({} < {})",
                    th.len(),
                    sh.len()
                ));
            }
            for (i, (&s, &t)) in sh.iter().zip(th.iter()).enumerate() {
                if t < s {
                    return fail(format!("hidden layer {i} shrinks ({s} -> {t})"));
                }
            }
            check_monotone_added(sh.len(), th, "hidden layer")?;
        }
        (
            Body::Plain {
                blocks: sb,
                dense: sd,
            },
            Body::Plain {
                blocks: tb,
                dense: td,
            },
        ) => {
            if sb.len() != tb.len() {
                return fail(format!(
                    "block count differs ({} vs {})",
                    sb.len(),
                    tb.len()
                ));
            }
            for (bi, (s, t)) in sb.iter().zip(tb.iter()).enumerate() {
                if t.layers.len() < s.layers.len() {
                    return fail(format!(
                        "block {bi} has fewer layers ({} < {})",
                        t.layers.len(),
                        s.layers.len()
                    ));
                }
                for (li, (sl, tl)) in s.layers.iter().zip(t.layers.iter()).enumerate() {
                    if tl.filters < sl.filters {
                        return fail(format!(
                            "block {bi} layer {li} loses filters ({} -> {})",
                            sl.filters, tl.filters
                        ));
                    }
                    if tl.filter_size < sl.filter_size {
                        return fail(format!(
                            "block {bi} layer {li} shrinks kernel ({} -> {})",
                            sl.filter_size, tl.filter_size
                        ));
                    }
                }
                // Inserted layers must not narrow the block (a duplication
                // layer cannot drop channels).
                for li in s.layers.len()..t.layers.len() {
                    let prev = t.layers[li - 1].filters;
                    if t.layers[li].filters < prev {
                        return fail(format!(
                            "inserted layer {li} in block {bi} narrows {prev} -> {}",
                            t.layers[li].filters
                        ));
                    }
                }
            }
            if td.len() < sd.len() {
                return fail(format!("fewer dense layers ({} < {})", td.len(), sd.len()));
            }
            for (i, (&s, &t)) in sd.iter().zip(td.iter()).enumerate() {
                if t < s {
                    return fail(format!("dense layer {i} shrinks ({s} -> {t})"));
                }
            }
            check_monotone_added(sd.len(), td, "dense layer")?;
        }
        (Body::Residual { blocks: sb }, Body::Residual { blocks: tb }) => {
            if sb.len() != tb.len() {
                return fail(format!(
                    "stage count differs ({} vs {})",
                    sb.len(),
                    tb.len()
                ));
            }
            for (bi, (s, t)) in sb.iter().zip(tb.iter()).enumerate() {
                if t.units < s.units {
                    return fail(format!(
                        "stage {bi} loses units ({} -> {})",
                        s.units, t.units
                    ));
                }
                if t.filters < s.filters {
                    return fail(format!(
                        "stage {bi} loses filters ({} -> {})",
                        s.filters, t.filters
                    ));
                }
                if t.filter_size < s.filter_size {
                    return fail(format!(
                        "stage {bi} shrinks kernel ({} -> {})",
                        s.filter_size, t.filter_size
                    ));
                }
            }
        }
        _ => {
            return fail(format!(
                "family mismatch ({} vs {})",
                source.family(),
                target.family()
            ));
        }
    }
    Ok(())
}

fn check_monotone_added(
    matched: usize,
    target_widths: &[usize],
    what: &str,
) -> Result<(), MorphError> {
    for i in matched.max(1)..target_widths.len() {
        if target_widths[i] < target_widths[i - 1] {
            return Err(MorphError::NotExpandable {
                reason: format!(
                    "inserted {what} {i} narrows {} -> {}",
                    target_widths[i - 1],
                    target_widths[i]
                ),
            });
        }
    }
    Ok(())
}

/// Lockstep reader over a source network's node sequence.
struct Cursor<'a> {
    nodes: &'a [LayerNode],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn new(nodes: &'a [LayerNode]) -> Self {
        Cursor { nodes, i: 0 }
    }

    fn next(&mut self, expected: &str) -> Result<&'a LayerNode, MorphError> {
        let node = self
            .nodes
            .get(self.i)
            .ok_or_else(|| MorphError::StructureMismatch {
                expected: expected.to_string(),
                found: "end of network".to_string(),
            })?;
        self.i += 1;
        Ok(node)
    }

    fn conv(&mut self) -> Result<&'a ConvLayer, MorphError> {
        match self.next("conv")? {
            LayerNode::Conv(c) => Ok(c),
            other => Err(mismatch("conv", other)),
        }
    }

    fn bn(&mut self) -> Result<&'a BatchNorm, MorphError> {
        match self.next("batchnorm")? {
            LayerNode::BatchNorm(b) => Ok(b),
            other => Err(mismatch("batchnorm", other)),
        }
    }

    fn dense(&mut self) -> Result<&'a DenseLayer, MorphError> {
        match self.next("dense")? {
            LayerNode::Dense(d) => Ok(d),
            other => Err(mismatch("dense", other)),
        }
    }

    fn residual(&mut self) -> Result<&'a ResidualUnit, MorphError> {
        match self.next("residual")? {
            LayerNode::Residual(r) => Ok(r),
            other => Err(mismatch("residual", other)),
        }
    }

    fn relu(&mut self) -> Result<(), MorphError> {
        match self.next("relu")? {
            LayerNode::Relu(_) => Ok(()),
            other => Err(mismatch("relu", other)),
        }
    }

    fn maxpool(&mut self) -> Result<(), MorphError> {
        match self.next("maxpool")? {
            LayerNode::MaxPool(_) => Ok(()),
            other => Err(mismatch("maxpool", other)),
        }
    }

    fn flatten(&mut self) -> Result<(), MorphError> {
        match self.next("flatten")? {
            LayerNode::Flatten(_) => Ok(()),
            other => Err(mismatch("flatten", other)),
        }
    }

    fn gap(&mut self) -> Result<(), MorphError> {
        match self.next("gap")? {
            LayerNode::GlobalAvgPool(_) => Ok(()),
            other => Err(mismatch("gap", other)),
        }
    }

    fn finished(&self) -> Result<(), MorphError> {
        if self.i == self.nodes.len() {
            Ok(())
        } else {
            Err(MorphError::StructureMismatch {
                expected: "end of network".to_string(),
                found: format!("{} trailing nodes", self.nodes.len() - self.i),
            })
        }
    }
}

fn mismatch(expected: &str, found: &LayerNode) -> MorphError {
    MorphError::StructureMismatch {
        expected: expected.to_string(),
        found: found.kind().to_string(),
    }
}

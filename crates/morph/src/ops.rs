//! Single-transformation helpers mirroring the paper's Figure 3.
//!
//! Each helper applies *one* function-preserving transformation to a
//! network by editing its architecture description and re-hatching through
//! [`crate::morph::morph_to_with`]. They are convenience wrappers for
//! experimentation; the MotherNets pipeline itself hatches whole
//! architectures in one pass.

use mn_nn::arch::{Architecture, Body, ConvLayerSpec};
use mn_nn::Network;

use crate::error::MorphError;
use crate::morph::{morph_to_with, MorphOptions};

/// Widens one convolutional layer of a plain network (Figure 3b).
///
/// # Errors
///
/// Returns [`MorphError::BadIndex`] for out-of-range positions, and
/// [`MorphError::NotExpandable`] if `new_filters` shrinks the layer or the
/// network is not a plain convolutional network.
pub fn widen_conv_layer(
    net: &Network,
    block: usize,
    layer: usize,
    new_filters: usize,
    opts: &MorphOptions,
) -> Result<Network, MorphError> {
    let mut arch = net.arch().clone();
    let spec = plain_layer_mut(&mut arch, block, layer)?;
    spec.filters = new_filters;
    morph_to_with(net, &arch, opts)
}

/// Grows the kernel of one convolutional layer of a plain network
/// (Figure 3c).
///
/// # Errors
///
/// As [`widen_conv_layer`]; additionally the new size must be an odd value
/// at least the current size.
pub fn expand_conv_kernel(
    net: &Network,
    block: usize,
    layer: usize,
    new_size: usize,
    opts: &MorphOptions,
) -> Result<Network, MorphError> {
    let mut arch = net.arch().clone();
    let spec = plain_layer_mut(&mut arch, block, layer)?;
    spec.filter_size = new_size;
    morph_to_with(net, &arch, opts)
}

/// Appends `extra_layers` identity layers to a block of a plain network
/// (Figure 3a). The inserted layers replicate the block's last layer spec.
///
/// # Errors
///
/// Returns [`MorphError::BadIndex`] if `block` is out of range or the
/// network is not plain.
pub fn deepen_block(
    net: &Network,
    block: usize,
    extra_layers: usize,
    opts: &MorphOptions,
) -> Result<Network, MorphError> {
    let mut arch = net.arch().clone();
    match &mut arch.body {
        Body::Plain { blocks, .. } => {
            let len = blocks.len();
            let b = blocks.get_mut(block).ok_or(MorphError::BadIndex {
                what: "block".into(),
                index: block,
                len,
            })?;
            let last: ConvLayerSpec = *b.layers.last().expect("validated blocks are non-empty");
            for _ in 0..extra_layers {
                b.layers.push(last);
            }
        }
        _ => {
            return Err(MorphError::NotExpandable {
                reason: "deepen_block requires a plain convolutional network".into(),
            })
        }
    }
    morph_to_with(net, &arch, opts)
}

/// Widens one hidden dense layer (plain networks' head or MLPs).
///
/// # Errors
///
/// Returns [`MorphError::BadIndex`] for out-of-range positions or
/// [`MorphError::NotExpandable`] on shrink / wrong family.
pub fn widen_dense_layer(
    net: &Network,
    index: usize,
    new_units: usize,
    opts: &MorphOptions,
) -> Result<Network, MorphError> {
    let mut arch = net.arch().clone();
    let widths = dense_widths_mut(&mut arch)?;
    let len = widths.len();
    let w = widths.get_mut(index).ok_or(MorphError::BadIndex {
        what: "dense layer".into(),
        index,
        len,
    })?;
    *w = new_units;
    morph_to_with(net, &arch, opts)
}

/// Appends an identity hidden dense layer of `units` width before the
/// classifier.
///
/// # Errors
///
/// As [`widen_dense_layer`]; `units` must be at least the width feeding it.
pub fn add_dense_layer(
    net: &Network,
    units: usize,
    opts: &MorphOptions,
) -> Result<Network, MorphError> {
    let mut arch = net.arch().clone();
    dense_widths_mut(&mut arch)?.push(units);
    morph_to_with(net, &arch, opts)
}

/// Widens one residual stage of a residual network.
///
/// # Errors
///
/// Returns [`MorphError::BadIndex`] / [`MorphError::NotExpandable`] as the
/// other helpers.
pub fn widen_stage(
    net: &Network,
    stage: usize,
    new_filters: usize,
    opts: &MorphOptions,
) -> Result<Network, MorphError> {
    let mut arch = net.arch().clone();
    match &mut arch.body {
        Body::Residual { blocks } => {
            let len = blocks.len();
            let b = blocks.get_mut(stage).ok_or(MorphError::BadIndex {
                what: "stage".into(),
                index: stage,
                len,
            })?;
            b.filters = new_filters;
        }
        _ => {
            return Err(MorphError::NotExpandable {
                reason: "widen_stage requires a residual network".into(),
            })
        }
    }
    morph_to_with(net, &arch, opts)
}

/// Appends `extra_units` identity residual units to a stage.
///
/// # Errors
///
/// As [`widen_stage`].
pub fn add_residual_units(
    net: &Network,
    stage: usize,
    extra_units: usize,
    opts: &MorphOptions,
) -> Result<Network, MorphError> {
    let mut arch = net.arch().clone();
    match &mut arch.body {
        Body::Residual { blocks } => {
            let len = blocks.len();
            let b = blocks.get_mut(stage).ok_or(MorphError::BadIndex {
                what: "stage".into(),
                index: stage,
                len,
            })?;
            b.units += extra_units;
        }
        _ => {
            return Err(MorphError::NotExpandable {
                reason: "add_residual_units requires a residual network".into(),
            })
        }
    }
    morph_to_with(net, &arch, opts)
}

fn plain_layer_mut(
    arch: &mut Architecture,
    block: usize,
    layer: usize,
) -> Result<&mut ConvLayerSpec, MorphError> {
    match &mut arch.body {
        Body::Plain { blocks, .. } => {
            let len = blocks.len();
            let b = blocks.get_mut(block).ok_or(MorphError::BadIndex {
                what: "block".into(),
                index: block,
                len,
            })?;
            let len = b.layers.len();
            b.layers.get_mut(layer).ok_or(MorphError::BadIndex {
                what: "layer".into(),
                index: layer,
                len,
            })
        }
        _ => Err(MorphError::NotExpandable {
            reason: "conv-layer transformations require a plain convolutional network".into(),
        }),
    }
}

fn dense_widths_mut(arch: &mut Architecture) -> Result<&mut Vec<usize>, MorphError> {
    match &mut arch.body {
        Body::Mlp { hidden } => Ok(hidden),
        Body::Plain { dense, .. } => Ok(dense),
        Body::Residual { .. } => Err(MorphError::NotExpandable {
            reason: "residual networks have no hidden dense layers".into(),
        }),
    }
}

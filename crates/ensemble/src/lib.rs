//! # mn-ensemble
//!
//! Ensemble inference for the MotherNets reproduction: the four methods the
//! paper evaluates trained ensembles with (§3, "Evaluation metrics"):
//!
//! * **Ensemble Averaging (EA)** — mean of member probabilities
//!   ([`combine::ensemble_average`]);
//! * **Voting** — majority vote with probability tie-breaking
//!   ([`combine::vote_labels`]);
//! * **Super Learner (SL)** — a convex combination of members with weights
//!   fit on validation data ([`super_learner::SuperLearner`]);
//! * **Oracle (O)** — correct if any member is correct
//!   ([`combine::oracle_error`]), the specialist-knowledge measure of the
//!   paper's Figure 10.
//!
//! [`evaluate::evaluate_members`] runs all four at once.
//!
//! Serving is a three-layer stack:
//!
//! * [`engine`] — a planned, two-axis parallel executor: member-parallel
//!   fan-out for small batches, data-parallel batch sharding across
//!   replica lanes for large ones, chosen per batch by
//!   [`engine::ExecPolicy::Auto`]. Per-member workspaces make
//!   steady-state serving allocation-free, and results stream into the
//!   same [`MemberPredictions`]/combine machinery. Output is bitwise
//!   identical across plans and thread counts.
//! * [`artifact`] — the `MNE1` ensemble artifact format (manifest +
//!   per-member architecture JSON and `MNW1` weights), so serving
//!   cold-starts from disk via [`engine::InferenceEngine::load`] without
//!   retraining.
//! * [`serve`] — a dynamic-batching [`serve::Server`]: a request queue
//!   plus a micro-batcher that coalesces single-example requests up to a
//!   batch/deadline bound, with per-request latency capture.
//!
//! ## Example
//!
//! ```
//! use mn_ensemble::member::MemberPredictions;
//! use mn_ensemble::evaluate::evaluate_predictions;
//! use mn_tensor::Tensor;
//!
//! let m0 = Tensor::from_vec([2, 2], vec![0.9, 0.1, 0.2, 0.8]);
//! let m1 = Tensor::from_vec([2, 2], vec![0.7, 0.3, 0.4, 0.6]);
//! let preds = MemberPredictions::from_probs(vec![m0, m1]);
//! let labels = vec![0, 1];
//! let eval = evaluate_predictions(&preds, &labels, &preds, &labels);
//! assert_eq!(eval.ea_error, 0.0);
//! assert_eq!(eval.oracle_error, 0.0);
//! ```

pub mod artifact;
pub mod combine;
pub mod diversity;
pub mod engine;
pub mod evaluate;
pub mod member;
pub mod serve;
pub mod super_learner;

pub use artifact::{ArtifactError, EnsembleManifest};
pub use engine::{EngineError, ExecPolicy, InferenceEngine, Plan};
pub use evaluate::{evaluate_members, evaluate_predictions, EnsembleEvaluation};
pub use member::{EnsembleMember, MemberPredictions};
pub use serve::{BatchingConfig, Prediction, ServeError, Server, ServerStats};
pub use super_learner::{SuperLearner, SuperLearnerConfig};

//! # mn-ensemble
//!
//! Ensemble inference for the MotherNets reproduction: the four methods the
//! paper evaluates trained ensembles with (§3, "Evaluation metrics"):
//!
//! * **Ensemble Averaging (EA)** — mean of member probabilities
//!   ([`combine::ensemble_average`]);
//! * **Voting** — majority vote with probability tie-breaking
//!   ([`combine::vote_labels`]);
//! * **Super Learner (SL)** — a convex combination of members with weights
//!   fit on validation data ([`super_learner::SuperLearner`]);
//! * **Oracle (O)** — correct if any member is correct
//!   ([`combine::oracle_error`]), the specialist-knowledge measure of the
//!   paper's Figure 10.
//!
//! [`evaluate::evaluate_members`] runs all four at once.
//!
//! Serving lives in [`engine`]: a batched inference engine that fans each
//! request batch across the members on rayon worker threads, keeps a
//! reusable scratch [`mn_tensor::Workspace`] per member, and streams
//! results into the same [`MemberPredictions`]/combine machinery.
//!
//! ## Example
//!
//! ```
//! use mn_ensemble::member::MemberPredictions;
//! use mn_ensemble::evaluate::evaluate_predictions;
//! use mn_tensor::Tensor;
//!
//! let m0 = Tensor::from_vec([2, 2], vec![0.9, 0.1, 0.2, 0.8]);
//! let m1 = Tensor::from_vec([2, 2], vec![0.7, 0.3, 0.4, 0.6]);
//! let preds = MemberPredictions::from_probs(vec![m0, m1]);
//! let labels = vec![0, 1];
//! let eval = evaluate_predictions(&preds, &labels, &preds, &labels);
//! assert_eq!(eval.ea_error, 0.0);
//! assert_eq!(eval.oracle_error, 0.0);
//! ```

pub mod combine;
pub mod diversity;
pub mod engine;
pub mod evaluate;
pub mod member;
pub mod super_learner;

pub use engine::InferenceEngine;
pub use evaluate::{evaluate_members, evaluate_predictions, EnsembleEvaluation};
pub use member::{EnsembleMember, MemberPredictions};
pub use super_learner::{SuperLearner, SuperLearnerConfig};

//! # mn-ensemble
//!
//! Ensemble inference for the MotherNets reproduction: the four methods the
//! paper evaluates trained ensembles with (§3, "Evaluation metrics"):
//!
//! * **Ensemble Averaging (EA)** — mean of member probabilities
//!   ([`combine::ensemble_average`]);
//! * **Voting** — majority vote with probability tie-breaking
//!   ([`combine::vote_labels`]);
//! * **Super Learner (SL)** — a convex combination of members with weights
//!   fit on validation data ([`super_learner::SuperLearner`]);
//! * **Oracle (O)** — correct if any member is correct
//!   ([`combine::oracle_error`]), the specialist-knowledge measure of the
//!   paper's Figure 10.
//!
//! [`evaluate::evaluate_members`] runs all four at once.
//!
//! Serving is a three-layer stack:
//!
//! * [`engine`] — split into an immutable, `Arc`-shared
//!   [`engine::EnginePlan`] (members/weights, planning logic, artifact
//!   load/save) and cheap per-worker [`engine::EngineSession`]s
//!   (workspaces + replica-lane scratch only), so N workers execute one
//!   copy of the ensemble. Each batch resolves to a plan — member-parallel
//!   fan-out, data-parallel batch sharding, or trunk-shared prefix reuse —
//!   chosen by [`engine::ExecPolicy::Auto`]; results stream into the same
//!   [`MemberPredictions`]/combine machinery. Output is bitwise identical
//!   across plans, sessions, and thread counts. An opt-in
//!   uncertainty-gated cascade ([`engine::ExecPolicy::Cascade`], threshold
//!   from [`engine::calibrate`]) lets confidently-gated examples skip the
//!   full ensemble entirely ([`engine::EngineSession::predict_scored`]).
//!   [`engine::InferenceEngine`] remains as a one-plan-one-session
//!   compatibility facade.
//! * [`artifact`] — the `MNE1` ensemble artifact format (manifest +
//!   per-member architecture JSON and `MNW1` weights), so serving
//!   cold-starts from disk via [`engine::EnginePlan::load`] (zero-init
//!   restore, no RNG) without retraining.
//! * [`serve`] — a sharded, backpressured [`serve::Server`]
//!   ([`serve::ServerBuilder`]): N worker shards, each an
//!   [`engine::EngineSession`] over the shared plan, pull from one
//!   bounded MPMC queue with typed [`serve::ServeError::Overloaded`]
//!   admission control, dynamic micro-batching per shard, per-shard +
//!   aggregate [`serve::ServerStats`], and graceful drain on shutdown.
//!
//! ## Example
//!
//! ```
//! use mn_ensemble::member::MemberPredictions;
//! use mn_ensemble::evaluate::evaluate_predictions;
//! use mn_tensor::Tensor;
//!
//! let m0 = Tensor::from_vec([2, 2], vec![0.9, 0.1, 0.2, 0.8]);
//! let m1 = Tensor::from_vec([2, 2], vec![0.7, 0.3, 0.4, 0.6]);
//! let preds = MemberPredictions::from_probs(vec![m0, m1]);
//! let labels = vec![0, 1];
//! let eval = evaluate_predictions(&preds, &labels, &preds, &labels);
//! assert_eq!(eval.ea_error, 0.0);
//! assert_eq!(eval.oracle_error, 0.0);
//! ```

pub mod artifact;
pub mod combine;
pub mod diversity;
pub mod engine;
pub mod evaluate;
pub mod faults;
pub mod member;
pub mod serve;
pub mod super_learner;

pub use artifact::{ArtifactError, EnsembleManifest};
pub use engine::{
    calibrate, CascadeCalibration, CascadePolicy, Confidence, EngineError, EnginePlan,
    EngineSession, ExecPolicy, InferenceEngine, Plan, ScoredPredictions,
};
pub use evaluate::{evaluate_members, evaluate_predictions, EnsembleEvaluation};
pub use faults::FaultAction;
pub use member::{EnsembleMember, MemberPredictions};
pub use mn_nn::io::WeightEncoding;
pub use serve::{
    BatchingConfig, BrownoutConfig, Prediction, ServeError, Server, ServerBuilder, ServerReport,
    ServerStats,
};
pub use super_learner::{SuperLearner, SuperLearnerConfig};

//! `MNE1`: the ensemble artifact format — how a trained ensemble gets to
//! disk and how a serving process cold-starts from it.
//!
//! An artifact bundles, little-endian:
//!
//! * magic `MNE1`;
//! * `u32` member count;
//! * `u32` manifest length + the [`EnsembleManifest`] as JSON
//!   (combine-rule and training-strategy metadata);
//! * per member: `u32` name length + the member name (UTF-8), then
//!   `u32` section length + a network checkpoint
//!   ([`mn_nn::io::save_network`]: architecture JSON + a weight blob —
//!   full-precision `MNW1`, or quantized `MNQ1` when the artifact was
//!   written through [`save_ensemble_quantized`] with a `f16`/`i8`
//!   [`WeightEncoding`]; the member sections are self-describing, so
//!   loading needs no out-of-band encoding knowledge);
//! * a closing `u32` CRC-32 (IEEE, [`mn_nn::io::crc32`]) over every
//!   preceding byte, verified before any section is parsed — a
//!   bit-flipped artifact fails loudly with
//!   [`ArtifactError::ChecksumMismatch`] instead of cold-starting a
//!   subtly wrong ensemble.
//!
//! Restoring an artifact rebuilds every member network from its own
//! section, so loading needs nothing but the bytes — and produces
//! predictions bitwise identical to the ensemble that was saved (pinned
//! by the `serving_stack` integration suite). `TrainedEnsemble::save` in
//! the `mothernets` crate writes this format;
//! [`crate::engine::InferenceEngine::load`] boots from it.

use std::fmt;
use std::path::Path;

use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};

use mn_nn::io::{crc32, load_network, save_network_quantized, WeightEncoding, WeightsError};

use crate::engine::EngineError;
use crate::faults;
use crate::member::EnsembleMember;

const MAGIC: &[u8; 4] = b"MNE1";

/// Ensemble-level metadata carried alongside the member weights.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct EnsembleManifest {
    /// The combination rule the ensemble was evaluated/served with
    /// (e.g. `"average"`, `"vote"`).
    pub combine: String,
    /// The training strategy that produced the members
    /// (e.g. `"mothernets"`, `"full-data"`), informational.
    pub strategy: String,
}

impl Default for EnsembleManifest {
    fn default() -> Self {
        EnsembleManifest {
            combine: "average".to_string(),
            strategy: "unspecified".to_string(),
        }
    }
}

/// Why an ensemble artifact could not be written or restored.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ArtifactError {
    /// The bytes do not start with the `MNE1` magic.
    BadMagic,
    /// The bytes ended before all sections were read.
    Truncated,
    /// Bytes remain after the last member section (before the checksum).
    TrailingBytes {
        /// Number of unread bytes.
        count: usize,
    },
    /// The artifact's CRC-32 does not match its payload: the bytes were
    /// corrupted since [`save_ensemble`] wrote them. Checked before any
    /// section is parsed.
    ChecksumMismatch {
        /// Checksum stored in the artifact.
        expected: u32,
        /// Checksum of the payload as read.
        actual: u32,
    },
    /// The manifest section is not valid JSON for an
    /// [`EnsembleManifest`].
    BadManifest {
        /// Human-readable detail.
        detail: String,
    },
    /// A member's name section is not valid UTF-8.
    BadName {
        /// Member index within the artifact.
        index: usize,
        /// Human-readable detail.
        detail: String,
    },
    /// The artifact contains zero members.
    EmptyEnsemble,
    /// A member's network checkpoint failed to restore.
    Member {
        /// Member index within the artifact.
        index: usize,
        /// The underlying checkpoint error.
        source: WeightsError,
    },
    /// The restored members cannot form an engine (e.g. mismatched
    /// geometry).
    Rejected {
        /// Human-readable detail.
        detail: String,
    },
    /// Reading or writing the artifact file failed.
    Io {
        /// Human-readable detail (path + OS error).
        detail: String,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::BadMagic => write!(f, "not an MNE1 ensemble artifact"),
            ArtifactError::Truncated => write!(f, "ensemble artifact ended early"),
            ArtifactError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after ensemble artifact")
            }
            ArtifactError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "ensemble artifact checksum mismatch: stored {expected:#010x}, computed {actual:#010x}"
                )
            }
            ArtifactError::BadManifest { detail } => write!(f, "bad manifest: {detail}"),
            ArtifactError::BadName { index, detail } => {
                write!(f, "member {index} has a malformed name: {detail}")
            }
            ArtifactError::EmptyEnsemble => write!(f, "ensemble artifact has no members"),
            ArtifactError::Member { index, source } => {
                write!(f, "member {index} failed to restore: {source}")
            }
            ArtifactError::Rejected { detail } => {
                write!(f, "restored ensemble rejected: {detail}")
            }
            ArtifactError::Io { detail } => write!(f, "artifact I/O failed: {detail}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Member { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<EngineError> for ArtifactError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::EmptyEnsemble => ArtifactError::EmptyEnsemble,
            EngineError::MemberMismatch { detail } => ArtifactError::Rejected { detail },
        }
    }
}

/// Serializes an ensemble (members + manifest) as `MNE1` bytes.
pub fn save_ensemble(members: &[EnsembleMember], manifest: &EnsembleManifest) -> Vec<u8> {
    let refs: Vec<&EnsembleMember> = members.iter().collect();
    save_ensemble_refs(&refs, manifest)
}

/// [`save_ensemble`] with member weights stored under `encoding`
/// (`f16` ≈ 0.5x, `i8` ≈ 0.25x the full-precision artifact bytes). The
/// container layout is unchanged — each member section is a
/// self-describing checkpoint, so [`load_ensemble`] restores either
/// variant transparently, dequantizing into `f32` networks.
///
/// # Errors
///
/// [`ArtifactError::Member`] wrapping [`WeightsError::NonFinite`] when
/// a member holds NaN or ±Inf weights (low-precision encodings cannot
/// represent them; see [`mn_nn::io::save_weights_quantized`]).
pub fn save_ensemble_quantized(
    members: &[EnsembleMember],
    manifest: &EnsembleManifest,
    encoding: WeightEncoding,
) -> Result<Vec<u8>, ArtifactError> {
    let refs: Vec<&EnsembleMember> = members.iter().collect();
    save_ensemble_refs_quantized(&refs, manifest, encoding)
}

/// [`save_ensemble`] over borrowed members — the engine serializes its
/// slots through this without cloning networks.
pub fn save_ensemble_refs(members: &[&EnsembleMember], manifest: &EnsembleManifest) -> Vec<u8> {
    save_ensemble_refs_quantized(members, manifest, WeightEncoding::F32)
        // mn-lint: allow(no-panic-in-serve, reason = "WeightEncoding::F32 never takes the quantization path, which is the only error source in save_ensemble_refs_quantized; the Err arm is statically unreachable")
        .expect("f32 encoding is infallible")
}

/// [`save_ensemble_quantized`] over borrowed members.
///
/// # Errors
///
/// See [`save_ensemble_quantized`].
pub fn save_ensemble_refs_quantized(
    members: &[&EnsembleMember],
    manifest: &EnsembleManifest,
    encoding: WeightEncoding,
) -> Result<Vec<u8>, ArtifactError> {
    // mn-lint: allow(no-panic-in-serve, reason = "serializing an in-memory EnsembleManifest (plain structs, no maps with non-string keys, no custom Serialize) cannot fail; serde_json errors only on those or on I/O, and this writes to a String")
    let manifest_json = serde_json::to_string(manifest).expect("manifest serializes");
    let mut out = Vec::new();
    out.put_slice(MAGIC);
    out.put_u32_le(members.len() as u32);
    out.put_u32_le(manifest_json.len() as u32);
    out.put_slice(manifest_json.as_bytes());
    for (index, m) in members.iter().enumerate() {
        let section = save_network_quantized(&m.network, encoding)
            .map_err(|source| ArtifactError::Member { index, source })?;
        out.put_u32_le(m.name.len() as u32);
        out.put_slice(m.name.as_bytes());
        out.put_u32_le(section.len() as u32);
        out.put_slice(&section);
    }
    let checksum = crc32(&out);
    out.put_u32_le(checksum);
    Ok(out)
}

/// Reads a length-prefixed byte section, advancing `blob`.
fn take_section<'a>(blob: &mut &'a [u8]) -> Result<&'a [u8], ArtifactError> {
    if blob.remaining() < 4 {
        return Err(ArtifactError::Truncated);
    }
    let len = blob.get_u32_le() as usize;
    if blob.remaining() < len {
        return Err(ArtifactError::Truncated);
    }
    let (section, rest) = blob.split_at(len);
    *blob = rest;
    Ok(section)
}

/// Restores an ensemble from `MNE1` bytes.
///
/// # Errors
///
/// Every structural defect maps to a distinct [`ArtifactError`]: wrong
/// magic, truncation at any section boundary, trailing bytes, a
/// malformed manifest, a non-UTF-8 member name, zero members, or a
/// member checkpoint that fails to restore (with its index and
/// underlying [`WeightsError`]).
pub fn load_ensemble(
    blob: &[u8],
) -> Result<(EnsembleManifest, Vec<EnsembleMember>), ArtifactError> {
    // Header (8) plus trailing checksum (4) is the smallest valid artifact.
    if blob.len() < 12 {
        return Err(ArtifactError::Truncated);
    }
    if &blob[..4] != MAGIC {
        return Err(ArtifactError::BadMagic);
    }
    // Verify integrity before parsing: most single-bit flips land inside
    // a member's f32 weight payload, where every section still frames
    // correctly and the ensemble would restore subtly wrong.
    let (payload, stored) = blob.split_at(blob.len() - 4);
    // mn-lint: allow(no-panic-in-serve, reason = "split_at(len - 4) yields exactly a 4-byte tail (the length was bounds-checked above), so the TryInto<[u8; 4]> conversion cannot fail")
    let expected = u32::from_le_bytes(stored.try_into().expect("4-byte checksum"));
    let actual = crc32(payload);
    if expected != actual {
        return Err(ArtifactError::ChecksumMismatch { expected, actual });
    }
    let mut blob = &payload[4..];
    let count = blob.get_u32_le() as usize;
    if count == 0 {
        return Err(ArtifactError::EmptyEnsemble);
    }
    let manifest_bytes = take_section(&mut blob)?;
    let manifest_json =
        std::str::from_utf8(manifest_bytes).map_err(|e| ArtifactError::BadManifest {
            detail: format!("manifest is not UTF-8: {e}"),
        })?;
    let manifest: EnsembleManifest =
        serde_json::from_str(manifest_json).map_err(|e| ArtifactError::BadManifest {
            detail: format!("manifest JSON does not parse: {e}"),
        })?;
    let mut members = Vec::with_capacity(count);
    for index in 0..count {
        let name_bytes = take_section(&mut blob)?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|e| ArtifactError::BadName {
                index,
                detail: format!("name is not UTF-8: {e}"),
            })?
            .to_string();
        let section = take_section(&mut blob)?;
        let network =
            load_network(section).map_err(|source| ArtifactError::Member { index, source })?;
        members.push(EnsembleMember::new(name, network));
    }
    if blob.has_remaining() {
        return Err(ArtifactError::TrailingBytes {
            count: blob.remaining(),
        });
    }
    Ok((manifest, members))
}

/// Writes an `MNE1` artifact file.
///
/// # Errors
///
/// [`ArtifactError::Io`] when the file cannot be written.
pub fn write_ensemble_file(
    path: impl AsRef<Path>,
    members: &[EnsembleMember],
    manifest: &EnsembleManifest,
) -> Result<(), ArtifactError> {
    let path = path.as_ref();
    std::fs::write(path, save_ensemble(members, manifest)).map_err(|e| ArtifactError::Io {
        detail: format!("cannot write {}: {e}", path.display()),
    })
}

/// Writes an `MNE1` artifact file with quantized member weights.
///
/// # Errors
///
/// [`ArtifactError::Io`] when the file cannot be written, else any
/// [`save_ensemble_quantized`] error.
pub fn write_ensemble_file_quantized(
    path: impl AsRef<Path>,
    members: &[EnsembleMember],
    manifest: &EnsembleManifest,
    encoding: WeightEncoding,
) -> Result<(), ArtifactError> {
    let path = path.as_ref();
    let bytes = save_ensemble_quantized(members, manifest, encoding)?;
    std::fs::write(path, bytes).map_err(|e| ArtifactError::Io {
        detail: format!("cannot write {}: {e}", path.display()),
    })
}

/// Reads an `MNE1` artifact file.
///
/// # Errors
///
/// [`ArtifactError::Io`] when the file cannot be read, else any
/// [`load_ensemble`] error.
pub fn read_ensemble_file(
    path: impl AsRef<Path>,
) -> Result<(EnsembleManifest, Vec<EnsembleMember>), ArtifactError> {
    let path = path.as_ref();
    let mut bytes = std::fs::read(path).map_err(|e| ArtifactError::Io {
        detail: format!("cannot read {}: {e}", path.display()),
    })?;
    // Failpoint: Error models an unreadable file, Corrupt models silent
    // on-disk bit rot — which the checksum must turn into a typed error.
    match faults::trigger(faults::sites::ARTIFACT_READ) {
        Some(faults::Injected::Error) => {
            return Err(ArtifactError::Io {
                detail: format!("injected fault: {}", faults::sites::ARTIFACT_READ),
            });
        }
        Some(faults::Injected::Corrupt) => {
            let mid = bytes.len() / 2;
            if let Some(b) = bytes.get_mut(mid) {
                *b ^= 0x10;
            }
        }
        None => {}
    }
    load_ensemble(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultAction;
    use mn_nn::arch::{Architecture, InputSpec};
    use mn_nn::Network;

    fn members() -> Vec<EnsembleMember> {
        let arch = Architecture::mlp("m", InputSpec::new(1, 2, 2), 3, vec![4]);
        (0..3u64)
            .map(|s| EnsembleMember::new(format!("m{s}"), Network::seeded(&arch, s)))
            .collect()
    }

    /// Recomputes the trailing CRC after a deliberate payload edit, so a
    /// test can reach the structural error *behind* the checksum.
    fn reseal(bytes: &mut [u8]) {
        let payload_len = bytes.len() - 4;
        let fixed = crc32(&bytes[..payload_len]);
        bytes[payload_len..].copy_from_slice(&fixed.to_le_bytes());
    }

    #[test]
    fn round_trip_preserves_manifest_names_and_weights() {
        let original = members();
        let manifest = EnsembleManifest {
            combine: "vote".into(),
            strategy: "mothernets".into(),
        };
        let bytes = save_ensemble(&original, &manifest);
        let (got_manifest, got_members) = load_ensemble(&bytes).unwrap();
        assert_eq!(got_manifest, manifest);
        assert_eq!(got_members.len(), original.len());
        for (a, b) in original.iter().zip(&got_members) {
            assert_eq!(a.name, b.name);
            assert_eq!(
                mn_nn::io::save_weights(&a.network),
                mn_nn::io::save_weights(&b.network),
                "weights changed through the artifact"
            );
        }
    }

    #[test]
    fn corruption_yields_distinct_typed_errors() {
        let bytes = save_ensemble(&members(), &EnsembleManifest::default());
        assert!(matches!(
            load_ensemble(b"xx"),
            Err(ArtifactError::Truncated)
        ));
        assert!(matches!(
            load_ensemble(b"JUNKJUNKJUNK"),
            Err(ArtifactError::BadMagic)
        ));
        // Truncation clips the stored checksum, so it reads as corruption.
        assert!(matches!(
            load_ensemble(&bytes[..bytes.len() - 3]),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));
        // Naive trailing bytes shift the checksum off its slot: corruption.
        let mut trailing = bytes.clone();
        trailing.extend_from_slice(&[0, 0]);
        assert!(matches!(
            load_ensemble(&trailing),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));
        // Trailing bytes with a re-sealed checksum: the structural check
        // still catches the extra payload.
        let mut padded = bytes.clone();
        let crc_at = padded.len() - 4;
        padded.splice(crc_at..crc_at, [0, 0]);
        reseal(&mut padded);
        assert!(matches!(
            load_ensemble(&padded),
            Err(ArtifactError::TrailingBytes { count: 2 })
        ));
        let mut empty = bytes.clone();
        empty[4..8].copy_from_slice(&0u32.to_le_bytes());
        reseal(&mut empty);
        assert!(matches!(
            load_ensemble(&empty),
            Err(ArtifactError::EmptyEnsemble)
        ));
        // Smash the manifest JSON (re-sealed, else the checksum fires first).
        let mut bad_manifest = bytes.clone();
        bad_manifest[12] = b'!';
        reseal(&mut bad_manifest);
        assert!(matches!(
            load_ensemble(&bad_manifest),
            Err(ArtifactError::BadManifest { .. })
        ));
    }

    #[test]
    fn member_restore_failures_carry_index_and_source() {
        let bytes = save_ensemble(&members(), &EnsembleManifest::default());
        // Flip a byte inside the last member's weight payload but re-seal
        // the *outer* checksum: the artifact frames correctly, the outer
        // CRC passes, and the member's own MNW1 checksum reports the
        // corruption with its index.
        let mut bad_member = bytes.clone();
        let inside_member = bad_member.len() - 12; // inside member 2's MNW1 tail
        bad_member[inside_member] ^= 0xFF;
        reseal(&mut bad_member);
        match load_ensemble(&bad_member) {
            Err(ArtifactError::Member { index, source }) => {
                assert_eq!(index, 2);
                assert!(
                    matches!(source, WeightsError::ChecksumMismatch { .. }),
                    "expected inner checksum failure, got {source:?}"
                );
            }
            other => panic!("expected Member error for index 2, got {other:?}"),
        }
    }

    #[test]
    fn checksum_detects_artifact_bit_flip() {
        let bytes = save_ensemble(&members(), &EnsembleManifest::default());
        // A single-bit flip anywhere in the payload — here inside an f32
        // weight, where every section still frames correctly — must fail
        // loudly instead of cold-starting a subtly wrong ensemble.
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        match load_ensemble(&flipped) {
            Err(ArtifactError::ChecksumMismatch { expected, actual }) => {
                assert_ne!(expected, actual);
                assert_eq!(expected, crc32(&bytes[..bytes.len() - 4]));
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        // The clean bytes still restore.
        load_ensemble(&bytes).unwrap();
    }

    #[test]
    fn artifact_read_failpoint_injects_io_error_and_corruption() {
        let dir = std::env::temp_dir().join("mn-artifact-fault-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("faulty.mne1");
        write_ensemble_file(&path, &members(), &EnsembleManifest::default()).unwrap();

        let scope = faults::scope();
        scope.enable_times(faults::sites::ARTIFACT_READ, FaultAction::Error, 1);
        assert!(matches!(
            read_ensemble_file(&path),
            Err(ArtifactError::Io { .. })
        ));
        // One-shot: the next read is clean.
        read_ensemble_file(&path).unwrap();

        scope.enable_times(faults::sites::ARTIFACT_READ, FaultAction::Corrupt, 1);
        assert!(matches!(
            read_ensemble_file(&path),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));
        assert_eq!(faults::fired(faults::sites::ARTIFACT_READ), 2);
        drop(scope);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_round_trip_and_io_errors() {
        let dir = std::env::temp_dir().join("mn-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ensemble.mne1");
        write_ensemble_file(&path, &members(), &EnsembleManifest::default()).unwrap();
        let (manifest, got) = read_ensemble_file(&path).unwrap();
        assert_eq!(manifest, EnsembleManifest::default());
        assert_eq!(got.len(), 3);
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            read_ensemble_file(&path),
            Err(ArtifactError::Io { .. })
        ));
    }
}

//! Ensemble diversity measures.
//!
//! The paper reads the improving oracle error of Figure 10 as evidence
//! that "the overall diversity of the ensemble keeps on improving, i.e.,
//! newly introduced networks provide different predictions from existing
//! ones" (§3). These metrics quantify that directly:
//!
//! * [`pairwise_disagreement`] — the classic diversity measure: the mean,
//!   over member pairs, of the fraction of examples on which the two
//!   members predict different labels;
//! * [`mean_prediction_entropy`] — the mean entropy of the per-example
//!   vote distribution, 0 when all members always agree.

use mn_tensor::ops;

use crate::member::MemberPredictions;

/// Mean pairwise disagreement rate in `[0, 1]`.
///
/// Returns 0 for a single-member ensemble (no pairs).
pub fn pairwise_disagreement(preds: &MemberPredictions) -> f64 {
    let m = preds.num_members();
    if m < 2 {
        return 0.0;
    }
    let labels: Vec<Vec<usize>> = preds.probs().iter().map(ops::argmax_rows).collect();
    let n = preds.num_examples();
    let mut total = 0.0f64;
    let mut pairs = 0usize;
    for i in 0..m {
        for j in (i + 1)..m {
            let disagree = labels[i]
                .iter()
                .zip(&labels[j])
                .filter(|(a, b)| a != b)
                .count();
            total += disagree as f64 / n as f64;
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// Mean (over examples) entropy of the member-vote distribution, in nats.
///
/// 0 when every member casts the same vote on every example; grows as the
/// ensemble spreads its votes.
pub fn mean_prediction_entropy(preds: &MemberPredictions) -> f64 {
    let m = preds.num_members() as f64;
    let k = preds.num_classes();
    let n = preds.num_examples();
    let labels: Vec<Vec<usize>> = preds.probs().iter().map(ops::argmax_rows).collect();
    let mut total = 0.0f64;
    for i in 0..n {
        let mut votes = vec![0usize; k];
        for member in &labels {
            votes[member[i]] += 1;
        }
        let mut h = 0.0f64;
        for &v in &votes {
            if v > 0 {
                let p = v as f64 / m;
                h -= p * p.ln();
            }
        }
        total += h;
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_tensor::Tensor;

    fn one_hot(rows: &[usize], k: usize) -> Tensor {
        let mut t = Tensor::zeros([rows.len(), k]);
        for (i, &c) in rows.iter().enumerate() {
            *t.at2_mut(i, c) = 1.0;
        }
        t
    }

    #[test]
    fn identical_members_have_zero_diversity() {
        let a = one_hot(&[0, 1, 2], 3);
        let preds = MemberPredictions::from_probs(vec![a.clone(), a.clone(), a]);
        assert_eq!(pairwise_disagreement(&preds), 0.0);
        assert_eq!(mean_prediction_entropy(&preds), 0.0);
    }

    #[test]
    fn fully_disagreeing_members() {
        let a = one_hot(&[0, 0], 2);
        let b = one_hot(&[1, 1], 2);
        let preds = MemberPredictions::from_probs(vec![a, b]);
        assert_eq!(pairwise_disagreement(&preds), 1.0);
        // Two-way even split: entropy = ln 2.
        assert!((mean_prediction_entropy(&preds) - (2.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn partial_disagreement_is_fractional() {
        let a = one_hot(&[0, 0, 0, 0], 2);
        let b = one_hot(&[0, 0, 1, 1], 2);
        let preds = MemberPredictions::from_probs(vec![a, b]);
        assert!((pairwise_disagreement(&preds) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn single_member_is_degenerate() {
        let preds = MemberPredictions::from_probs(vec![one_hot(&[0], 2)]);
        assert_eq!(pairwise_disagreement(&preds), 0.0);
        assert_eq!(mean_prediction_entropy(&preds), 0.0);
    }

    #[test]
    fn disagreement_averages_over_pairs() {
        // Three members: two identical, one fully different.
        let a = one_hot(&[0, 0], 2);
        let b = one_hot(&[0, 0], 2);
        let c = one_hot(&[1, 1], 2);
        let preds = MemberPredictions::from_probs(vec![a, b, c]);
        // Pairs: (a,b)=0, (a,c)=1, (b,c)=1 -> mean 2/3.
        assert!((pairwise_disagreement(&preds) - 2.0 / 3.0).abs() < 1e-9);
    }
}

//! Ensemble diversity measures.
//!
//! The paper reads the improving oracle error of Figure 10 as evidence
//! that "the overall diversity of the ensemble keeps on improving, i.e.,
//! newly introduced networks provide different predictions from existing
//! ones" (§3). These metrics quantify that directly:
//!
//! * [`pairwise_disagreement`] — the classic diversity measure: the mean,
//!   over member pairs, of the fraction of examples on which the two
//!   members predict different labels;
//! * [`mean_prediction_entropy`] — the mean entropy of the per-example
//!   vote distribution, 0 when all members always agree;
//! * [`per_example_disagreement`] — the same pairwise signal resolved to
//!   individual examples, the per-request uncertainty view the serving
//!   cascade builds on.
//!
//! **Degenerate-input convention:** every metric here returns `0.0` —
//! never NaN — when there is nothing to measure: a single-member
//! ensemble has no pairs to disagree, and an empty batch has no examples
//! to average over. A silent NaN would poison any downstream mean (and,
//! since the cascade work, any confidence gate) the moment it is folded
//! in, so the degenerate cases are pinned to zero by unit tests.

use mn_tensor::ops;

use crate::member::MemberPredictions;

/// Mean pairwise disagreement rate in `[0, 1]`.
///
/// Returns `0.0` for a single-member ensemble (no pairs) and for an
/// empty batch (no examples) — see the module-level degenerate-input
/// convention.
pub fn pairwise_disagreement(preds: &MemberPredictions) -> f64 {
    let m = preds.num_members();
    let n = preds.num_examples();
    if m < 2 || n == 0 {
        return 0.0;
    }
    let labels: Vec<Vec<usize>> = preds.probs().iter().map(ops::argmax_rows).collect();
    let mut total = 0.0f64;
    let mut pairs = 0usize;
    for i in 0..m {
        for j in (i + 1)..m {
            let disagree = labels[i]
                .iter()
                .zip(&labels[j])
                .filter(|(a, b)| a != b)
                .count();
            total += disagree as f64 / n as f64;
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// Per-example pairwise disagreement: for each example, the fraction of
/// member pairs that predict different labels for it, in `[0, 1]`.
///
/// This is [`pairwise_disagreement`] before averaging over the batch
/// (the batch mean of this vector equals it exactly) — the per-request
/// view of the ensemble's uncertainty signal: an example most pairs
/// disagree on is exactly the kind a cascade's gate member cannot be
/// trusted alone on.
///
/// A single-member ensemble has no pairs, so every example scores `0.0`.
pub fn per_example_disagreement(preds: &MemberPredictions) -> Vec<f64> {
    let m = preds.num_members();
    let n = preds.num_examples();
    if m < 2 {
        return vec![0.0; n];
    }
    let labels: Vec<Vec<usize>> = preds.probs().iter().map(ops::argmax_rows).collect();
    let pairs = (m * (m - 1) / 2) as f64;
    (0..n)
        .map(|i| {
            let mut disagree = 0usize;
            for a in 0..m {
                for b in (a + 1)..m {
                    if labels[a][i] != labels[b][i] {
                        disagree += 1;
                    }
                }
            }
            disagree as f64 / pairs
        })
        .collect()
}

/// Mean (over examples) entropy of the member-vote distribution, in nats.
///
/// 0 when every member casts the same vote on every example; grows as the
/// ensemble spreads its votes. Returns `0.0` for an empty batch (no
/// examples) — see the module-level degenerate-input convention.
pub fn mean_prediction_entropy(preds: &MemberPredictions) -> f64 {
    let m = preds.num_members() as f64;
    let k = preds.num_classes();
    let n = preds.num_examples();
    if n == 0 {
        return 0.0;
    }
    let labels: Vec<Vec<usize>> = preds.probs().iter().map(ops::argmax_rows).collect();
    let mut total = 0.0f64;
    for i in 0..n {
        let mut votes = vec![0usize; k];
        for member in &labels {
            votes[member[i]] += 1;
        }
        let mut h = 0.0f64;
        for &v in &votes {
            if v > 0 {
                let p = v as f64 / m;
                h -= p * p.ln();
            }
        }
        total += h;
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_tensor::Tensor;

    fn one_hot(rows: &[usize], k: usize) -> Tensor {
        let mut t = Tensor::zeros([rows.len(), k]);
        for (i, &c) in rows.iter().enumerate() {
            *t.at2_mut(i, c) = 1.0;
        }
        t
    }

    #[test]
    fn identical_members_have_zero_diversity() {
        let a = one_hot(&[0, 1, 2], 3);
        let preds = MemberPredictions::from_probs(vec![a.clone(), a.clone(), a]);
        assert_eq!(pairwise_disagreement(&preds), 0.0);
        assert_eq!(mean_prediction_entropy(&preds), 0.0);
    }

    #[test]
    fn fully_disagreeing_members() {
        let a = one_hot(&[0, 0], 2);
        let b = one_hot(&[1, 1], 2);
        let preds = MemberPredictions::from_probs(vec![a, b]);
        assert_eq!(pairwise_disagreement(&preds), 1.0);
        // Two-way even split: entropy = ln 2.
        assert!((mean_prediction_entropy(&preds) - (2.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn partial_disagreement_is_fractional() {
        let a = one_hot(&[0, 0, 0, 0], 2);
        let b = one_hot(&[0, 0, 1, 1], 2);
        let preds = MemberPredictions::from_probs(vec![a, b]);
        assert!((pairwise_disagreement(&preds) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn single_member_is_degenerate() {
        let preds = MemberPredictions::from_probs(vec![one_hot(&[0], 2)]);
        assert_eq!(pairwise_disagreement(&preds), 0.0);
        assert_eq!(mean_prediction_entropy(&preds), 0.0);
    }

    #[test]
    fn degenerate_inputs_return_zero_not_nan() {
        // Empty batch, multi-member: the per-pair division by n and the
        // final division by n used to produce 0/0 = NaN, which would
        // silently poison any downstream mean or cascade confidence.
        let empty = MemberPredictions::from_probs(vec![Tensor::zeros([0, 3]); 3]);
        assert_eq!(pairwise_disagreement(&empty), 0.0);
        assert_eq!(mean_prediction_entropy(&empty), 0.0);
        assert!(per_example_disagreement(&empty).is_empty());

        // Single member, empty batch: both degeneracies at once.
        let solo_empty = MemberPredictions::from_probs(vec![Tensor::zeros([0, 2])]);
        assert_eq!(pairwise_disagreement(&solo_empty), 0.0);
        assert_eq!(mean_prediction_entropy(&solo_empty), 0.0);

        // Single member, non-empty batch: no pairs to divide by.
        let solo = MemberPredictions::from_probs(vec![one_hot(&[0, 1], 2)]);
        assert_eq!(pairwise_disagreement(&solo), 0.0);
        assert_eq!(per_example_disagreement(&solo), vec![0.0, 0.0]);
    }

    #[test]
    fn per_example_disagreement_resolves_the_pairwise_mean() {
        // Three members: two identical, one different on example 1 only.
        let a = one_hot(&[0, 0], 2);
        let b = one_hot(&[0, 0], 2);
        let c = one_hot(&[0, 1], 2);
        let preds = MemberPredictions::from_probs(vec![a, b, c]);
        let per = per_example_disagreement(&preds);
        // Example 0: all agree. Example 1: pairs (a,c) and (b,c) of 3.
        assert_eq!(per[0], 0.0);
        assert!((per[1] - 2.0 / 3.0).abs() < 1e-12);
        // The batch mean of the per-example vector is the scalar metric.
        let mean = per.iter().sum::<f64>() / per.len() as f64;
        assert!((mean - pairwise_disagreement(&preds)).abs() < 1e-12);
    }

    #[test]
    fn disagreement_averages_over_pairs() {
        // Three members: two identical, one fully different.
        let a = one_hot(&[0, 0], 2);
        let b = one_hot(&[0, 0], 2);
        let c = one_hot(&[1, 1], 2);
        let preds = MemberPredictions::from_probs(vec![a, b, c]);
        // Pairs: (a,b)=0, (a,c)=1, (b,c)=1 -> mean 2/3.
        assert!((pairwise_disagreement(&preds) - 2.0 / 3.0).abs() < 1e-9);
    }
}

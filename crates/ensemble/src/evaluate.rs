//! One-stop ensemble evaluation under all four inference methods.

use mn_nn::metrics::error_rate;
use mn_tensor::ops;

use crate::combine::{ensemble_average_labels, oracle_error, vote_labels};
use crate::member::{EnsembleMember, MemberPredictions};
use crate::super_learner::{SuperLearner, SuperLearnerConfig};

/// Test error rates of an ensemble under the paper's four inference
/// methods, plus each member's individual error.
#[derive(Clone, Debug)]
pub struct EnsembleEvaluation {
    /// Ensemble-averaging error.
    pub ea_error: f32,
    /// Majority-voting error.
    pub vote_error: f32,
    /// Super-learner error (weights fit on the validation set).
    pub sl_error: f32,
    /// Oracle error.
    pub oracle_error: f32,
    /// Individual member errors, in member order.
    pub member_errors: Vec<f32>,
    /// The fitted super-learner weights.
    pub sl_weights: Vec<f32>,
}

impl EnsembleEvaluation {
    /// The best (lowest) combined error across EA / Vote / SL.
    pub fn best_combined(&self) -> f32 {
        self.ea_error.min(self.vote_error).min(self.sl_error)
    }

    /// Mean individual member error.
    pub fn mean_member_error(&self) -> f32 {
        self.member_errors.iter().sum::<f32>() / self.member_errors.len() as f32
    }
}

/// Evaluates pre-collected test/validation predictions.
///
/// The super learner is fit on `(val_preds, val_labels)` and applied to the
/// test predictions, mirroring proper stacked generalization (no test
/// leakage).
///
/// # Panics
///
/// Panics on label/prediction count mismatches.
pub fn evaluate_predictions(
    test_preds: &MemberPredictions,
    test_labels: &[usize],
    val_preds: &MemberPredictions,
    val_labels: &[usize],
) -> EnsembleEvaluation {
    assert_eq!(
        test_preds.num_members(),
        val_preds.num_members(),
        "test/val member counts differ"
    );
    let sl = SuperLearner::fit(val_preds, val_labels, &SuperLearnerConfig::default());
    let member_errors = test_preds
        .probs()
        .iter()
        .map(|p| error_rate(&ops::argmax_rows(p), test_labels))
        .collect();
    EnsembleEvaluation {
        ea_error: error_rate(&ensemble_average_labels(test_preds), test_labels),
        vote_error: error_rate(&vote_labels(test_preds), test_labels),
        sl_error: error_rate(&sl.predict(test_preds), test_labels),
        oracle_error: oracle_error(test_preds, test_labels),
        member_errors,
        sl_weights: sl.weights().to_vec(),
    }
}

/// Convenience wrapper: collects predictions from members and evaluates.
///
/// # Panics
///
/// As [`evaluate_predictions`]; additionally panics if `members` is empty.
pub fn evaluate_members(
    members: &mut [EnsembleMember],
    x_test: &mn_tensor::Tensor,
    test_labels: &[usize],
    x_val: &mn_tensor::Tensor,
    val_labels: &[usize],
    batch_size: usize,
) -> EnsembleEvaluation {
    let test_preds = MemberPredictions::collect(members, x_test, batch_size);
    let val_preds = MemberPredictions::collect(members, x_val, batch_size);
    evaluate_predictions(&test_preds, test_labels, &val_preds, val_labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_tensor::Tensor;

    fn synthetic_preds() -> (MemberPredictions, Vec<usize>) {
        // 4 examples, 2 classes; member 0 gets 3/4 right, member 1 gets
        // 2/4 right with different mistakes.
        let m0 = Tensor::from_vec([4, 2], vec![0.9, 0.1, 0.8, 0.2, 0.3, 0.7, 0.4, 0.6]);
        let m1 = Tensor::from_vec([4, 2], vec![0.2, 0.8, 0.7, 0.3, 0.6, 0.4, 0.2, 0.8]);
        let labels = vec![0, 0, 1, 1];
        (MemberPredictions::from_probs(vec![m0, m1]), labels)
    }

    #[test]
    fn evaluation_fields_consistent() {
        let (preds, labels) = synthetic_preds();
        let eval = evaluate_predictions(&preds, &labels, &preds, &labels);
        // member 0 errs on example 3... check expected values:
        // m0 argmax: [0, 0, 1, 1] -> 0 errors.
        // m1 argmax: [1, 0, 0, 1] -> 2 errors.
        assert_eq!(eval.member_errors, vec![0.0, 0.5]);
        // Oracle: every example has a correct member.
        assert_eq!(eval.oracle_error, 0.0);
        assert!(eval.best_combined() <= 0.5);
        assert!((eval.mean_member_error() - 0.25).abs() < 1e-6);
        let wsum: f32 = eval.sl_weights.iter().sum();
        assert!((wsum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn oracle_bounds_all_methods() {
        let (preds, labels) = synthetic_preds();
        let eval = evaluate_predictions(&preds, &labels, &preds, &labels);
        assert!(eval.oracle_error <= eval.ea_error + 1e-6);
        assert!(eval.oracle_error <= eval.vote_error + 1e-6);
        assert!(eval.oracle_error <= eval.sl_error + 1e-6);
    }

    #[test]
    fn sl_beats_or_matches_uniform_when_members_unequal() {
        let (preds, labels) = synthetic_preds();
        let eval = evaluate_predictions(&preds, &labels, &preds, &labels);
        // SL fit on the same data must be at least as good as EA here.
        assert!(eval.sl_error <= eval.ea_error + 1e-6);
        // And it should put more weight on the stronger member 0.
        assert!(eval.sl_weights[0] > eval.sl_weights[1]);
    }
}

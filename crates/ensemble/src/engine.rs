//! The two-layer inference engine: an immutable, shareable [`EnginePlan`]
//! and cheap per-worker [`EngineSession`]s.
//!
//! Serving an ensemble means paying the "combine many members per query"
//! cost on every request — and a server only scales past one worker if
//! additional workers do **not** mean additional copies of every member's
//! weights. The engine therefore splits into two layers:
//!
//! * [`EnginePlan`] — everything immutable: the members (weights), input
//!   geometry, mini-batch size, default execution policy, the planning
//!   logic ([`EnginePlan::resolve`]), and artifact load/save. A plan is
//!   wrapped in an [`Arc`] and shared by every worker; eval-mode forward
//!   passes read it through `&self` only (see
//!   [`mn_nn::Network::forward_eval_with`]), so N workers execute **one**
//!   copy of the ensemble concurrently.
//! * [`EngineSession`] — everything mutable and per-worker: workspaces
//!   (activations, im2col scratch, GEMM packing buffers), replica-lane
//!   scratch for data-parallel plans, and staging buffers. Sessions are
//!   cheap — a handful of empty buffer pools — so a server spins up one
//!   per shard without cloning a single weight.
//!
//! [`InferenceEngine`] remains as a thin compatibility facade: one plan
//! plus one session, with the same API surface earlier PRs exposed, so
//! existing call sites keep working during migration.
//!
//! ## Execution plans
//!
//! Each request batch resolves to a plan along one of the parallelism
//! axes:
//!
//! * **Member-parallel** ([`Plan::MemberParallel`]) — each member runs the
//!   whole batch on its own worker slot (shared member + private
//!   [`Workspace`]), fanned across rayon worker threads. The right axis
//!   when the member count already saturates the machine, and for small
//!   batches.
//! * **Data-parallel** ([`Plan::DataParallel`]) — the batch is split into
//!   contiguous shards ([`mn_tensor::chunking::shard_ranges`]); each shard
//!   runs on its own *replica lane* (a per-member set of workspaces — the
//!   weights stay shared), and per-member outputs are stitched back in
//!   example order. Lanes are materialized lazily, so a session that
//!   never runs a data-parallel plan never pays the extra scratch.
//! * **Trunk-shared** ([`Plan::TrunkShared`]) — members hatched from one
//!   MotherNet share a common prefix of bitwise-identical layers (the
//!   paper's hatching step). The plan detects that prefix at build time
//!   ([`EnginePlan::trunk_len`]), evaluates it **once** per mini-batch
//!   chunk, and fans only the divergent tails across members — roughly
//!   `1/K` of the trunk FLOPs for a `K`-member ensemble with a deep
//!   trunk. Shards compose with this axis exactly as in data-parallel.
//! * **Cascade** ([`Plan::Cascade`]) — an *early-exit* axis orthogonal to
//!   the three above: one cheap gate pass (member 0 — over the shared
//!   trunk when the plan has one) scores every example's uncertainty
//!   first; examples the gate is confident about return its answer
//!   immediately, and only the uncertain remainder is re-fanned across
//!   the full ensemble, restitched in example order. Unlike the other
//!   axes this plan trades *work* for latency, so it is opt-in
//!   ([`ExecPolicy::Cascade`]) and surfaced through
//!   [`EngineSession::predict_scored`]; the threshold should come from
//!   [`calibrate`] against held-out data. At threshold 0 the cascade
//!   never exits early and is bitwise identical to the flat plans.
//!
//! [`ExecPolicy::Auto`] (the default) prefers the trunk-shared axis
//! whenever the detected trunk contains parameterized work, and otherwise
//! picks between the flat axes per batch from batch size × member count ×
//! worker-thread count; [`EnginePlan::resolve`] exposes the decision for
//! inspection and tests.
//!
//! ## Determinism
//!
//! Output is bitwise identical across execution plans, shard counts,
//! session counts, thread counts, and the old-vs-new API: every tensor
//! kernel partitions work over disjoint output regions with a fixed
//! per-element accumulation order, and each example's forward pass is
//! independent of its batch neighbors. The `engine_determinism`
//! integration suite pins this property.
//!
//! ## Cold start
//!
//! [`EnginePlan::load`] boots a plan straight from an `MNE1` ensemble
//! artifact on disk (see [`crate::artifact`]) — no retraining, zero-init
//! construction (weights are restored, never sampled), and
//! bitwise-identical predictions to the ensemble that saved it.
//!
//! ## Example
//!
//! ```
//! use mn_ensemble::engine::EnginePlan;
//! use mn_ensemble::EnsembleMember;
//! use mn_nn::arch::{Architecture, InputSpec};
//! use mn_nn::Network;
//! use mn_tensor::Tensor;
//!
//! let arch = Architecture::mlp("m", InputSpec::new(1, 2, 2), 3, vec![4]);
//! let members: Vec<EnsembleMember> = (0..4)
//!     .map(|s| EnsembleMember::new(format!("m{s}"), Network::seeded(&arch, s)))
//!     .collect();
//! let plan = EnginePlan::new(members, 32).unwrap().into_shared();
//! // Two sessions over one plan: no weight clones, independent scratch.
//! let mut a = plan.session();
//! let mut b = plan.session();
//! let x = Tensor::zeros([5, 1, 2, 2]);
//! assert_eq!(a.predict_labels(&x), b.predict_labels(&x));
//! ```

use std::fmt;
use std::path::Path;
use std::sync::Arc;

use mn_nn::arch::InputSpec;
use mn_tensor::chunking::shard_ranges;
use mn_tensor::{ops, Tensor, Workspace};

use rayon::prelude::*;

use crate::artifact::{self, ArtifactError, EnsembleManifest};
use crate::combine;
use crate::member::{EnsembleMember, MemberPredictions};

/// Why an engine plan could not be constructed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EngineError {
    /// No members were supplied.
    EmptyEnsemble,
    /// Members disagree on input geometry or class count, so they cannot
    /// serve the same requests.
    MemberMismatch {
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::EmptyEnsemble => write!(f, "inference engine needs at least one member"),
            EngineError::MemberMismatch { detail } => {
                write!(f, "ensemble members are not servable together: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// The per-example confidence signal a cascade gates on, computed from
/// the gate member's class probabilities. The *uncertainty* of an example
/// is `1 - confidence`, so both metrics live in `[0, 1]` with 0 meaning
/// "the gate is sure".
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Confidence {
    /// Confidence = the largest class probability
    /// ([`combine::max_prob_confidence`]). 1 when the gate's distribution
    /// is a one-hot, `1/K` when it is uniform.
    #[default]
    MaxProb,
    /// Confidence = top-1 minus top-2 probability
    /// ([`combine::margin_confidence`]). 0 when the two best classes tie
    /// — maximally ambiguous even if the max-prob is large.
    Margin,
}

impl Confidence {
    /// The uncertainty (`1 - confidence`) of one probability row.
    pub fn uncertainty(&self, row: &[f32]) -> f32 {
        let mut top1 = f32::NEG_INFINITY;
        let mut top2 = f32::NEG_INFINITY;
        for &p in row {
            if p > top1 {
                top2 = top1;
                top1 = p;
            } else if p > top2 {
                top2 = p;
            }
        }
        match self {
            Confidence::MaxProb => 1.0 - top1,
            Confidence::Margin => {
                if row.len() < 2 {
                    1.0 - top1
                } else {
                    1.0 - (top1 - top2)
                }
            }
        }
    }

    /// Human-readable label (used by benches and reports).
    pub fn label(&self) -> &'static str {
        match self {
            Confidence::MaxProb => "max-prob",
            Confidence::Margin => "margin",
        }
    }
}

/// Uncertainty-gated cascade configuration: which confidence signal the
/// gate member is scored with, and the uncertainty threshold below which
/// an example exits early with the gate's answer alone.
///
/// An example **exits early** iff its gate uncertainty is strictly below
/// `threshold`; everything else **escalates** to the full ensemble. The
/// two ends of the knob are exact:
///
/// * `threshold = 0.0` — never exit early (uncertainty is never below
///   zero). The cascade output is **bitwise identical** to the flat and
///   trunk-shared plans, pinned by proptests.
/// * `threshold = 1.0` — trust the gate on everything except completely
///   ambiguous examples (uncertainty exactly 1.0 — e.g. a perfect top-2
///   tie under [`Confidence::Margin`] — still escalates).
///
/// Thresholds between the ends should come from
/// [`calibrate`](crate::engine::calibrate) against held-out data, not
/// from guessing.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct CascadePolicy {
    /// Confidence signal the gate is scored with.
    pub metric: Confidence,
    /// Gate uncertainty below which an example exits early. `0.0`
    /// disables early exit entirely (full-ensemble bitwise identity).
    pub threshold: f32,
}

impl CascadePolicy {
    /// A max-prob cascade at `threshold` (the common case).
    pub fn max_prob(threshold: f32) -> Self {
        CascadePolicy {
            metric: Confidence::MaxProb,
            threshold,
        }
    }

    /// A margin cascade at `threshold`.
    pub fn margin(threshold: f32) -> Self {
        CascadePolicy {
            metric: Confidence::Margin,
            threshold,
        }
    }
}

/// How a session chooses its parallelism axis (see module docs).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum ExecPolicy {
    /// Pick per batch from batch size × member count × thread count.
    #[default]
    Auto,
    /// Always fan members across threads, each running the whole batch.
    MemberParallel,
    /// Always shard the batch across this many replica lanes (clamped to
    /// at least 1, to the batch size, and to [`EnginePlan::max_shards`]).
    DataParallel {
        /// Number of batch shards / replica lanes.
        shards: usize,
    },
    /// Always evaluate the shared member prefix once per mini-batch chunk
    /// and fan only the divergent tails across members, over this many
    /// batch shards (clamped like [`ExecPolicy::DataParallel`], but a
    /// single shard still shares the trunk rather than falling back to
    /// the flat member-parallel plan). Correct — and bitwise identical to
    /// the flat plans — even when the detected trunk is empty; it just
    /// saves nothing then.
    TrunkShared {
        /// Number of batch shards / replica lanes.
        shards: usize,
    },
    /// Uncertainty-gated cascade: score each mini-batch with one cheap
    /// gate pass (the shared trunk + member 0's tail when the plan shares
    /// a parameterized trunk, member 0's whole network otherwise), return
    /// immediately for examples whose gate uncertainty clears
    /// [`CascadePolicy::threshold`], and re-fan only the uncertain
    /// remainder across the full ensemble — restitched in example order.
    /// Surfaced through [`EngineSession::predict_scored`]; the
    /// member-probability APIs ([`EngineSession::predict`] and friends)
    /// need every member and therefore always run fully escalated.
    Cascade(CascadePolicy),
}

/// The resolved execution plan for one request batch.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Plan {
    /// One task per member over the full batch.
    MemberParallel,
    /// `shards` tasks, each running every member over one batch shard.
    DataParallel {
        /// Number of batch shards actually used.
        shards: usize,
    },
    /// `shards` tasks, each evaluating the shared trunk once per
    /// mini-batch chunk and fanning the divergent member tails.
    TrunkShared {
        /// Number of batch shards actually used.
        shards: usize,
    },
    /// One gate pass over the batch, then a partial re-fan of the
    /// uncertain remainder to the full ensemble.
    Cascade(CascadePolicy),
}

/// Per-example scored output of [`EngineSession::predict_scored`]: final
/// probabilities plus the uncertainty/escalation trail the serving layer
/// surfaces per request.
#[derive(Clone, Debug)]
pub struct ScoredPredictions {
    /// `[N, K]` final probabilities: the full ensemble average for
    /// escalated examples, the gate member's row for early exits.
    pub probs: Tensor,
    /// Per-example gate uncertainty in `[0, 1]` (`1 - confidence` under
    /// the scoring metric), indexed in example order.
    pub uncertainty: Vec<f32>,
    /// Per-example escalation flag: `true` when the example ran the full
    /// ensemble, `false` when it exited early with the gate's answer.
    pub escalated: Vec<bool>,
}

impl ScoredPredictions {
    /// Hard labels (row argmax) of the final probabilities.
    pub fn labels(&self) -> Vec<usize> {
        ops::argmax_rows(&self.probs)
    }

    /// Number of examples that escalated to the full ensemble.
    pub fn num_escalated(&self) -> usize {
        self.escalated.iter().filter(|&&e| e).count()
    }

    /// Fraction of examples that exited early (0.0 for an empty batch).
    pub fn early_exit_rate(&self) -> f64 {
        if self.escalated.is_empty() {
            return 0.0;
        }
        (self.escalated.len() - self.num_escalated()) as f64 / self.escalated.len() as f64
    }
}

/// A calibrated cascade operating point, from [`calibrate`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CascadeCalibration {
    /// The calibrated policy (metric + threshold) — hand it to
    /// [`ExecPolicy::Cascade`].
    pub policy: CascadePolicy,
    /// Fraction of the calibration batch that would exit early at this
    /// threshold.
    pub exit_rate: f64,
    /// Gate-vs-full-ensemble label agreement *among the exiting
    /// examples* at this threshold (1.0 when nothing exits).
    pub agreement: f64,
}

/// The immutable half of the engine: members (weights), geometry, planning
/// logic, and artifact load/save. Wrap it in an [`Arc`]
/// ([`EnginePlan::into_shared`]) and hand it to as many
/// [`EngineSession`]s — across as many threads — as the machine can run:
/// they all execute this one copy of the weights.
#[derive(Debug)]
pub struct EnginePlan {
    members: Vec<EnsembleMember>,
    batch_size: usize,
    policy: ExecPolicy,
    input: InputSpec,
    num_classes: usize,
    /// Longest common prefix of bitwise-identical (config and state)
    /// layer nodes across *all* members; 0 for fewer than two members.
    trunk_len: usize,
    /// Whether the trunk contains at least one parameterized node — i.e.
    /// whether sharing it actually saves work.
    trunk_profitable: bool,
}

impl EnginePlan {
    /// Builds a plan that runs each member in mini-batches of `batch_size`
    /// examples (clamped to at least 1), defaulting sessions to
    /// [`ExecPolicy::Auto`].
    ///
    /// Cached training activations are dropped from every member (a
    /// serving plan never needs them, and sessions never write new ones).
    ///
    /// # Errors
    ///
    /// [`EngineError::EmptyEnsemble`] for zero members, and
    /// [`EngineError::MemberMismatch`] when members disagree on input
    /// geometry or class count.
    pub fn new(mut members: Vec<EnsembleMember>, batch_size: usize) -> Result<Self, EngineError> {
        let Some(first) = members.first() else {
            return Err(EngineError::EmptyEnsemble);
        };
        let input = first.network.arch().input;
        let num_classes = first.network.arch().num_classes;
        for m in &members {
            let arch = m.network.arch();
            if arch.input != input || arch.num_classes != num_classes {
                return Err(EngineError::MemberMismatch {
                    detail: format!(
                        "member {} expects {}x{}x{} -> {} classes, member {} expects \
                         {}x{}x{} -> {} classes",
                        first.name,
                        input.channels,
                        input.height,
                        input.width,
                        num_classes,
                        m.name,
                        arch.input.channels,
                        arch.input.height,
                        arch.input.width,
                        arch.num_classes
                    ),
                });
            }
        }
        // Trunk detection: the longest member prefix whose nodes are
        // bitwise identical (weights, running stats, and eval-relevant
        // config) across every member. Hatched ensembles share their
        // MotherNet prefix by construction; independently trained members
        // degrade gracefully to a trunk of 0 (or of cheap stateless
        // nodes, which `trunk_profitable` filters out).
        let trunk_len = if members.len() < 2 {
            0
        } else {
            members[1..]
                .iter()
                .map(|m| members[0].network.shared_eval_prefix(&m.network))
                .min()
                .unwrap_or(0)
        };
        let trunk_profitable = members[0].network.nodes()[..trunk_len].iter().any(|node| {
            let mut stateful = false;
            node.visit_state(&mut |_| stateful = true);
            stateful
        });
        for m in members.iter_mut() {
            m.network.clear_caches();
        }
        Ok(EnginePlan {
            members,
            batch_size: batch_size.max(1),
            policy: ExecPolicy::Auto,
            input,
            num_classes,
            trunk_len,
            trunk_profitable,
        })
    }

    /// Sets the default policy sessions start with (builder-style, before
    /// the plan is shared).
    pub fn with_policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Boots a plan from an `MNE1` ensemble artifact file — the serving
    /// cold-start path. Member networks are constructed zero-initialized
    /// and restored in place (no RNG sampling), and predictions are
    /// bitwise identical to the ensemble that saved the artifact.
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`] from reading or parsing the file.
    pub fn load(path: impl AsRef<Path>, batch_size: usize) -> Result<Self, ArtifactError> {
        let (_, members) = artifact::read_ensemble_file(path)?;
        EnginePlan::new(members, batch_size).map_err(ArtifactError::from)
    }

    /// [`EnginePlan::load`] over in-memory artifact bytes.
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`] from parsing the bytes.
    pub fn from_artifact_bytes(bytes: &[u8], batch_size: usize) -> Result<Self, ArtifactError> {
        let (_, members) = artifact::load_ensemble(bytes)?;
        EnginePlan::new(members, batch_size).map_err(ArtifactError::from)
    }

    /// Serializes the plan's members as an `MNE1` artifact.
    pub fn to_artifact_bytes(&self, manifest: &EnsembleManifest) -> Vec<u8> {
        let members: Vec<&EnsembleMember> = self.members.iter().collect();
        artifact::save_ensemble_refs(&members, manifest)
    }

    /// [`EnginePlan::to_artifact_bytes`] with member weights stored under
    /// `encoding` — the deployment-footprint knob: `f16` ≈ 0.5x, `i8` ≈
    /// 0.25x the full-precision artifact bytes. [`EnginePlan::load`] /
    /// [`EnginePlan::from_artifact_bytes`] restore either variant
    /// transparently (members dequantize into `f32` networks, so the
    /// serving path runs unchanged).
    ///
    /// # Errors
    ///
    /// Any [`artifact::save_ensemble_refs_quantized`] error (a member
    /// holding NaN/±Inf weights).
    pub fn to_artifact_bytes_quantized(
        &self,
        manifest: &EnsembleManifest,
        encoding: mn_nn::io::WeightEncoding,
    ) -> Result<Vec<u8>, ArtifactError> {
        let members: Vec<&EnsembleMember> = self.members.iter().collect();
        artifact::save_ensemble_refs_quantized(&members, manifest, encoding)
    }

    /// Bytes of resident `f32` parameter/state memory across all members:
    /// every persistent tensor element at 4 bytes. This is the serving
    /// process's weight footprint — independent of the artifact encoding,
    /// since quantized artifacts dequantize to `f32` on load.
    pub fn param_bytes(&self) -> usize {
        let mut elements = 0usize;
        for m in &self.members {
            for node in m.network.nodes() {
                node.visit_state(&mut |t| elements += t.len());
            }
        }
        elements * std::mem::size_of::<f32>()
    }

    /// Wraps the plan for sharing across sessions/threads.
    pub fn into_shared(self) -> Arc<EnginePlan> {
        Arc::new(self)
    }

    /// The default policy sessions start with.
    pub fn default_policy(&self) -> ExecPolicy {
        self.policy
    }

    /// Resolves the execution plan for a batch of `n` examples under
    /// `policy` and the current worker-thread count.
    ///
    /// The auto rule: shard the batch only when sharding yields more
    /// parallel tasks than member fan-out can — i.e. when the thread count
    /// exceeds the member count *and* the batch is large enough to cut
    /// into more than `num_members` shards of at least one mini-batch
    /// each. Plans never affect results (see module docs), only wall
    /// clock.
    ///
    /// Explicit [`ExecPolicy::DataParallel`] and
    /// [`ExecPolicy::TrunkShared`] shard requests are clamped by
    /// [`EnginePlan::clamp_shards`] — lanes beyond the worker count buy no
    /// parallelism, so an oversized request must not be able to pin
    /// unbounded per-lane scratch.
    pub fn resolve(&self, n: usize, policy: ExecPolicy) -> Plan {
        match policy {
            ExecPolicy::MemberParallel => Plan::MemberParallel,
            ExecPolicy::DataParallel { shards } => {
                let shards = self.clamp_shards(shards, n);
                if shards == 1 {
                    Plan::MemberParallel
                } else {
                    Plan::DataParallel { shards }
                }
            }
            ExecPolicy::TrunkShared { shards } => Plan::TrunkShared {
                shards: self.clamp_shards(shards, n),
            },
            // The cascade is an explicit opt-in: it changes *what work
            // runs* (early-exiting examples skip K-1 members), so Auto
            // never silently picks it.
            ExecPolicy::Cascade(cp) => Plan::Cascade(cp),
            ExecPolicy::Auto => {
                let threads = rayon::current_num_threads();
                let members = self.members.len();
                if self.shares_trunk() && n > 0 {
                    // Sharing a parameterized trunk saves FLOPs on every
                    // plan shape; shard only as far as there are whole
                    // mini-batch chunks and threads to run them.
                    let shards = n.div_ceil(self.batch_size).min(threads);
                    return Plan::TrunkShared {
                        shards: self.clamp_shards(shards, n),
                    };
                }
                if n == 0 || threads <= members {
                    return Plan::MemberParallel;
                }
                let shards = n.div_ceil(self.batch_size).min(threads);
                if shards > members {
                    Plan::DataParallel { shards }
                } else {
                    Plan::MemberParallel
                }
            }
        }
    }

    /// Clamps a requested shard count for a batch of `n` examples. The
    /// constraint order is deliberate and pinned by unit tests: an empty
    /// batch always resolves to one shard (nothing to split, and `0`
    /// shards would be degenerate); otherwise the request is raised to at
    /// least 1, lowered to at most one shard per example, and finally
    /// capped at [`EnginePlan::max_shards`] so an absurd request cannot
    /// pin unbounded per-lane scratch.
    pub fn clamp_shards(&self, requested: usize, n: usize) -> usize {
        if n == 0 {
            return 1;
        }
        requested.max(1).min(n).min(self.max_shards())
    }

    /// Upper bound on data-parallel shards (and so on replica lanes): the
    /// worker-thread count, with a small floor so the sharding path stays
    /// exercisable on single-core machines. Caps the per-lane scratch an
    /// explicit [`ExecPolicy::DataParallel`] request can pin.
    pub fn max_shards(&self) -> usize {
        const SHARD_FLOOR: usize = 16;
        rayon::current_num_threads().max(SHARD_FLOOR)
    }

    /// Length (in layer nodes) of the shared member trunk: the longest
    /// common prefix of bitwise-identical layers across every member,
    /// detected at plan build time. 0 when there are fewer than two
    /// members or the members share nothing.
    pub fn trunk_len(&self) -> usize {
        self.trunk_len
    }

    /// Whether the detected trunk contains parameterized work worth
    /// sharing (a trunk of only stateless nodes — e.g. the leading
    /// `Flatten` every MLP starts with — is not). [`ExecPolicy::Auto`]
    /// picks [`Plan::TrunkShared`] exactly when this holds.
    pub fn shares_trunk(&self) -> bool {
        self.trunk_profitable
    }

    /// Number of ensemble members.
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// Mini-batch size used per member.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Input geometry every member expects.
    pub fn input_spec(&self) -> InputSpec {
        self.input
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Read access to the members, in plan order — a borrowed slice, no
    /// per-call allocation.
    pub fn members(&self) -> &[EnsembleMember] {
        &self.members
    }

    /// Member names, in plan order — an iterator, no per-call allocation.
    pub fn member_names(&self) -> impl Iterator<Item = &str> {
        self.members.iter().map(|m| m.name.as_str())
    }

    /// Decomposes the plan back into its members.
    pub fn into_members(self) -> Vec<EnsembleMember> {
        self.members
    }
}

/// One session over a shared [`EnginePlan`].
impl EnginePlan {
    /// Opens a new session over this shared plan: per-worker workspaces
    /// and replica-lane scratch, zero weight clones. Cheap — a server
    /// opens one per shard.
    pub fn session(self: &Arc<Self>) -> EngineSession {
        EngineSession::new(Arc::clone(self))
    }
}

/// The mutable half of the engine, private to one worker: per-member
/// workspaces (lane 0) plus lazily-built replica-lane scratch for
/// data-parallel plans. Holds **no weights** — every forward pass reads
/// the shared [`EnginePlan`] through `&self`.
#[derive(Debug)]
pub struct EngineSession {
    plan: Arc<EnginePlan>,
    policy: ExecPolicy,
    /// `lanes[lane][member]`: workspace scratch. Lane 0 always exists
    /// (member-parallel axis); lanes 1.. appear the first time a
    /// data-parallel plan needs them and are reused afterwards.
    lanes: Vec<Vec<Workspace>>,
}

impl EngineSession {
    fn new(plan: Arc<EnginePlan>) -> Self {
        let lane0 = (0..plan.num_members()).map(|_| Workspace::new()).collect();
        let policy = plan.default_policy();
        EngineSession {
            plan,
            policy,
            lanes: vec![lane0],
        }
    }

    /// The shared plan this session executes.
    pub fn plan(&self) -> &Arc<EnginePlan> {
        &self.plan
    }

    /// Overrides this session's parallelism policy (other sessions over
    /// the same plan are unaffected).
    pub fn set_policy(&mut self, policy: ExecPolicy) {
        self.policy = policy;
    }

    /// The session's active parallelism policy.
    pub fn policy(&self) -> ExecPolicy {
        self.policy
    }

    /// Resolves the execution plan for a batch of `n` examples under this
    /// session's policy (see [`EnginePlan::resolve`]).
    pub fn plan_for(&self, n: usize) -> Plan {
        self.plan.resolve(n, self.policy)
    }

    /// Number of materialized workspace lanes (including the primary).
    /// Starts at 1 and grows only when a data-parallel plan runs.
    pub fn replica_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Runs every member over the request batch `x: [N, C, H, W]` under
    /// the resolved plan and collects per-member probabilities.
    ///
    /// An empty batch (`N = 0`) is legal and yields `[0, K]` predictions.
    ///
    /// Per-member probabilities need every member on every example, so a
    /// [`Plan::Cascade`] session answers this API fully escalated: the
    /// batch is re-resolved under [`ExecPolicy::Auto`] (a cascade with
    /// nothing exiting early *is* the full ensemble). Early exit only
    /// ever applies through [`EngineSession::predict_scored`].
    pub fn predict(&mut self, x: &Tensor) -> MemberPredictions {
        let n = x.shape().dim(0);
        let mut plan = self.plan_for(n);
        if matches!(plan, Plan::Cascade(_)) {
            plan = self.plan.resolve(n, ExecPolicy::Auto);
        }
        match plan {
            Plan::MemberParallel => self.predict_member_parallel(x),
            Plan::DataParallel { shards } => self.predict_data_parallel(x, shards),
            Plan::TrunkShared { shards } => self.predict_trunk_shared(x, shards),
            Plan::Cascade(_) => unreachable!("Auto never resolves to a cascade"),
        }
    }

    fn predict_member_parallel(&mut self, x: &Tensor) -> MemberPredictions {
        let bs = self.plan.batch_size();
        let mut jobs: Vec<(&EnsembleMember, &mut Workspace)> = self
            .plan
            .members()
            .iter()
            .zip(self.lanes[0].iter_mut())
            .collect();
        let probs: Vec<Tensor> = jobs
            .par_iter_mut()
            .map(|(member, ws)| member.predict_proba_eval(x, bs, ws))
            .collect();
        MemberPredictions::from_probs(probs)
    }

    fn predict_data_parallel(&mut self, x: &Tensor, shards: usize) -> MemberPredictions {
        let n = x.shape().dim(0);
        let ranges = shard_ranges(n, shards);
        let shards = ranges.len(); // shard_ranges may shrink degenerate requests
        if shards <= 1 {
            return self.predict_member_parallel(x);
        }
        self.ensure_lanes(shards);
        let plan = &self.plan;
        let bs = plan.batch_size();
        let members = plan.members();
        let k = plan.num_classes();
        let row = x.len() / n.max(1);

        // Each lane copies its shard rows once (staged in its first
        // workspace), then runs every shared member over the shard with
        // that member's own lane workspace.
        let mut lane_jobs: Vec<(std::ops::Range<usize>, &mut Vec<Workspace>)> =
            ranges.into_iter().zip(self.lanes.iter_mut()).collect();
        let shard_probs: Vec<Vec<Tensor>> = lane_jobs
            .par_iter_mut()
            .map(|(range, lane)| {
                let rows = range.len();
                let mut xs = lane[0].acquire_uninit(x.shape().with_dim(0, rows));
                xs.data_mut()
                    .copy_from_slice(&x.data()[range.start * row..range.end * row]);
                let out: Vec<Tensor> = members
                    .iter()
                    .zip(lane.iter_mut())
                    .map(|(m, ws)| m.predict_proba_eval(&xs, bs, ws))
                    .collect();
                lane[0].release(xs);
                out
            })
            .collect();

        // Stitch per-member outputs back in example order.
        let mut probs: Vec<Tensor> = (0..members.len()).map(|_| Tensor::zeros([n, k])).collect();
        let mut start = 0;
        for lane in &shard_probs {
            let rows = lane[0].shape().dim(0);
            for (m, shard) in lane.iter().enumerate() {
                probs[m].data_mut()[start * k..(start + rows) * k].copy_from_slice(shard.data());
            }
            start += rows;
        }
        MemberPredictions::from_probs(probs)
    }

    /// Trunk-shared execution: each lane walks its shard in mini-batch
    /// chunks, evaluates the shared member prefix **once** per chunk
    /// (from member 0's nodes — bitwise identical to every member's own
    /// prefix by construction, see [`EnginePlan::trunk_len`]), then fans
    /// only the divergent tails across members. Output is bitwise
    /// identical to the flat plans: prefix-then-tail evaluation equals
    /// whole-network evaluation node for node, and each example's forward
    /// pass is independent of its batch neighbors.
    fn predict_trunk_shared(&mut self, x: &Tensor, shards: usize) -> MemberPredictions {
        let n = x.shape().dim(0);
        if n == 0 {
            return self.predict_member_parallel(x);
        }
        let ranges = shard_ranges(n, shards);
        self.ensure_lanes(ranges.len());
        let plan = &self.plan;
        let trunk = plan.trunk_len();
        let bs = plan.batch_size();
        let members = plan.members();
        let k = plan.num_classes();
        let row = x.len() / n;

        let mut lane_jobs: Vec<(std::ops::Range<usize>, &mut Vec<Workspace>)> =
            ranges.into_iter().zip(self.lanes.iter_mut()).collect();
        let shard_probs: Vec<Vec<Tensor>> = lane_jobs
            .par_iter_mut()
            .map(|(range, lane)| {
                let rows = range.len();
                let mut outs: Vec<Tensor> =
                    members.iter().map(|_| Tensor::zeros([rows, k])).collect();
                let mut start = range.start;
                while start < range.end {
                    let end = (start + bs).min(range.end);
                    let chunk = end - start;
                    let mut xb = lane[0].acquire_uninit(x.shape().with_dim(0, chunk));
                    xb.data_mut()
                        .copy_from_slice(&x.data()[start * row..end * row]);
                    let h = members[0]
                        .network
                        .forward_eval_prefix_with(&xb, trunk, &mut lane[0]);
                    lane[0].release(xb);
                    let local = start - range.start;
                    let mut tails: Vec<((&EnsembleMember, &mut Workspace), &mut Tensor)> = members
                        .iter()
                        .zip(lane.iter_mut())
                        .zip(outs.iter_mut())
                        .collect();
                    tails.par_iter_mut().for_each(|((member, ws), out)| {
                        let mut probs = member.network.forward_eval_tail_with(&h, trunk, ws);
                        ops::softmax_rows(&mut probs);
                        out.data_mut()[local * k..(local + chunk) * k]
                            .copy_from_slice(probs.data());
                        ws.release(probs);
                    });
                    lane[0].release(h);
                    start = end;
                }
                outs
            })
            .collect();

        // Stitch per-member outputs back in example order, exactly as the
        // data-parallel plan does.
        let mut probs: Vec<Tensor> = (0..members.len()).map(|_| Tensor::zeros([n, k])).collect();
        let mut start = 0;
        for lane in &shard_probs {
            let rows = lane[0].shape().dim(0);
            for (m, shard) in lane.iter().enumerate() {
                probs[m].data_mut()[start * k..(start + rows) * k].copy_from_slice(shard.data());
            }
            start += rows;
        }
        MemberPredictions::from_probs(probs)
    }

    /// Runs the request batch with per-example uncertainty and escalation
    /// tracking — the serving-facing API.
    ///
    /// Under a [`Plan::Cascade`] session this is the early-exit path
    /// ([`EngineSession::predict_cascade`]). Under every other plan the
    /// full ensemble runs as usual and the result is annotated: final
    /// probabilities are the ensemble average, uncertainty is the
    /// [`Confidence::MaxProb`] signal of that average, and every example
    /// counts as escalated (the full ensemble did run on it).
    pub fn predict_scored(&mut self, x: &Tensor) -> ScoredPredictions {
        if let Plan::Cascade(cp) = self.plan_for(x.shape().dim(0)) {
            return self.predict_cascade(x, cp);
        }
        let probs = self.predict_average(x);
        let (n, k) = (probs.shape().dim(0), probs.shape().dim(1));
        let uncertainty = (0..n)
            .map(|i| Confidence::MaxProb.uncertainty(&probs.data()[i * k..(i + 1) * k]))
            .collect();
        ScoredPredictions {
            probs,
            uncertainty,
            escalated: vec![true; n],
        }
    }

    /// [`EngineSession::predict_scored`] under a one-batch policy
    /// override: the session's own policy is restored afterwards, so a
    /// server shard can degrade a single micro-batch (e.g. force
    /// gate-only cascade execution during a brownout) without disturbing
    /// its steady-state configuration.
    pub fn predict_scored_with(&mut self, x: &Tensor, policy: ExecPolicy) -> ScoredPredictions {
        let saved = self.policy;
        self.policy = policy;
        let scored = self.predict_scored(x);
        self.policy = saved;
        scored
    }

    /// Uncertainty-gated cascade execution (see [`Plan::Cascade`]).
    ///
    /// **Gate pass:** member 0 scores the whole batch. When the plan
    /// shares a parameterized trunk the gate walks the batch in
    /// mini-batch chunks, evaluates the shared prefix once per chunk, and
    /// runs only member 0's tail — keeping each chunk's trunk activations
    /// for rows that go on to escalate, so the escalation pays nothing
    /// for the trunk a second time. Without a shared trunk the gate is
    /// member 0's ordinary batched forward pass.
    ///
    /// **Escalation:** rows whose gate uncertainty is not strictly below
    /// `cp.threshold` are gathered into a contiguous survivor batch and
    /// fanned across members 1..K (tails over the saved trunk
    /// activations, or whole networks), then averaged with the gate's row
    /// in member order — the exact accumulation order (and therefore the
    /// exact bits) of [`combine::ensemble_average`] over a full
    /// [`EngineSession::predict`]. Early-exit rows keep the gate's row.
    ///
    /// Bitwise consistency: each example's forward pass is independent of
    /// its batch neighbors and prefix-then-tail evaluation equals
    /// whole-network evaluation (both pinned by the determinism suites),
    /// so an escalated row's probabilities are bit-for-bit what the flat
    /// plans produce for that row — and at `threshold = 0.0` (everything
    /// escalates) the whole output is bitwise identical to
    /// [`EngineSession::predict_average`] under any other plan.
    pub fn predict_cascade(&mut self, x: &Tensor, cp: CascadePolicy) -> ScoredPredictions {
        let plan = Arc::clone(&self.plan);
        let n = x.shape().dim(0);
        let k = plan.num_classes();
        if n == 0 {
            return ScoredPredictions {
                probs: Tensor::zeros([0, k]),
                uncertainty: Vec::new(),
                escalated: Vec::new(),
            };
        }
        let bs = plan.batch_size();
        let members = plan.members();
        let m = members.len();
        let trunk = plan.trunk_len();
        let share = plan.shares_trunk();
        let row = x.len() / n;

        // --- Gate pass: member 0 over the whole batch. ---
        let mut gate_probs;
        // Saved trunk activations for escalating rows (trunk path only):
        // raw row data plus the per-chunk activation shape to rebuild a
        // survivor tensor from.
        let mut h_rows: Vec<f32> = Vec::new();
        let mut h_shape = None;
        let mut uncertainty = vec![0.0f32; n];
        let mut escalated = vec![false; n];
        let mut survivors: Vec<usize> = Vec::new();
        if share {
            gate_probs = Tensor::zeros([n, k]);
            let mut start = 0;
            while start < n {
                let end = (start + bs).min(n);
                let chunk = end - start;
                let mut xb = self.lanes[0][0].acquire_uninit(x.shape().with_dim(0, chunk));
                xb.data_mut()
                    .copy_from_slice(&x.data()[start * row..end * row]);
                let h =
                    members[0]
                        .network
                        .forward_eval_prefix_with(&xb, trunk, &mut self.lanes[0][0]);
                self.lanes[0][0].release(xb);
                let mut probs =
                    members[0]
                        .network
                        .forward_eval_tail_with(&h, trunk, &mut self.lanes[0][0]);
                ops::softmax_rows(&mut probs);
                gate_probs.data_mut()[start * k..end * k].copy_from_slice(probs.data());
                self.lanes[0][0].release(probs);
                let h_row = h.len() / chunk;
                for i in 0..chunk {
                    let g = start + i;
                    let u = cp
                        .metric
                        .uncertainty(&gate_probs.data()[g * k..(g + 1) * k]);
                    uncertainty[g] = u;
                    // NaN uncertainty (impossible for finite inputs, but
                    // cheap to be safe about) escalates rather than exits.
                    if u.is_nan() || u >= cp.threshold {
                        escalated[g] = true;
                        survivors.push(g);
                        h_rows.extend_from_slice(&h.data()[i * h_row..(i + 1) * h_row]);
                    }
                }
                if h_shape.is_none() {
                    h_shape = Some(*h.shape());
                }
                self.lanes[0][0].release(h);
                start = end;
            }
        } else {
            gate_probs = members[0].predict_proba_eval(x, bs, &mut self.lanes[0][0]);
            for g in 0..n {
                let u = cp
                    .metric
                    .uncertainty(&gate_probs.data()[g * k..(g + 1) * k]);
                uncertainty[g] = u;
                if u.is_nan() || u >= cp.threshold {
                    escalated[g] = true;
                    survivors.push(g);
                }
            }
        }

        // --- Escalation: members 1..K over the survivor subset only.
        // A single-member ensemble needs none: its "full ensemble" is the
        // gate itself, and `ensemble_average`'s multiply by 1/1 is a
        // bitwise no-op, so the gate rows already are the answer. ---
        let s = survivors.len();
        if s > 0 && m > 1 {
            let esc_probs: Vec<Tensor> = if share {
                // mn-lint: allow(no-panic-in-serve, reason = "invariant, not an error path: `share` is set only after the gate pass stored h_shape a few lines up in this same function; None here means engine logic is corrupted and continuing would score garbage")
                let h_shape = h_shape.expect("trunk gate saved an activation shape");
                let hs = Tensor::from_vec(h_shape.with_dim(0, s), std::mem::take(&mut h_rows));
                let h_row = hs.len() / s;
                let mut jobs: Vec<(&EnsembleMember, &mut Workspace)> = members[1..]
                    .iter()
                    .zip(self.lanes[0][1..].iter_mut())
                    .collect();
                jobs.par_iter_mut()
                    .map(|(member, ws)| {
                        // Tail the survivors in mini-batch chunks, like
                        // every other plan.
                        let mut out = Tensor::zeros([s, k]);
                        let mut start = 0;
                        while start < s {
                            let end = (start + bs).min(s);
                            let chunk = end - start;
                            let mut hb = ws.acquire_uninit(hs.shape().with_dim(0, chunk));
                            hb.data_mut()
                                .copy_from_slice(&hs.data()[start * h_row..end * h_row]);
                            let mut probs = member.network.forward_eval_tail_with(&hb, trunk, ws);
                            ops::softmax_rows(&mut probs);
                            out.data_mut()[start * k..end * k].copy_from_slice(probs.data());
                            ws.release(probs);
                            ws.release(hb);
                            start = end;
                        }
                        out
                    })
                    .collect()
            } else {
                let mut xs = Tensor::zeros(x.shape().with_dim(0, s));
                for (si, &g) in survivors.iter().enumerate() {
                    xs.data_mut()[si * row..(si + 1) * row]
                        .copy_from_slice(&x.data()[g * row..(g + 1) * row]);
                }
                let mut jobs: Vec<(&EnsembleMember, &mut Workspace)> = members[1..]
                    .iter()
                    .zip(self.lanes[0][1..].iter_mut())
                    .collect();
                jobs.par_iter_mut()
                    .map(|(member, ws)| member.predict_proba_eval(&xs, bs, ws))
                    .collect()
            };
            // Average escalated rows exactly as `combine::ensemble_average`
            // over a full predict: member 0 first, then 1..K in order,
            // then one multiply by 1/K.
            let inv_k = 1.0 / m as f32;
            for (si, &g) in survivors.iter().enumerate() {
                let dst = &mut gate_probs.data_mut()[g * k..(g + 1) * k];
                for (c, v) in dst.iter_mut().enumerate() {
                    let mut acc = *v;
                    for t in &esc_probs {
                        acc += t.data()[si * k + c];
                    }
                    *v = acc * inv_k;
                }
            }
        }

        ScoredPredictions {
            probs: gate_probs,
            uncertainty,
            escalated,
        }
    }

    /// Grows the workspace-lane pool to at least `lanes` lanes. Unlike the
    /// pre-split engine this clones **no weights** — a lane is just one
    /// empty workspace per member.
    fn ensure_lanes(&mut self, lanes: usize) {
        let members = self.plan.num_members();
        while self.lanes.len() < lanes {
            self.lanes
                .push((0..members).map(|_| Workspace::new()).collect());
        }
    }

    /// Ensemble-averaged probabilities `[N, K]` for the request batch.
    pub fn predict_average(&mut self, x: &Tensor) -> Tensor {
        combine::ensemble_average(&self.predict(x))
    }

    /// Hard labels under ensemble averaging (the paper's EA rule).
    pub fn predict_labels(&mut self, x: &Tensor) -> Vec<usize> {
        ops::argmax_rows(&self.predict_average(x))
    }

    /// Hard labels under majority voting with probability tie-breaking.
    pub fn predict_vote_labels(&mut self, x: &Tensor) -> Vec<usize> {
        combine::vote_labels(&self.predict(x))
    }

    /// Closes the session, returning its handle on the shared plan.
    pub fn into_plan(self) -> Arc<EnginePlan> {
        self.plan
    }
}

/// Calibrates a cascade threshold offline against a held-out batch `x`,
/// label-free: the full ensemble's own answer is the reference, so any
/// representative traffic sample works.
///
/// The session runs `x` once under [`ExecPolicy::Auto`] (its configured
/// policy is saved and restored), yielding both the gate member's
/// probabilities and the full-ensemble labels. Examples are sorted by
/// gate uncertainty and the **largest** prefix whose gate-vs-ensemble
/// label agreement stays at or above `min_agreement` is taken as the
/// early-exit set; the returned threshold is the midpoint between the
/// boundary uncertainties (so the exit set is reproduced exactly by the
/// strict `u < threshold` rule), `0.0` when no prefix qualifies (cascade
/// disabled — bitwise full-ensemble behavior), and `1.0` when every
/// example qualifies. Prefixes that would split a tie in uncertainty are
/// never chosen: no threshold could separate them.
///
/// The reported `exit_rate` and `agreement` are recomputed from the
/// returned threshold, so they describe exactly what
/// [`EngineSession::predict_cascade`] will do on this batch.
pub fn calibrate(
    session: &mut EngineSession,
    x: &Tensor,
    metric: Confidence,
    min_agreement: f64,
) -> CascadeCalibration {
    let saved = session.policy();
    session.set_policy(ExecPolicy::Auto);
    let preds = session.predict(x);
    session.set_policy(saved);

    let n = preds.num_examples();
    let k = preds.num_classes();
    if n == 0 {
        return CascadeCalibration {
            policy: CascadePolicy {
                metric,
                threshold: 0.0,
            },
            exit_rate: 0.0,
            agreement: 1.0,
        };
    }
    let gate = &preds.probs()[0];
    let gate_labels = ops::argmax_rows(gate);
    let ens_labels = combine::ensemble_average_labels(&preds);
    let unc: Vec<f32> = (0..n)
        .map(|i| metric.uncertainty(&gate.data()[i * k..(i + 1) * k]))
        .collect();

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        unc[a]
            .partial_cmp(&unc[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut best_s = 0usize;
    let mut agree = 0usize;
    for s in 1..=n {
        if gate_labels[order[s - 1]] == ens_labels[order[s - 1]] {
            agree += 1;
        }
        // A prefix is only realizable if a threshold can separate it:
        // its last uncertainty must be strictly below the next one.
        let separable = s == n || unc[order[s - 1]] < unc[order[s]];
        if separable && agree as f64 / s as f64 >= min_agreement {
            best_s = s;
        }
    }
    let threshold = if best_s == 0 {
        0.0
    } else if best_s == n {
        1.0
    } else {
        (unc[order[best_s - 1]] + unc[order[best_s]]) / 2.0
    };

    let exits: Vec<usize> = (0..n).filter(|&i| unc[i] < threshold).collect();
    let exit_rate = exits.len() as f64 / n as f64;
    let agreement = if exits.is_empty() {
        1.0
    } else {
        exits
            .iter()
            .filter(|&&i| gate_labels[i] == ens_labels[i])
            .count() as f64
            / exits.len() as f64
    };
    CascadeCalibration {
        policy: CascadePolicy { metric, threshold },
        exit_rate,
        agreement,
    }
}

/// Compatibility facade over the plan/session split: one shared
/// [`EnginePlan`] plus one [`EngineSession`], exposing the single-owner
/// API earlier PRs shipped. New code that wants several workers over one
/// ensemble should hold an `Arc<EnginePlan>` and open sessions directly;
/// the facade's [`InferenceEngine::plan_handle`] bridges the two worlds.
#[derive(Debug)]
pub struct InferenceEngine {
    session: EngineSession,
}

impl InferenceEngine {
    /// Builds a plan from `members` and opens one session over it (see
    /// [`EnginePlan::new`]).
    ///
    /// # Errors
    ///
    /// [`EngineError::EmptyEnsemble`] for zero members, and
    /// [`EngineError::MemberMismatch`] when members disagree on input
    /// geometry or class count.
    pub fn new(members: Vec<EnsembleMember>, batch_size: usize) -> Result<Self, EngineError> {
        Ok(InferenceEngine::from_plan(
            EnginePlan::new(members, batch_size)?.into_shared(),
        ))
    }

    /// Opens an engine (facade) over an existing shared plan.
    pub fn from_plan(plan: Arc<EnginePlan>) -> Self {
        InferenceEngine {
            session: plan.session(),
        }
    }

    /// Boots an engine from an `MNE1` ensemble artifact file (see
    /// [`EnginePlan::load`]).
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`] from reading or parsing the file.
    pub fn load(path: impl AsRef<Path>, batch_size: usize) -> Result<Self, ArtifactError> {
        Ok(InferenceEngine::from_plan(
            EnginePlan::load(path, batch_size)?.into_shared(),
        ))
    }

    /// [`InferenceEngine::load`] over in-memory artifact bytes.
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`] from parsing the bytes.
    pub fn from_artifact_bytes(bytes: &[u8], batch_size: usize) -> Result<Self, ArtifactError> {
        Ok(InferenceEngine::from_plan(
            EnginePlan::from_artifact_bytes(bytes, batch_size)?.into_shared(),
        ))
    }

    /// Serializes the engine's members as an `MNE1` artifact.
    pub fn to_artifact_bytes(&self, manifest: &EnsembleManifest) -> Vec<u8> {
        self.session.plan().to_artifact_bytes(manifest)
    }

    /// A shareable handle on the engine's plan — open more sessions (or a
    /// sharded server) over the same weights.
    pub fn plan_handle(&self) -> Arc<EnginePlan> {
        Arc::clone(self.session.plan())
    }

    /// Overrides this engine's parallelism policy (the default is
    /// [`ExecPolicy::Auto`]).
    pub fn set_policy(&mut self, policy: ExecPolicy) {
        self.session.set_policy(policy);
    }

    /// The active parallelism policy.
    pub fn policy(&self) -> ExecPolicy {
        self.session.policy()
    }

    /// Resolves the execution plan for a batch of `n` examples (see
    /// [`EnginePlan::resolve`]).
    pub fn plan(&self, n: usize) -> Plan {
        self.session.plan_for(n)
    }

    /// Upper bound on data-parallel shards (see
    /// [`EnginePlan::max_shards`]).
    pub fn max_shards(&self) -> usize {
        self.session.plan().max_shards()
    }

    /// Number of ensemble members.
    pub fn num_members(&self) -> usize {
        self.session.plan().num_members()
    }

    /// Mini-batch size used per member.
    pub fn batch_size(&self) -> usize {
        self.session.plan().batch_size()
    }

    /// Input geometry every member expects.
    pub fn input_spec(&self) -> InputSpec {
        self.session.plan().input_spec()
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.session.plan().num_classes()
    }

    /// Number of materialized workspace lanes (see
    /// [`EngineSession::replica_lanes`]).
    pub fn replica_lanes(&self) -> usize {
        self.session.replica_lanes()
    }

    /// Member names, in engine order — no per-call allocation.
    pub fn member_names(&self) -> impl Iterator<Item = &str> {
        self.session.plan().member_names()
    }

    /// Read access to the members, in engine order — a borrowed slice, no
    /// per-call allocation.
    pub fn members(&self) -> &[EnsembleMember] {
        self.session.plan().members()
    }

    /// Runs every member over the request batch (see
    /// [`EngineSession::predict`]).
    pub fn predict(&mut self, x: &Tensor) -> MemberPredictions {
        self.session.predict(x)
    }

    /// Ensemble-averaged probabilities `[N, K]` for the request batch.
    pub fn predict_average(&mut self, x: &Tensor) -> Tensor {
        self.session.predict_average(x)
    }

    /// Scored predictions with per-example uncertainty and escalation
    /// flags (see [`EngineSession::predict_scored`]).
    pub fn predict_scored(&mut self, x: &Tensor) -> ScoredPredictions {
        self.session.predict_scored(x)
    }

    /// Hard labels under ensemble averaging (the paper's EA rule).
    pub fn predict_labels(&mut self, x: &Tensor) -> Vec<usize> {
        self.session.predict_labels(x)
    }

    /// Hard labels under majority voting with probability tie-breaking.
    pub fn predict_vote_labels(&mut self, x: &Tensor) -> Vec<usize> {
        self.session.predict_vote_labels(x)
    }

    /// Decomposes the engine back into its plan (session scratch dropped).
    pub fn into_plan(self) -> Arc<EnginePlan> {
        self.session.into_plan()
    }

    /// Decomposes the engine back into its members (workspaces and lane
    /// scratch dropped). If other sessions still share the plan, the
    /// members are cloned; sole owners pay nothing.
    pub fn into_members(self) -> Vec<EnsembleMember> {
        match Arc::try_unwrap(self.session.into_plan()) {
            Ok(plan) => plan.into_members(),
            Err(shared) => shared.members().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_nn::arch::{Architecture, InputSpec};
    use mn_nn::Network;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn members(n: u64) -> Vec<EnsembleMember> {
        let arch = Architecture::mlp("m", InputSpec::new(1, 2, 2), 3, vec![6]);
        (0..n)
            .map(|s| EnsembleMember::new(format!("m{s}"), Network::seeded(&arch, s)))
            .collect()
    }

    fn engine(n: u64, batch: usize) -> InferenceEngine {
        InferenceEngine::new(members(n), batch).unwrap()
    }

    /// Members cloned from one seed network with only the classifier head
    /// re-perturbed — the hatched-ensemble shape: every node but the last
    /// Dense is bitwise shared.
    fn trunked_members(n: u64) -> Vec<EnsembleMember> {
        let arch = Architecture::mlp("m", InputSpec::new(1, 2, 2), 3, vec![6]);
        let base = Network::seeded(&arch, 42);
        (0..n)
            .map(|s| {
                let mut net = base.clone();
                match net.nodes_mut().last_mut() {
                    Some(mn_nn::LayerNode::Dense(l)) => {
                        for w in l.weight.value.data_mut() {
                            *w += (s as f32 + 1.0) * 0.01;
                        }
                    }
                    other => panic!("expected a dense head, got {other:?}"),
                }
                EnsembleMember::new(format!("t{s}"), net)
            })
            .collect()
    }

    #[test]
    fn engine_matches_sequential_collection() {
        let x = Tensor::randn([7, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(1));
        let mut seq_members = members(3);
        let sequential = MemberPredictions::collect(&mut seq_members, &x, 2);
        let mut engine = engine(3, 2);
        let parallel = engine.predict(&x);
        assert_eq!(parallel.num_members(), 3);
        for (p, s) in parallel.probs().iter().zip(sequential.probs()) {
            assert_eq!(p.data(), s.data(), "engine diverged from sequential path");
        }
    }

    #[test]
    fn repeated_predictions_reuse_workspaces_and_stay_identical() {
        let mut engine = engine(2, 4);
        let x = Tensor::randn([9, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(2));
        let first = engine.predict(&x);
        let second = engine.predict(&x);
        for (a, b) in first.probs().iter().zip(second.probs()) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn combination_rules_run_on_engine_output() {
        let mut engine = engine(3, 8);
        let x = Tensor::randn([5, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(3));
        let avg = engine.predict_average(&x);
        assert_eq!(avg.shape().dims(), &[5, 3]);
        for i in 0..5 {
            let row: f32 = (0..3).map(|j| avg.at2(i, j)).sum();
            assert!((row - 1.0).abs() < 1e-4, "row {i} sums to {row}");
        }
        assert_eq!(engine.predict_labels(&x).len(), 5);
        assert_eq!(engine.predict_vote_labels(&x).len(), 5);
    }

    #[test]
    fn accessors_expose_members() {
        let engine = engine(2, 16);
        assert_eq!(engine.num_members(), 2);
        assert_eq!(engine.batch_size(), 16);
        assert_eq!(engine.member_names().collect::<Vec<_>>(), vec!["m0", "m1"]);
        assert_eq!(engine.members().len(), 2);
        assert_eq!(engine.members()[1].name, "m1");
        assert_eq!(engine.num_classes(), 3);
        assert_eq!(engine.input_spec(), InputSpec::new(1, 2, 2));
        let back = engine.into_members();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn empty_ensemble_yields_typed_error() {
        assert_eq!(
            InferenceEngine::new(Vec::new(), 8).unwrap_err(),
            EngineError::EmptyEnsemble
        );
    }

    #[test]
    fn mismatched_members_yield_typed_error() {
        let arch_a = Architecture::mlp("a", InputSpec::new(1, 2, 2), 3, vec![4]);
        let arch_b = Architecture::mlp("b", InputSpec::new(1, 2, 2), 5, vec![4]);
        let mixed = vec![
            EnsembleMember::new("a", Network::seeded(&arch_a, 0)),
            EnsembleMember::new("b", Network::seeded(&arch_b, 1)),
        ];
        assert!(matches!(
            InferenceEngine::new(mixed, 8),
            Err(EngineError::MemberMismatch { .. })
        ));
    }

    #[test]
    fn zero_batch_size_clamps_to_one() {
        let mut engine = engine(1, 0);
        assert_eq!(engine.batch_size(), 1);
        let x = Tensor::zeros([2, 1, 2, 2]);
        assert_eq!(engine.predict_labels(&x).len(), 2);
    }

    #[test]
    fn data_parallel_plan_matches_member_parallel_bitwise() {
        let x = Tensor::randn([13, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(4));
        let mut baseline = engine(3, 4);
        baseline.set_policy(ExecPolicy::MemberParallel);
        let reference = baseline.predict(&x);
        for shards in [2usize, 3, 5, 13, 40] {
            let mut sharded = engine(3, 4);
            sharded.set_policy(ExecPolicy::DataParallel { shards });
            let got = sharded.predict(&x);
            for (m, (a, b)) in reference.probs().iter().zip(got.probs()).enumerate() {
                assert_eq!(
                    a.data(),
                    b.data(),
                    "member {m} diverged under {shards}-way sharding"
                );
            }
            assert!(sharded.replica_lanes() >= 2, "sharding built replica lanes");
        }
    }

    #[test]
    fn replica_lanes_grow_lazily_and_persist() {
        let mut e = engine(2, 2);
        assert_eq!(e.replica_lanes(), 1);
        e.set_policy(ExecPolicy::MemberParallel);
        let x = Tensor::zeros([8, 1, 2, 2]);
        let _ = e.predict(&x);
        assert_eq!(e.replica_lanes(), 1, "member-parallel must not build lanes");
        e.set_policy(ExecPolicy::DataParallel { shards: 4 });
        let _ = e.predict(&x);
        assert_eq!(e.replica_lanes(), 4);
        let _ = e.predict(&x);
        assert_eq!(e.replica_lanes(), 4, "lanes are reused, not rebuilt");
    }

    #[test]
    fn explicit_shards_clamp_to_batch_and_lane_cap() {
        let mut e = engine(2, 2);
        e.set_policy(ExecPolicy::DataParallel { shards: 0 });
        assert_eq!(e.plan(5), Plan::MemberParallel);
        e.set_policy(ExecPolicy::DataParallel { shards: 8 });
        assert_eq!(e.plan(3), Plan::DataParallel { shards: 3 });
        assert_eq!(e.plan(0), Plan::MemberParallel);
        // An absurd request must not be able to demand one lane per
        // example of a huge batch.
        e.set_policy(ExecPolicy::DataParallel { shards: usize::MAX });
        match e.plan(1_000_000) {
            Plan::DataParallel { shards } => assert_eq!(shards, e.max_shards()),
            plan => panic!("expected a capped data-parallel plan, got {plan:?}"),
        }
        let x = Tensor::zeros([64, 1, 2, 2]);
        let _ = e.predict(&x);
        assert!(e.replica_lanes() <= e.max_shards());
    }

    #[test]
    fn trunk_detection_finds_hatched_prefix_and_ignores_stateless_trunks() {
        // Head-only divergence: everything up to (not including) the
        // final Dense is shared, and the trunk carries real weights.
        let plan = EnginePlan::new(trunked_members(4), 8).unwrap();
        let nodes = plan.members()[0].network.nodes().len();
        assert_eq!(plan.trunk_len(), nodes - 1);
        assert!(plan.shares_trunk());

        // Independently seeded members share only the leading stateless
        // Flatten — detected, but not worth sharing.
        let flat = EnginePlan::new(members(3), 8).unwrap();
        assert_eq!(flat.trunk_len(), 1);
        assert!(!flat.shares_trunk());

        // A single member has no trunk to share.
        let solo = EnginePlan::new(members(1), 8).unwrap();
        assert_eq!(solo.trunk_len(), 0);
        assert!(!solo.shares_trunk());
    }

    #[test]
    fn auto_picks_trunk_shared_exactly_when_trunk_is_parameterized() {
        let trunked = EnginePlan::new(trunked_members(3), 4).unwrap();
        assert!(matches!(
            trunked.resolve(16, ExecPolicy::Auto),
            Plan::TrunkShared { .. }
        ));
        // Empty batches never shard and never need the trunk path.
        assert_eq!(trunked.resolve(0, ExecPolicy::Auto), Plan::MemberParallel);
        // A stateless trunk keeps the flat auto rule.
        let flat = EnginePlan::new(members(3), 4).unwrap();
        assert!(!matches!(
            flat.resolve(16, ExecPolicy::Auto),
            Plan::TrunkShared { .. }
        ));
    }

    #[test]
    fn trunk_shared_matches_member_parallel_bitwise() {
        let x = Tensor::randn([13, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(6));
        let plan = EnginePlan::new(trunked_members(4), 4)
            .unwrap()
            .into_shared();
        let mut baseline = plan.session();
        baseline.set_policy(ExecPolicy::MemberParallel);
        let reference = baseline.predict(&x);
        // Members genuinely diverge (the trunk path has something to get
        // wrong): head perturbations must show up in the outputs.
        assert_ne!(
            reference.probs()[0].data(),
            reference.probs()[1].data(),
            "trunked members must still disagree at the head"
        );
        for shards in [1usize, 2, 3, 5, 13, 40] {
            let mut trunked = plan.session();
            trunked.set_policy(ExecPolicy::TrunkShared { shards });
            let got = trunked.predict(&x);
            for (m, (a, b)) in reference.probs().iter().zip(got.probs()).enumerate() {
                assert_eq!(
                    a.data(),
                    b.data(),
                    "member {m} diverged under {shards}-shard trunk sharing"
                );
            }
        }
        // Zero shared prefix (explicit policy on unrelated members) is
        // correct too — it just shares nothing.
        let flat_plan = EnginePlan::new(members(3), 4).unwrap().into_shared();
        let mut a = flat_plan.session();
        a.set_policy(ExecPolicy::MemberParallel);
        let mut b = flat_plan.session();
        b.set_policy(ExecPolicy::TrunkShared { shards: 2 });
        let ra = a.predict(&x);
        let rb = b.predict(&x);
        for (p, q) in ra.probs().iter().zip(rb.probs()) {
            assert_eq!(p.data(), q.data());
        }
    }

    #[test]
    fn trunk_shared_handles_empty_batch_and_single_shard() {
        let plan = EnginePlan::new(trunked_members(2), 4)
            .unwrap()
            .into_shared();
        let mut s = plan.session();
        s.set_policy(ExecPolicy::TrunkShared { shards: 3 });
        let empty = Tensor::zeros([0, 1, 2, 2]);
        let preds = s.predict(&empty);
        assert_eq!(preds.num_examples(), 0);
        assert_eq!(preds.num_members(), 2);
        // One shard stays on the trunk-shared plan (unlike data-parallel,
        // which would fall back to member-parallel).
        assert_eq!(
            plan.resolve(8, ExecPolicy::TrunkShared { shards: 1 }),
            Plan::TrunkShared { shards: 1 }
        );
        let x = Tensor::randn([3, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(7));
        s.set_policy(ExecPolicy::TrunkShared { shards: 1 });
        assert_eq!(s.predict(&x).num_examples(), 3);
    }

    #[test]
    fn clamp_shards_pins_constraint_order() {
        let plan = EnginePlan::new(members(2), 2).unwrap();
        // Empty batch: always one shard, regardless of the request.
        assert_eq!(plan.clamp_shards(0, 0), 1);
        assert_eq!(plan.clamp_shards(usize::MAX, 0), 1);
        // Zero-shard requests are raised to one.
        assert_eq!(plan.clamp_shards(0, 5), 1);
        // At most one shard per example.
        assert_eq!(plan.clamp_shards(8, 3), 3);
        // The lane cap binds last.
        assert_eq!(plan.clamp_shards(usize::MAX, 1_000_000), plan.max_shards());
        // And resolve() exposes the same behavior through both policies.
        assert_eq!(
            plan.resolve(0, ExecPolicy::DataParallel { shards: 7 }),
            Plan::MemberParallel
        );
        assert_eq!(
            plan.resolve(0, ExecPolicy::TrunkShared { shards: 7 }),
            Plan::TrunkShared { shards: 1 }
        );
        assert_eq!(
            plan.resolve(5, ExecPolicy::DataParallel { shards: 0 }),
            Plan::MemberParallel
        );
        assert_eq!(
            plan.resolve(3, ExecPolicy::DataParallel { shards: 8 }),
            Plan::DataParallel { shards: 3 }
        );
        assert_eq!(
            plan.resolve(1_000_000, ExecPolicy::DataParallel { shards: usize::MAX }),
            Plan::DataParallel {
                shards: plan.max_shards()
            }
        );
    }

    #[test]
    fn auto_plan_prefers_member_fanout_unless_sharding_wins() {
        let e = engine(3, 4);
        // Empty batches never shard.
        assert_eq!(e.plan(0), Plan::MemberParallel);
        // With the test runner's thread count unknown, pin only the
        // invariants: sharding must yield strictly more tasks than member
        // fan-out, and never more shards than threads or mini-batches.
        for n in [1usize, 8, 64, 1024] {
            match e.plan(n) {
                Plan::MemberParallel => {}
                Plan::DataParallel { shards } => {
                    assert!(shards > e.num_members());
                    assert!(shards <= rayon::current_num_threads());
                    assert!(shards <= n.div_ceil(e.batch_size()));
                }
                Plan::TrunkShared { .. } => {
                    panic!("independently seeded members must not auto-share a trunk")
                }
                Plan::Cascade(_) => panic!("auto must never pick the cascade"),
            }
        }
    }

    #[test]
    fn empty_batch_under_data_parallel_policy() {
        let mut e = engine(2, 4);
        e.set_policy(ExecPolicy::DataParallel { shards: 3 });
        let empty = Tensor::zeros([0, 1, 2, 2]);
        let preds = e.predict(&empty);
        assert_eq!(preds.num_examples(), 0);
        assert_eq!(preds.num_members(), 2);
    }

    #[test]
    fn sessions_share_one_plan_without_weight_clones() {
        // The acceptance criterion of the plan/session split: N sessions
        // over one plan reference the *same* member storage (pointer
        // identity), produce identical output, and per-session policies
        // stay independent.
        let plan = EnginePlan::new(members(3), 4).unwrap().into_shared();
        let mut a = plan.session();
        let mut b = plan.session();
        assert!(
            Arc::ptr_eq(a.plan(), b.plan()),
            "sessions must share one plan"
        );
        let pa = a.plan().members().as_ptr();
        let pb = b.plan().members().as_ptr();
        assert_eq!(pa, pb, "sessions must not clone member storage");
        // First member's weight data is the same allocation from both.
        let wa = a.plan().members()[0].network.nodes().as_ptr();
        let wb = b.plan().members()[0].network.nodes().as_ptr();
        assert_eq!(wa, wb, "member weights must be shared, not cloned");

        let x = Tensor::randn([10, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(9));
        b.set_policy(ExecPolicy::DataParallel { shards: 4 });
        assert_eq!(a.policy(), ExecPolicy::Auto, "policies are per-session");
        let ra = a.predict(&x);
        let rb = b.predict(&x);
        for (m, (p, q)) in ra.probs().iter().zip(rb.probs()).enumerate() {
            assert_eq!(p.data(), q.data(), "member {m} diverged across sessions");
        }
        // Data-parallel lanes grew only in the session that ran them.
        assert_eq!(a.replica_lanes(), 1);
        assert!(b.replica_lanes() >= 2);
    }

    #[test]
    fn with_policy_sets_the_session_default() {
        let plan = EnginePlan::new(members(2), 4)
            .unwrap()
            .with_policy(ExecPolicy::DataParallel { shards: 2 })
            .into_shared();
        assert_eq!(
            plan.default_policy(),
            ExecPolicy::DataParallel { shards: 2 }
        );
        // New sessions inherit the plan default; overriding one session
        // leaves the plan (and future sessions) untouched.
        let mut session = plan.session();
        assert_eq!(session.policy(), ExecPolicy::DataParallel { shards: 2 });
        assert_eq!(session.plan_for(8), Plan::DataParallel { shards: 2 });
        session.set_policy(ExecPolicy::MemberParallel);
        assert_eq!(
            plan.session().policy(),
            ExecPolicy::DataParallel { shards: 2 }
        );
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn cascade_policy_resolves_and_other_plans_stay_put() {
        let plan = EnginePlan::new(members(3), 4).unwrap();
        let cp = CascadePolicy::max_prob(0.25);
        assert_eq!(plan.resolve(16, ExecPolicy::Cascade(cp)), Plan::Cascade(cp));
        assert_eq!(plan.resolve(0, ExecPolicy::Cascade(cp)), Plan::Cascade(cp));
        // Auto never picks the cascade: it changes what work runs.
        for n in [0usize, 1, 16, 1024] {
            assert!(!matches!(
                plan.resolve(n, ExecPolicy::Auto),
                Plan::Cascade(_)
            ));
        }
    }

    #[test]
    fn uncertainty_metrics_match_their_confidence_complements() {
        let row = [0.6f32, 0.3, 0.1];
        assert!((Confidence::MaxProb.uncertainty(&row) - 0.4).abs() < 1e-6);
        assert!((Confidence::Margin.uncertainty(&row) - 0.7).abs() < 1e-6);
        // A top-2 tie: max-prob still semi-confident, margin maximally not.
        let tie = [0.5f32, 0.5];
        assert!((Confidence::MaxProb.uncertainty(&tie) - 0.5).abs() < 1e-6);
        assert!((Confidence::Margin.uncertainty(&tie) - 1.0).abs() < 1e-6);
        // One class: no runner-up, both metrics agree.
        let solo = [1.0f32];
        assert_eq!(Confidence::MaxProb.uncertainty(&solo), 0.0);
        assert_eq!(Confidence::Margin.uncertainty(&solo), 0.0);
    }

    #[test]
    fn cascade_threshold_zero_is_bitwise_identical_to_flat_average() {
        let x = Tensor::randn([11, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(11));
        for trunked in [false, true] {
            let ms = if trunked {
                trunked_members(4)
            } else {
                members(4)
            };
            let plan = EnginePlan::new(ms, 4).unwrap().into_shared();
            let mut flat = plan.session();
            flat.set_policy(ExecPolicy::MemberParallel);
            let reference = combine::ensemble_average(&flat.predict(&x));
            for metric in [Confidence::MaxProb, Confidence::Margin] {
                let mut casc = plan.session();
                casc.set_policy(ExecPolicy::Cascade(CascadePolicy {
                    metric,
                    threshold: 0.0,
                }));
                let scored = casc.predict_scored(&x);
                assert_eq!(
                    bits(&reference),
                    bits(&scored.probs),
                    "threshold-0 cascade diverged (trunked={trunked}, {metric:?})"
                );
                assert!(scored.escalated.iter().all(|&e| e), "nothing may exit at 0");
                assert_eq!(scored.early_exit_rate(), 0.0);
                assert_eq!(scored.num_escalated(), 11);
            }
        }
    }

    #[test]
    fn cascade_exit_rows_are_the_gate_member_bitwise() {
        // Threshold 1.0: everything except complete ties exits early with
        // member 0's row.
        let x = Tensor::randn([9, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(12));
        let plan = EnginePlan::new(trunked_members(3), 4)
            .unwrap()
            .into_shared();
        let mut flat = plan.session();
        flat.set_policy(ExecPolicy::MemberParallel);
        let gate_ref = flat.predict(&x).probs()[0].clone();
        let mut casc = plan.session();
        casc.set_policy(ExecPolicy::Cascade(CascadePolicy::max_prob(1.0)));
        let scored = casc.predict_scored(&x);
        let k = plan.num_classes();
        for (i, &esc) in scored.escalated.iter().enumerate() {
            if !esc {
                assert_eq!(
                    bits(&gate_ref)[i * k..(i + 1) * k],
                    bits(&scored.probs)[i * k..(i + 1) * k],
                    "exit row {i} is not the gate's row"
                );
            }
        }
        assert!(
            scored.early_exit_rate() > 0.0,
            "a 1.0 threshold on smooth inputs must exit something"
        );
    }

    #[test]
    fn cascade_empty_batch_and_single_member() {
        let plan = EnginePlan::new(members(1), 4).unwrap().into_shared();
        let mut s = plan.session();
        s.set_policy(ExecPolicy::Cascade(CascadePolicy::max_prob(0.5)));
        let empty = s.predict_scored(&Tensor::zeros([0, 1, 2, 2]));
        assert_eq!(empty.probs.shape().dims(), &[0, 3]);
        assert!(empty.uncertainty.is_empty());
        assert_eq!(empty.early_exit_rate(), 0.0);
        // One member: gate == full ensemble, exits and escalations agree.
        let x = Tensor::randn([5, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(13));
        let scored = s.predict_scored(&x);
        let mut flat = plan.session();
        flat.set_policy(ExecPolicy::MemberParallel);
        let reference = combine::ensemble_average(&flat.predict(&x));
        assert_eq!(bits(&reference), bits(&scored.probs));
    }

    #[test]
    fn predict_scored_annotates_non_cascade_plans() {
        let plan = EnginePlan::new(members(3), 4).unwrap().into_shared();
        let mut s = plan.session();
        s.set_policy(ExecPolicy::MemberParallel);
        let x = Tensor::randn([6, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(14));
        let scored = s.predict_scored(&x);
        let reference = combine::ensemble_average(&plan.session().predict(&x));
        assert_eq!(bits(&reference), bits(&scored.probs));
        assert!(scored.escalated.iter().all(|&e| e));
        assert_eq!(scored.labels(), ops::argmax_rows(&reference));
        let k = plan.num_classes();
        for (i, &u) in scored.uncertainty.iter().enumerate() {
            let want = Confidence::MaxProb.uncertainty(&reference.data()[i * k..(i + 1) * k]);
            assert_eq!(u, want);
        }
    }

    #[test]
    fn member_probability_apis_ignore_cascade_early_exit() {
        // predict() needs every member on every example, so a cascade
        // session answers it fully escalated.
        let plan = EnginePlan::new(trunked_members(3), 4)
            .unwrap()
            .into_shared();
        let x = Tensor::randn([7, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(15));
        let mut flat = plan.session();
        flat.set_policy(ExecPolicy::MemberParallel);
        let reference = flat.predict(&x);
        let mut casc = plan.session();
        casc.set_policy(ExecPolicy::Cascade(CascadePolicy::max_prob(1.0)));
        let got = casc.predict(&x);
        for (a, b) in reference.probs().iter().zip(got.probs()) {
            assert_eq!(bits(a), bits(b));
        }
    }

    #[test]
    fn calibrate_finds_a_separating_threshold() {
        let plan = EnginePlan::new(trunked_members(4), 8)
            .unwrap()
            .into_shared();
        let mut s = plan.session();
        let x = Tensor::randn([64, 1, 2, 2], 2.0, &mut StdRng::seed_from_u64(16));
        let saved = ExecPolicy::Cascade(CascadePolicy::max_prob(0.9));
        s.set_policy(saved);
        let cal = calibrate(&mut s, &x, Confidence::MaxProb, 0.0);
        // min_agreement 0 accepts the full batch: threshold 1.0.
        assert_eq!(cal.policy.threshold, 1.0);
        assert_eq!(s.policy(), saved, "calibrate must restore the policy");
        // An impossible bar (> 1.0) accepts nothing: cascade disabled.
        let cal = calibrate(&mut s, &x, Confidence::Margin, 1.5);
        assert_eq!(cal.policy.threshold, 0.0);
        assert_eq!(cal.exit_rate, 0.0);
        assert_eq!(cal.agreement, 1.0);
        // A mid bar yields a threshold whose strict-< exit set reproduces
        // the reported exit rate and agreement on the same batch.
        let cal = calibrate(&mut s, &x, Confidence::MaxProb, 0.95);
        s.set_policy(ExecPolicy::Cascade(cal.policy));
        let scored = s.predict_scored(&x);
        assert!((scored.early_exit_rate() - cal.exit_rate).abs() < 1e-12);
        assert!(cal.agreement >= 0.95 || cal.exit_rate == 0.0);
        // Empty calibration batch: disabled, vacuous agreement.
        let cal = calibrate(
            &mut s,
            &Tensor::zeros([0, 1, 2, 2]),
            Confidence::MaxProb,
            0.5,
        );
        assert_eq!(cal.policy.threshold, 0.0);
        assert_eq!(cal.agreement, 1.0);
    }

    #[test]
    fn facade_matches_direct_session_bitwise() {
        // Old API (facade) vs new API (plan + session): same bits.
        let x = Tensor::randn([8, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(10));
        let mut old = engine(3, 4);
        let plan = EnginePlan::new(members(3), 4).unwrap().into_shared();
        let mut new = plan.session();
        let a = old.predict(&x);
        let b = new.predict(&x);
        for (m, (p, q)) in a.probs().iter().zip(b.probs()).enumerate() {
            assert_eq!(p.data(), q.data(), "member {m} diverged old-vs-new API");
        }
    }
}

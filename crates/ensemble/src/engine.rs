//! [`InferenceEngine`]: a planned, two-axis parallel ensemble executor.
//!
//! Serving an ensemble means paying the "combine many members per query"
//! cost on every request. The engine turns each request batch into an
//! execution plan along one of two parallelism axes:
//!
//! * **Member-parallel** ([`Plan::MemberParallel`]) — each member runs the
//!   whole batch in its own worker slot (member + private [`Workspace`]),
//!   fanned across rayon worker threads. The right axis when the member
//!   count already saturates the machine, and for small batches.
//! * **Data-parallel** ([`Plan::DataParallel`]) — the batch is split into
//!   contiguous shards ([`mn_tensor::chunking::shard_ranges`]); each shard
//!   runs on its own *replica lane* (a full copy of every member with its
//!   own workspaces), and per-member outputs are stitched back in example
//!   order. The right axis when a large batch arrives and there are more
//!   cores than members. Replica lanes are materialized lazily, so an
//!   engine that never runs a data-parallel plan never pays the replica
//!   memory.
//!
//! [`ExecPolicy::Auto`] (the default) picks the axis per batch from batch
//! size × member count × worker-thread count; [`InferenceEngine::plan`]
//! exposes the decision for inspection and tests.
//!
//! * **Workspace reuse.** Every slot keeps its workspace across requests,
//!   so steady-state serving stops allocating activations, mini-batches,
//!   im2col scratch, and GEMM operand-packing buffers.
//! * **Existing combine machinery.** Results stream into
//!   [`MemberPredictions`], so every combination rule the paper evaluates
//!   (EA / Voting / Super Learner / Oracle — see [`crate::combine`] and
//!   [`crate::super_learner`]) applies unchanged.
//!
//! ## Determinism
//!
//! Engine output is bitwise identical across execution plans, thread
//! counts, and runs: every tensor kernel partitions work over disjoint
//! output regions with a fixed per-element accumulation order, and each
//! example's forward pass is independent of its batch neighbors — so
//! member fan-out, batch sharding, and mini-batch boundaries cannot change
//! a single bit of any prediction. The `engine_determinism` integration
//! suite pins this property across policies.
//!
//! ## Cold start
//!
//! [`InferenceEngine::load`] boots an engine straight from an `MNE1`
//! ensemble artifact on disk (see [`crate::artifact`]) — no retraining,
//! and bitwise-identical predictions to the engine that saved it.
//!
//! ## Example
//!
//! ```
//! use mn_ensemble::engine::InferenceEngine;
//! use mn_ensemble::EnsembleMember;
//! use mn_nn::arch::{Architecture, InputSpec};
//! use mn_nn::Network;
//! use mn_tensor::Tensor;
//!
//! let arch = Architecture::mlp("m", InputSpec::new(1, 2, 2), 3, vec![4]);
//! let members: Vec<EnsembleMember> = (0..4)
//!     .map(|s| EnsembleMember::new(format!("m{s}"), Network::seeded(&arch, s)))
//!     .collect();
//! let mut engine = InferenceEngine::new(members, 32).unwrap();
//! let x = Tensor::zeros([5, 1, 2, 2]);
//! let labels = engine.predict_labels(&x);
//! assert_eq!(labels.len(), 5);
//! ```

use std::fmt;
use std::path::Path;

use mn_nn::arch::InputSpec;
use mn_tensor::chunking::shard_ranges;
use mn_tensor::{ops, Tensor, Workspace};

use rayon::prelude::*;

use crate::artifact::{self, ArtifactError, EnsembleManifest};
use crate::combine;
use crate::member::{EnsembleMember, MemberPredictions};

/// Why an engine could not be constructed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EngineError {
    /// No members were supplied.
    EmptyEnsemble,
    /// Members disagree on input geometry or class count, so they cannot
    /// serve the same requests.
    MemberMismatch {
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::EmptyEnsemble => write!(f, "inference engine needs at least one member"),
            EngineError::MemberMismatch { detail } => {
                write!(f, "ensemble members are not servable together: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// How the engine chooses its parallelism axis (see module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ExecPolicy {
    /// Pick per batch from batch size × member count × thread count.
    #[default]
    Auto,
    /// Always fan members across threads, each running the whole batch.
    MemberParallel,
    /// Always shard the batch across this many replica lanes (clamped to
    /// at least 1, to the batch size, and to
    /// [`InferenceEngine::max_shards`] — each lane keeps a full ensemble
    /// replica alive).
    DataParallel {
        /// Number of batch shards / replica lanes.
        shards: usize,
    },
}

/// The resolved execution plan for one request batch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Plan {
    /// One task per member over the full batch.
    MemberParallel,
    /// `shards` tasks, each running every member over one batch shard.
    DataParallel {
        /// Number of batch shards actually used.
        shards: usize,
    },
}

/// One ensemble member plus its private inference scratch.
#[derive(Debug)]
struct Slot {
    member: EnsembleMember,
    workspace: Workspace,
}

impl Slot {
    fn new(member: EnsembleMember) -> Self {
        Slot {
            member,
            workspace: Workspace::new(),
        }
    }
}

/// A batched, planned, two-axis parallel inference engine over a fixed
/// ensemble.
#[derive(Debug)]
pub struct InferenceEngine {
    /// Primary slots: one per member (member-parallel axis, and replica
    /// lane 0 of the data-parallel axis).
    slots: Vec<Slot>,
    /// Extra replica lanes for data-parallel plans, built lazily. Lane
    /// `r` of a plan with `s` shards is `slots` for `r == 0`, else
    /// `replicas[r - 1]`.
    replicas: Vec<Vec<Slot>>,
    batch_size: usize,
    policy: ExecPolicy,
    input: InputSpec,
    num_classes: usize,
}

impl InferenceEngine {
    /// Builds an engine that runs each member in mini-batches of
    /// `batch_size` examples (clamped to at least 1), under the default
    /// [`ExecPolicy::Auto`].
    ///
    /// Cached training activations are dropped from every member (a
    /// serving engine never needs them).
    ///
    /// # Errors
    ///
    /// [`EngineError::EmptyEnsemble`] for zero members, and
    /// [`EngineError::MemberMismatch`] when members disagree on input
    /// geometry or class count.
    pub fn new(mut members: Vec<EnsembleMember>, batch_size: usize) -> Result<Self, EngineError> {
        let Some(first) = members.first() else {
            return Err(EngineError::EmptyEnsemble);
        };
        let input = first.network.arch().input;
        let num_classes = first.network.arch().num_classes;
        for m in &members {
            let arch = m.network.arch();
            if arch.input != input || arch.num_classes != num_classes {
                return Err(EngineError::MemberMismatch {
                    detail: format!(
                        "member {} expects {}x{}x{} -> {} classes, member {} expects \
                         {}x{}x{} -> {} classes",
                        first.name,
                        input.channels,
                        input.height,
                        input.width,
                        num_classes,
                        m.name,
                        arch.input.channels,
                        arch.input.height,
                        arch.input.width,
                        arch.num_classes
                    ),
                });
            }
        }
        for m in members.iter_mut() {
            m.network.clear_caches();
        }
        Ok(InferenceEngine {
            slots: members.into_iter().map(Slot::new).collect(),
            replicas: Vec::new(),
            batch_size: batch_size.max(1),
            policy: ExecPolicy::Auto,
            input,
            num_classes,
        })
    }

    /// Boots an engine from an `MNE1` ensemble artifact file — the serving
    /// cold-start path. Predictions are bitwise identical to the engine
    /// that saved the artifact.
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`] from reading or parsing the file.
    pub fn load(path: impl AsRef<Path>, batch_size: usize) -> Result<Self, ArtifactError> {
        let (_, members) = artifact::read_ensemble_file(path)?;
        InferenceEngine::new(members, batch_size).map_err(ArtifactError::from)
    }

    /// [`InferenceEngine::load`] over in-memory artifact bytes.
    ///
    /// # Errors
    ///
    /// Any [`ArtifactError`] from parsing the bytes.
    pub fn from_artifact_bytes(bytes: &[u8], batch_size: usize) -> Result<Self, ArtifactError> {
        let (_, members) = artifact::load_ensemble(bytes)?;
        InferenceEngine::new(members, batch_size).map_err(ArtifactError::from)
    }

    /// Serializes the engine's members as an `MNE1` artifact.
    pub fn to_artifact_bytes(&self, manifest: &EnsembleManifest) -> Vec<u8> {
        let members: Vec<&EnsembleMember> = self.slots.iter().map(|s| &s.member).collect();
        artifact::save_ensemble_refs(&members, manifest)
    }

    /// Overrides the parallelism policy (the default is
    /// [`ExecPolicy::Auto`]).
    pub fn set_policy(&mut self, policy: ExecPolicy) {
        self.policy = policy;
    }

    /// The active parallelism policy.
    pub fn policy(&self) -> ExecPolicy {
        self.policy
    }

    /// Resolves the execution plan for a batch of `n` examples under the
    /// current policy and worker-thread count.
    ///
    /// The auto rule: shard the batch only when sharding yields more
    /// parallel tasks than member fan-out can — i.e. when the thread count
    /// exceeds the member count *and* the batch is large enough to cut
    /// into more than `num_members` shards of at least one mini-batch
    /// each. Plans never affect results (see module docs), only wall
    /// clock.
    ///
    /// Explicit [`ExecPolicy::DataParallel`] requests are clamped to the
    /// batch size and to [`InferenceEngine::max_shards`] — every lane
    /// costs a permanent replica of the whole ensemble, and lanes beyond
    /// the worker count buy no parallelism, so an oversized request must
    /// not be able to clone the ensemble thousands of times.
    pub fn plan(&self, n: usize) -> Plan {
        match self.policy {
            ExecPolicy::MemberParallel => Plan::MemberParallel,
            ExecPolicy::DataParallel { shards } => {
                let shards = shards.clamp(1, n.max(1)).min(self.max_shards());
                if shards == 1 {
                    Plan::MemberParallel
                } else {
                    Plan::DataParallel { shards }
                }
            }
            ExecPolicy::Auto => {
                let threads = rayon::current_num_threads();
                let members = self.slots.len();
                if n == 0 || threads <= members {
                    return Plan::MemberParallel;
                }
                let shards = n.div_ceil(self.batch_size).min(threads);
                if shards > members {
                    Plan::DataParallel { shards }
                } else {
                    Plan::MemberParallel
                }
            }
        }
    }

    /// Upper bound on data-parallel shards (and so on replica lanes):
    /// the worker-thread count, with a small floor so the sharding path
    /// stays exercisable on single-core machines. Caps the replica
    /// memory an explicit [`ExecPolicy::DataParallel`] request can pin.
    pub fn max_shards(&self) -> usize {
        const SHARD_FLOOR: usize = 16;
        rayon::current_num_threads().max(SHARD_FLOOR)
    }

    /// Number of ensemble members.
    pub fn num_members(&self) -> usize {
        self.slots.len()
    }

    /// Mini-batch size used per member.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Input geometry every member expects.
    pub fn input_spec(&self) -> InputSpec {
        self.input
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of materialized replica lanes (including the primary).
    /// Starts at 1 and grows only when a data-parallel plan runs.
    pub fn replica_lanes(&self) -> usize {
        1 + self.replicas.len()
    }

    /// Member names, in engine order.
    pub fn member_names(&self) -> Vec<&str> {
        self.slots.iter().map(|s| s.member.name.as_str()).collect()
    }

    /// Runs every member over the request batch `x: [N, C, H, W]` under
    /// the resolved plan and collects per-member probabilities.
    ///
    /// An empty batch (`N = 0`) is legal and yields `[0, K]` predictions.
    pub fn predict(&mut self, x: &Tensor) -> MemberPredictions {
        match self.plan(x.shape().dim(0)) {
            Plan::MemberParallel => self.predict_member_parallel(x),
            Plan::DataParallel { shards } => self.predict_data_parallel(x, shards),
        }
    }

    fn predict_member_parallel(&mut self, x: &Tensor) -> MemberPredictions {
        let bs = self.batch_size;
        let probs: Vec<Tensor> = self
            .slots
            .par_iter_mut()
            .map(|s| s.member.predict_proba_with(x, bs, &mut s.workspace))
            .collect();
        MemberPredictions::from_probs(probs)
    }

    fn predict_data_parallel(&mut self, x: &Tensor, shards: usize) -> MemberPredictions {
        let n = x.shape().dim(0);
        let ranges = shard_ranges(n, shards);
        let shards = ranges.len(); // shard_ranges may shrink degenerate requests
        if shards <= 1 {
            return self.predict_member_parallel(x);
        }
        self.ensure_replicas(shards - 1);
        let bs = self.batch_size;
        let members = self.slots.len();
        let k = self.num_classes;
        let row = x.len() / n.max(1);

        // Lane 0 is the primary slot set; lanes 1.. are replicas. Each
        // lane copies its shard rows once, then runs every member over
        // the shard with that member's own workspace.
        let mut lanes: Vec<(std::ops::Range<usize>, &mut Vec<Slot>)> = Vec::with_capacity(shards);
        let mut lane_slots = std::iter::once(&mut self.slots)
            .chain(self.replicas.iter_mut())
            .take(shards);
        for range in ranges {
            lanes.push((range, lane_slots.next().expect("lane per shard")));
        }
        let shard_probs: Vec<Vec<Tensor>> = lanes
            .par_iter_mut()
            .map(|(range, slots)| {
                let rows = range.len();
                let mut xs = slots[0]
                    .workspace
                    .acquire_uninit(x.shape().with_dim(0, rows));
                xs.data_mut()
                    .copy_from_slice(&x.data()[range.start * row..range.end * row]);
                let out: Vec<Tensor> = slots
                    .iter_mut()
                    .map(|s| s.member.predict_proba_with(&xs, bs, &mut s.workspace))
                    .collect();
                slots[0].workspace.release(xs);
                out
            })
            .collect();

        // Stitch per-member outputs back in example order.
        let mut probs: Vec<Tensor> = (0..members).map(|_| Tensor::zeros([n, k])).collect();
        let mut start = 0;
        for lane in &shard_probs {
            let rows = lane[0].shape().dim(0);
            for (m, shard) in lane.iter().enumerate() {
                probs[m].data_mut()[start * k..(start + rows) * k].copy_from_slice(shard.data());
            }
            start += rows;
        }
        MemberPredictions::from_probs(probs)
    }

    /// Grows the replica lane pool to at least `extra` lanes beyond the
    /// primary, cloning the current member weights.
    fn ensure_replicas(&mut self, extra: usize) {
        while self.replicas.len() < extra {
            self.replicas.push(
                self.slots
                    .iter()
                    .map(|s| Slot::new(s.member.clone()))
                    .collect(),
            );
        }
    }

    /// Ensemble-averaged probabilities `[N, K]` for the request batch.
    pub fn predict_average(&mut self, x: &Tensor) -> Tensor {
        combine::ensemble_average(&self.predict(x))
    }

    /// Hard labels under ensemble averaging (the paper's EA rule).
    pub fn predict_labels(&mut self, x: &Tensor) -> Vec<usize> {
        ops::argmax_rows(&self.predict_average(x))
    }

    /// Hard labels under majority voting with probability tie-breaking.
    pub fn predict_vote_labels(&mut self, x: &Tensor) -> Vec<usize> {
        combine::vote_labels(&self.predict(x))
    }

    /// Read access to the members, in engine order.
    pub fn members(&self) -> Vec<&EnsembleMember> {
        self.slots.iter().map(|s| &s.member).collect()
    }

    /// Decomposes the engine back into its members (workspaces and
    /// replica lanes dropped).
    pub fn into_members(self) -> Vec<EnsembleMember> {
        self.slots.into_iter().map(|s| s.member).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_nn::arch::{Architecture, InputSpec};
    use mn_nn::Network;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn members(n: u64) -> Vec<EnsembleMember> {
        let arch = Architecture::mlp("m", InputSpec::new(1, 2, 2), 3, vec![6]);
        (0..n)
            .map(|s| EnsembleMember::new(format!("m{s}"), Network::seeded(&arch, s)))
            .collect()
    }

    fn engine(n: u64, batch: usize) -> InferenceEngine {
        InferenceEngine::new(members(n), batch).unwrap()
    }

    #[test]
    fn engine_matches_sequential_collection() {
        let x = Tensor::randn([7, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(1));
        let mut seq_members = members(3);
        let sequential = MemberPredictions::collect(&mut seq_members, &x, 2);
        let mut engine = engine(3, 2);
        let parallel = engine.predict(&x);
        assert_eq!(parallel.num_members(), 3);
        for (p, s) in parallel.probs().iter().zip(sequential.probs()) {
            assert_eq!(p.data(), s.data(), "engine diverged from sequential path");
        }
    }

    #[test]
    fn repeated_predictions_reuse_workspaces_and_stay_identical() {
        let mut engine = engine(2, 4);
        let x = Tensor::randn([9, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(2));
        let first = engine.predict(&x);
        let second = engine.predict(&x);
        for (a, b) in first.probs().iter().zip(second.probs()) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn combination_rules_run_on_engine_output() {
        let mut engine = engine(3, 8);
        let x = Tensor::randn([5, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(3));
        let avg = engine.predict_average(&x);
        assert_eq!(avg.shape().dims(), &[5, 3]);
        for i in 0..5 {
            let row: f32 = (0..3).map(|j| avg.at2(i, j)).sum();
            assert!((row - 1.0).abs() < 1e-4, "row {i} sums to {row}");
        }
        assert_eq!(engine.predict_labels(&x).len(), 5);
        assert_eq!(engine.predict_vote_labels(&x).len(), 5);
    }

    #[test]
    fn accessors_expose_members() {
        let engine = engine(2, 16);
        assert_eq!(engine.num_members(), 2);
        assert_eq!(engine.batch_size(), 16);
        assert_eq!(engine.member_names(), vec!["m0", "m1"]);
        assert_eq!(engine.num_classes(), 3);
        assert_eq!(engine.input_spec(), InputSpec::new(1, 2, 2));
        let back = engine.into_members();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn empty_ensemble_yields_typed_error() {
        assert_eq!(
            InferenceEngine::new(Vec::new(), 8).unwrap_err(),
            EngineError::EmptyEnsemble
        );
    }

    #[test]
    fn mismatched_members_yield_typed_error() {
        let arch_a = Architecture::mlp("a", InputSpec::new(1, 2, 2), 3, vec![4]);
        let arch_b = Architecture::mlp("b", InputSpec::new(1, 2, 2), 5, vec![4]);
        let mixed = vec![
            EnsembleMember::new("a", Network::seeded(&arch_a, 0)),
            EnsembleMember::new("b", Network::seeded(&arch_b, 1)),
        ];
        assert!(matches!(
            InferenceEngine::new(mixed, 8),
            Err(EngineError::MemberMismatch { .. })
        ));
    }

    #[test]
    fn zero_batch_size_clamps_to_one() {
        let mut engine = engine(1, 0);
        assert_eq!(engine.batch_size(), 1);
        let x = Tensor::zeros([2, 1, 2, 2]);
        assert_eq!(engine.predict_labels(&x).len(), 2);
    }

    #[test]
    fn data_parallel_plan_matches_member_parallel_bitwise() {
        let x = Tensor::randn([13, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(4));
        let mut baseline = engine(3, 4);
        baseline.set_policy(ExecPolicy::MemberParallel);
        let reference = baseline.predict(&x);
        for shards in [2usize, 3, 5, 13, 40] {
            let mut sharded = engine(3, 4);
            sharded.set_policy(ExecPolicy::DataParallel { shards });
            let got = sharded.predict(&x);
            for (m, (a, b)) in reference.probs().iter().zip(got.probs()).enumerate() {
                assert_eq!(
                    a.data(),
                    b.data(),
                    "member {m} diverged under {shards}-way sharding"
                );
            }
            assert!(sharded.replica_lanes() >= 2, "sharding built replica lanes");
        }
    }

    #[test]
    fn replica_lanes_grow_lazily_and_persist() {
        let mut e = engine(2, 2);
        assert_eq!(e.replica_lanes(), 1);
        e.set_policy(ExecPolicy::MemberParallel);
        let x = Tensor::zeros([8, 1, 2, 2]);
        let _ = e.predict(&x);
        assert_eq!(e.replica_lanes(), 1, "member-parallel must not replicate");
        e.set_policy(ExecPolicy::DataParallel { shards: 4 });
        let _ = e.predict(&x);
        assert_eq!(e.replica_lanes(), 4);
        let _ = e.predict(&x);
        assert_eq!(e.replica_lanes(), 4, "lanes are reused, not re-cloned");
    }

    #[test]
    fn explicit_shards_clamp_to_batch_and_lane_cap() {
        let mut e = engine(2, 2);
        e.set_policy(ExecPolicy::DataParallel { shards: 0 });
        assert_eq!(e.plan(5), Plan::MemberParallel);
        e.set_policy(ExecPolicy::DataParallel { shards: 8 });
        assert_eq!(e.plan(3), Plan::DataParallel { shards: 3 });
        assert_eq!(e.plan(0), Plan::MemberParallel);
        // An absurd request must not be able to demand one replica lane
        // per example of a huge batch.
        e.set_policy(ExecPolicy::DataParallel { shards: usize::MAX });
        match e.plan(1_000_000) {
            Plan::DataParallel { shards } => assert_eq!(shards, e.max_shards()),
            plan => panic!("expected a capped data-parallel plan, got {plan:?}"),
        }
        let x = Tensor::zeros([64, 1, 2, 2]);
        let _ = e.predict(&x);
        assert!(e.replica_lanes() <= e.max_shards());
    }

    #[test]
    fn auto_plan_prefers_member_fanout_unless_sharding_wins() {
        let e = engine(3, 4);
        // Empty batches never shard.
        assert_eq!(e.plan(0), Plan::MemberParallel);
        // With the test runner's thread count unknown, pin only the
        // invariants: sharding must yield strictly more tasks than member
        // fan-out, and never more shards than threads or mini-batches.
        for n in [1usize, 8, 64, 1024] {
            match e.plan(n) {
                Plan::MemberParallel => {}
                Plan::DataParallel { shards } => {
                    assert!(shards > e.num_members());
                    assert!(shards <= rayon::current_num_threads());
                    assert!(shards <= n.div_ceil(e.batch_size()));
                }
            }
        }
    }

    #[test]
    fn empty_batch_under_data_parallel_policy() {
        let mut e = engine(2, 4);
        e.set_policy(ExecPolicy::DataParallel { shards: 3 });
        let empty = Tensor::zeros([0, 1, 2, 2]);
        let preds = e.predict(&empty);
        assert_eq!(preds.num_examples(), 0);
        assert_eq!(preds.num_members(), 2);
    }
}

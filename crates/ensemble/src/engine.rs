//! [`InferenceEngine`]: batched, parallel ensemble inference.
//!
//! Serving an ensemble means paying the "combine many members per query"
//! cost on every request. The naive loop — run each member over the batch,
//! one after another, reallocating every activation — wastes both the
//! machine's cores and its allocator. The engine fixes both:
//!
//! * **Parallel member fan-out.** Each member lives in a [`Worker`]
//!   (member + private [`Workspace`]); a request batch is fanned across
//!   workers with rayon, so independent members run on independent cores.
//! * **Workspace reuse.** Every worker keeps its workspace across
//!   requests, so steady-state serving stops allocating activations,
//!   mini-batches, and im2col scratch (the GEMM's internal
//!   operand-packing buffers are the remaining per-call allocations).
//! * **Existing combine machinery.** Results stream into
//!   [`MemberPredictions`], so every combination rule the paper evaluates
//!   (EA / Voting / Super Learner / Oracle — see [`crate::combine`] and
//!   [`crate::super_learner`]) applies unchanged.
//!
//! ## Determinism
//!
//! Engine output is bitwise identical across thread counts and across
//! runs: members are independent, each worker's forward pass is
//! sequential over its mini-batches, and every tensor kernel underneath
//! partitions work over disjoint output regions with a fixed per-element
//! accumulation order. The `engine_determinism` integration suite pins
//! this property.
//!
//! ## Example
//!
//! ```
//! use mn_ensemble::engine::InferenceEngine;
//! use mn_ensemble::EnsembleMember;
//! use mn_nn::arch::{Architecture, InputSpec};
//! use mn_nn::Network;
//! use mn_tensor::Tensor;
//!
//! let arch = Architecture::mlp("m", InputSpec::new(1, 2, 2), 3, vec![4]);
//! let members: Vec<EnsembleMember> = (0..4)
//!     .map(|s| EnsembleMember::new(format!("m{s}"), Network::seeded(&arch, s)))
//!     .collect();
//! let mut engine = InferenceEngine::new(members, 32);
//! let x = Tensor::zeros([5, 1, 2, 2]);
//! let labels = engine.predict_labels(&x);
//! assert_eq!(labels.len(), 5);
//! ```

use mn_tensor::{ops, Tensor, Workspace};

use rayon::prelude::*;

use crate::combine;
use crate::member::{EnsembleMember, MemberPredictions};

/// One ensemble member plus its private inference scratch.
#[derive(Debug)]
struct Worker {
    member: EnsembleMember,
    workspace: Workspace,
}

/// A batched parallel inference engine over a fixed ensemble.
#[derive(Debug)]
pub struct InferenceEngine {
    workers: Vec<Worker>,
    batch_size: usize,
}

impl InferenceEngine {
    /// Builds an engine that runs each member in mini-batches of
    /// `batch_size` examples (clamped to at least 1).
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    pub fn new(members: Vec<EnsembleMember>, batch_size: usize) -> Self {
        assert!(
            !members.is_empty(),
            "inference engine needs at least one member"
        );
        InferenceEngine {
            workers: members
                .into_iter()
                .map(|member| Worker {
                    member,
                    workspace: Workspace::new(),
                })
                .collect(),
            batch_size: batch_size.max(1),
        }
    }

    /// Number of ensemble members.
    pub fn num_members(&self) -> usize {
        self.workers.len()
    }

    /// Mini-batch size used per member.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Member names, in engine order.
    pub fn member_names(&self) -> Vec<&str> {
        self.workers
            .iter()
            .map(|w| w.member.name.as_str())
            .collect()
    }

    /// Runs every member over the request batch `x: [N, C, H, W]` in
    /// parallel and collects per-member probabilities.
    ///
    /// An empty batch (`N = 0`) is legal and yields `[0, K]` predictions.
    pub fn predict(&mut self, x: &Tensor) -> MemberPredictions {
        let bs = self.batch_size;
        let probs: Vec<Tensor> = self
            .workers
            .par_iter_mut()
            .map(|w| w.member.predict_proba_with(x, bs, &mut w.workspace))
            .collect();
        MemberPredictions::from_probs(probs)
    }

    /// Ensemble-averaged probabilities `[N, K]` for the request batch.
    pub fn predict_average(&mut self, x: &Tensor) -> Tensor {
        combine::ensemble_average(&self.predict(x))
    }

    /// Hard labels under ensemble averaging (the paper's EA rule).
    pub fn predict_labels(&mut self, x: &Tensor) -> Vec<usize> {
        ops::argmax_rows(&self.predict_average(x))
    }

    /// Hard labels under majority voting with probability tie-breaking.
    pub fn predict_vote_labels(&mut self, x: &Tensor) -> Vec<usize> {
        combine::vote_labels(&self.predict(x))
    }

    /// Read access to the members, in engine order.
    pub fn members(&self) -> Vec<&EnsembleMember> {
        self.workers.iter().map(|w| &w.member).collect()
    }

    /// Decomposes the engine back into its members (workspaces dropped).
    pub fn into_members(self) -> Vec<EnsembleMember> {
        self.workers.into_iter().map(|w| w.member).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_nn::arch::{Architecture, InputSpec};
    use mn_nn::Network;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn members(n: u64) -> Vec<EnsembleMember> {
        let arch = Architecture::mlp("m", InputSpec::new(1, 2, 2), 3, vec![6]);
        (0..n)
            .map(|s| EnsembleMember::new(format!("m{s}"), Network::seeded(&arch, s)))
            .collect()
    }

    #[test]
    fn engine_matches_sequential_collection() {
        let x = Tensor::randn([7, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(1));
        let mut seq_members = members(3);
        let sequential = MemberPredictions::collect(&mut seq_members, &x, 2);
        let mut engine = InferenceEngine::new(members(3), 2);
        let parallel = engine.predict(&x);
        assert_eq!(parallel.num_members(), 3);
        for (p, s) in parallel.probs().iter().zip(sequential.probs()) {
            assert_eq!(p.data(), s.data(), "engine diverged from sequential path");
        }
    }

    #[test]
    fn repeated_predictions_reuse_workspaces_and_stay_identical() {
        let mut engine = InferenceEngine::new(members(2), 4);
        let x = Tensor::randn([9, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(2));
        let first = engine.predict(&x);
        let second = engine.predict(&x);
        for (a, b) in first.probs().iter().zip(second.probs()) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn combination_rules_run_on_engine_output() {
        let mut engine = InferenceEngine::new(members(3), 8);
        let x = Tensor::randn([5, 1, 2, 2], 1.0, &mut StdRng::seed_from_u64(3));
        let avg = engine.predict_average(&x);
        assert_eq!(avg.shape().dims(), &[5, 3]);
        for i in 0..5 {
            let row: f32 = (0..3).map(|j| avg.at2(i, j)).sum();
            assert!((row - 1.0).abs() < 1e-4, "row {i} sums to {row}");
        }
        assert_eq!(engine.predict_labels(&x).len(), 5);
        assert_eq!(engine.predict_vote_labels(&x).len(), 5);
    }

    #[test]
    fn accessors_expose_members() {
        let engine = InferenceEngine::new(members(2), 16);
        assert_eq!(engine.num_members(), 2);
        assert_eq!(engine.batch_size(), 16);
        assert_eq!(engine.member_names(), vec!["m0", "m1"]);
        let back = engine.into_members();
        assert_eq!(back.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_rejected() {
        InferenceEngine::new(Vec::new(), 8);
    }

    #[test]
    fn zero_batch_size_clamps_to_one() {
        let mut engine = InferenceEngine::new(members(1), 0);
        assert_eq!(engine.batch_size(), 1);
        let x = Tensor::zeros([2, 1, 2, 2]);
        assert_eq!(engine.predict_labels(&x).len(), 2);
    }
}
